//! Pre-regalloc peephole optimization over the flat op stream.
//!
//! The lowerer's output is deliberately naive: promoted `alloca` slots turn
//! every load/store into a `Mov`, phi edges add more copies, and each
//! loop latch is a `Cmp` feeding a `Br`. In the hot dense-arithmetic loops
//! the VM exists for, roughly a third of the retired ops were copies —
//! dispatch overhead with no work attached. Four stages fix that:
//!
//! 1. **Copy propagation** (block-local): uses of a `Mov` destination are
//!    rewritten to its source until either register is redefined, so the
//!    copies lose their consumers.
//! 2. **Dead-op elimination** (global liveness, to fixpoint): side-effect-free
//!    ops whose destination is dead are deleted. Ops the interpreter could
//!    trap on (`sdiv`/`urem`/… by zero, non-additive pointer arithmetic) are
//!    kept even when dead — deleting them would make the VM succeed where the
//!    interpreter errors, breaking the differential oracle.
//! 3. **Compare/branch fusion**: a `Cmp` immediately feeding the block's
//!    `Br`, with no other consumer, becomes one [`Op::CmpBr`].
//! 4. **Fallthrough-jump elision**: a `Jmp` to the op that physically
//!    follows it, when that target has no other incoming edge, is deleted
//!    and the two blocks merge.
//! 5. **Arithmetic/jump fusion**: a `Bin` immediately preceding its block's
//!    surviving `Jmp` becomes one [`Op::BinJmp`] — the canonical loop latch
//!    (`i = i + step; jmp header`) in one dispatch. This runs *after* stage 4
//!    so a jump that can be elided outright is, and only real backedges fuse.
//!
//! Deletion is mark-then-compact: stages only set a `dead` mask, and a final
//! sweep drops marked ops while remapping every jump target and block start.
//! That remap is exact because the lowerer registers *every* branch target
//! (including phi-copy trampolines) as a block start, terminators are never
//! deleted, and therefore each block keeps at least one op.

use crate::ops::{Op, Reg, VmFunction};
use crate::regalloc::{block_ranges, liveness, successors};
use omplt_ir::{BinOpKind, IrType};

/// Runs the full pipeline in place; returns the number of ops removed.
pub fn optimize(f: &mut VmFunction) -> usize {
    if f.ops.is_empty() {
        return 0;
    }
    copy_propagate(f);
    let mut dead = vec![false; f.ops.len()];
    while eliminate_dead(f, &mut dead) {}
    coalesce_defs(f, &mut dead);
    fuse_cmp_br(f, &mut dead);
    elide_fallthrough_jumps(f, &mut dead);
    fuse_bin_jmp(f, &mut dead);
    compact(f, &dead)
}

/// True when deleting a dead instance of `op` cannot change observable
/// behavior. Loads (out-of-bounds), calls, stores, and allocas stay; so do
/// integer div/rem (`DivByZero`) and non-additive pointer arithmetic, which
/// the shared `exec_bin` traps on — the interpreter oracle would too.
fn removable(op: Op) -> bool {
    match op {
        Op::Const { .. }
        | Op::Mov { .. }
        | Op::Gep { .. }
        | Op::Cmp { .. }
        | Op::Cast { .. }
        | Op::Select { .. } => true,
        Op::Bin { op, ty, .. } => {
            let may_trap_zero = matches!(
                op,
                BinOpKind::SDiv | BinOpKind::UDiv | BinOpKind::SRem | BinOpKind::URem
            );
            let may_trap_ptr = ty == IrType::Ptr && !matches!(op, BinOpKind::Add | BinOpKind::Sub);
            !may_trap_zero && !may_trap_ptr
        }
        _ => false,
    }
}

/// Block-local copy propagation: after `dst = mov src`, later reads of `dst`
/// become reads of `src` (chased to the root of a copy chain) until either
/// side is redefined. The `Mov`s themselves are left for DCE to collect.
fn copy_propagate(f: &mut VmFunction) {
    let n = f.num_regs as usize;
    // Generation-stamped map: `copy_of[r]` is meaningful only when
    // `gen_of[r] == cur_gen`, so resetting per block is O(1).
    let mut copy_of: Vec<Reg> = vec![0; n];
    let mut gen_of: Vec<u32> = vec![0; n];
    let mut cur_gen: u32 = 0;
    // Keys recorded in the current block, for O(block) invalidation on defs.
    let mut recorded: Vec<Reg> = Vec::new();

    for (start, end) in block_ranges(f) {
        cur_gen += 1;
        recorded.clear();
        for pc in start..end {
            let op = &mut f.ops[pc];
            op.map_uses(&mut f.call_args, |r| {
                if gen_of[r as usize] == cur_gen {
                    copy_of[r as usize]
                } else {
                    r
                }
            });
            if let Some(d) = op.def() {
                // `d` is overwritten: forget copies *of* it and *into* it.
                gen_of[d as usize] = 0;
                for &k in &recorded {
                    if gen_of[k as usize] == cur_gen && copy_of[k as usize] == d {
                        gen_of[k as usize] = 0;
                    }
                }
            }
            if let Op::Mov { dst, src } = *op {
                if dst != src {
                    // `src` was already rewritten to its root above.
                    copy_of[dst as usize] = src;
                    gen_of[dst as usize] = cur_gen;
                    recorded.push(dst);
                }
            }
        }
    }
}

/// One backward DCE sweep over live ops; returns true if anything new died.
fn eliminate_dead(f: &VmFunction, dead: &mut [bool]) -> bool {
    let n = f.num_regs as usize;
    let ranges = block_ranges(f);
    let succs = successors(f, &ranges);
    let (_, live_out) = liveness(f, n, &ranges, &succs, |pc| dead[pc]);
    let mut changed = false;
    for (b, &(start, end)) in ranges.iter().enumerate() {
        let mut live = live_out[b].clone();
        for pc in (start..end).rev() {
            if dead[pc] {
                continue;
            }
            let op = f.ops[pc];
            // A self-copy is a no-op whether or not its register is live.
            let self_mov = matches!(op, Op::Mov { dst, src } if dst == src);
            let dead_def =
                matches!(op.def(), Some(d) if !live.contains(d as usize)) && removable(op);
            if self_mov || dead_def {
                dead[pc] = true;
                changed = true;
                continue;
            }
            if let Some(d) = op.def() {
                live.remove(d as usize);
            }
            op.for_each_use(&f.call_args, |r| live.insert(r as usize));
        }
    }
    changed
}

/// Coalesces `d = <op> …; s = mov d` into `s = <op> …` when `d` dies at the
/// `Mov` — the "write the result back into the promoted slot" pattern every
/// loop-carried variable produces. Safe because every op reads its operands
/// before writing its destination, so `<op>` may freely read `s`'s old value.
fn coalesce_defs(f: &mut VmFunction, dead: &mut [bool]) {
    let n = f.num_regs as usize;
    let ranges = block_ranges(f);
    let succs = successors(f, &ranges);
    let (_, live_out) = liveness(f, n, &ranges, &succs, |pc| dead[pc]);
    for (b, &(start, end)) in ranges.iter().enumerate() {
        let mut live = live_out[b].clone();
        let pcs: Vec<usize> = (start..end).rev().filter(|&pc| !dead[pc]).collect();
        for (i, &pc) in pcs.iter().enumerate() {
            let op = f.ops[pc];
            if let Op::Mov { dst: s, src: d } = op {
                let prev = pcs.get(i + 1);
                let coalescable = s != d
                    && !live.contains(d as usize)
                    && f.reg_class[s as usize] == f.reg_class[d as usize]
                    && prev.is_some_and(|&q| f.ops[q].def() == Some(d));
                if coalescable {
                    f.ops[*prev.expect("checked above")].set_def(s);
                    dead[pc] = true;
                    // The Mov contributes nothing to liveness now; `q` is
                    // processed next with its rewritten destination.
                    continue;
                }
            }
            if let Some(dd) = op.def() {
                live.remove(dd as usize);
            }
            op.for_each_use(&f.call_args, |r| live.insert(r as usize));
        }
    }
}

/// Fuses `dst = cmp …; br dst, T, E` into `cmpbr …, T, E` when the `Cmp`
/// immediately precedes its block's `Br` (among live ops) and `dst` has no
/// other consumer (`dst` not live out of the block).
fn fuse_cmp_br(f: &mut VmFunction, dead: &mut [bool]) {
    let n = f.num_regs as usize;
    let ranges = block_ranges(f);
    let succs = successors(f, &ranges);
    let (_, live_out) = liveness(f, n, &ranges, &succs, |pc| dead[pc]);
    for (b, &(start, end)) in ranges.iter().enumerate() {
        let mut live = (start..end).rev().filter(|&pc| !dead[pc]);
        let (Some(t), Some(p)) = (live.next(), live.next()) else {
            continue;
        };
        let Op::Br {
            cond,
            then_t,
            else_t,
        } = f.ops[t]
        else {
            continue;
        };
        let Op::Cmp {
            pred,
            ty,
            dst,
            lhs,
            rhs,
        } = f.ops[p]
        else {
            continue;
        };
        if dst != cond || live_out[b].contains(dst as usize) {
            continue;
        }
        f.ops[t] = Op::CmpBr {
            pred,
            ty,
            lhs,
            rhs,
            then_t,
            else_t,
        };
        dead[p] = true;
    }
}

/// Fuses `dst = <op> …; jmp T` into `binjmp` when the `Bin` immediately
/// precedes its block's `Jmp` among live ops. No liveness condition: the
/// fused op still defines `dst`, and a trapping `Bin` (div/rem) traps
/// identically before the jump would have been taken.
fn fuse_bin_jmp(f: &mut VmFunction, dead: &mut [bool]) {
    for (start, end) in block_ranges(f) {
        let mut live = (start..end).rev().filter(|&pc| !dead[pc]);
        let (Some(t), Some(p)) = (live.next(), live.next()) else {
            continue;
        };
        let Op::Jmp { target } = f.ops[t] else {
            continue;
        };
        let Op::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } = f.ops[p]
        else {
            continue;
        };
        f.ops[t] = Op::BinJmp {
            op,
            ty,
            dst,
            lhs,
            rhs,
            target,
        };
        dead[p] = true;
    }
}

/// Deletes `jmp` ops that target the instruction physically following them
/// when nothing else jumps there, merging the two blocks. (RPO linearization
/// makes loop bodies fall through to their latch, so these are common.)
fn elide_fallthrough_jumps(f: &mut VmFunction, dead: &mut [bool]) {
    // Incoming-edge counts per target offset, over live ops only.
    let mut incoming: Vec<u32> = vec![0; f.ops.len()];
    for (pc, op) in f.ops.iter().enumerate() {
        if dead[pc] {
            continue;
        }
        match *op {
            Op::Jmp { target } | Op::BinJmp { target, .. } => incoming[target as usize] += 1,
            Op::Br { then_t, else_t, .. } | Op::CmpBr { then_t, else_t, .. } => {
                incoming[then_t as usize] += 1;
                incoming[else_t as usize] += 1;
            }
            _ => {}
        }
    }
    let mut merged_starts: Vec<u32> = Vec::new();
    for (pc, (op, d)) in f.ops.iter().zip(dead.iter_mut()).enumerate() {
        if *d {
            continue;
        }
        let Op::Jmp { target } = *op else {
            continue;
        };
        // `Jmp` is a terminator, so `target == pc + 1` means the next block
        // starts right after it; one incoming edge means this is that edge.
        if target as usize == pc + 1
            && incoming[target as usize] == 1
            && f.block_starts.binary_search(&target).is_ok()
        {
            *d = true;
            merged_starts.push(target);
        }
    }
    f.block_starts.retain(|s| !merged_starts.contains(s));
}

/// Drops marked ops and remaps every jump target and block start. Targets
/// are always block starts and terminators are never marked, so each block
/// retains at least one op and the remapped starts stay strictly sorted.
fn compact(f: &mut VmFunction, dead: &[bool]) -> usize {
    let removed = dead.iter().filter(|&&d| d).count();
    if removed == 0 {
        return 0;
    }
    let mut new_off: Vec<u32> = Vec::with_capacity(f.ops.len());
    let mut kept: u32 = 0;
    for &d in dead {
        new_off.push(kept);
        kept += u32::from(!d);
    }
    for op in &mut f.ops {
        match op {
            Op::Jmp { target } | Op::BinJmp { target, .. } => {
                *target = new_off[*target as usize];
            }
            Op::Br { then_t, else_t, .. } | Op::CmpBr { then_t, else_t, .. } => {
                *then_t = new_off[*then_t as usize];
                *else_t = new_off[*else_t as usize];
            }
            _ => {}
        }
    }
    let mut i = 0;
    f.ops.retain(|_| {
        let keep = !dead[i];
        i += 1;
        keep
    });
    for s in &mut f.block_starts {
        *s = new_off[*s as usize];
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{PoolConst, RegClass};
    use omplt_interp::RtVal;
    use omplt_ir::{CmpPred, IrType};

    fn func(ops: Vec<Op>, classes: Vec<RegClass>, block_starts: Vec<u32>) -> VmFunction {
        VmFunction {
            name: "t".into(),
            params: vec![],
            num_regs: classes.len() as u16,
            reg_class: classes,
            num_vregs: 0,
            vreg_class: vec![],
            vreg_width: vec![],
            ops,
            consts: vec![PoolConst::Val(RtVal::I(1))],
            call_args: vec![],
            call_targets: vec![],
            block_starts,
            ret: IrType::I64,
        }
    }

    #[test]
    fn copies_are_propagated_and_collected() {
        // r0 = const; r1 = mov r0; r2 = r1 + r1; ret r2
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Mov { dst: 1, src: 0 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 1,
                    rhs: 1,
                },
                Op::Ret { src: Some(2) },
            ],
            vec![RegClass::Int; 3],
            vec![0],
        );
        let removed = optimize(&mut f);
        assert_eq!(removed, 1, "the mov must die:\n{}", crate::ops::disasm(&f));
        assert!(matches!(f.ops[1], Op::Bin { lhs: 0, rhs: 0, .. }));
    }

    #[test]
    fn copy_map_invalidated_when_source_is_redefined() {
        // r1 = mov r0; r0 = const; r2 = r1 + r1 — r1 must NOT become r0.
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Mov { dst: 1, src: 0 },
                Op::Const { dst: 0, idx: 0 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 1,
                    rhs: 1,
                },
                Op::Ret { src: Some(2) },
            ],
            vec![RegClass::Int; 3],
            vec![0],
        );
        optimize(&mut f);
        let bin = f.ops.iter().find(|o| matches!(o, Op::Bin { .. })).unwrap();
        assert!(matches!(bin, Op::Bin { lhs: 1, rhs: 1, .. }), "{bin:?}");
    }

    #[test]
    fn dead_division_survives() {
        // r2 = r0 / r1 is dead but may trap on r1 == 0: it must be kept.
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Const { dst: 1, idx: 0 },
                Op::Bin {
                    op: BinOpKind::SDiv,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 0,
                    rhs: 1,
                },
                Op::Ret { src: Some(0) },
            ],
            vec![RegClass::Int; 3],
            vec![0],
        );
        optimize(&mut f);
        assert!(
            f.ops.iter().any(|o| matches!(
                o,
                Op::Bin {
                    op: BinOpKind::SDiv,
                    ..
                }
            )),
            "dead sdiv was deleted:\n{}",
            crate::ops::disasm(&f)
        );
    }

    #[test]
    fn loop_carried_writeback_is_coalesced() {
        // Loop body: r2 = r1 + r0; r1 = mov r2; r3 = r0 < r0; br r3.
        // The Bin must absorb the Mov (write r1 directly) and the Cmp must
        // fuse into the branch. (The compare deliberately avoids r1/r2:
        // copy propagation would rewrite a read of r1 into r2, keeping r2
        // live past the Mov and rightly blocking the coalesce.)
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Const { dst: 1, idx: 0 },
                Op::Jmp { target: 3 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Mov { dst: 1, src: 2 },
                Op::Cmp {
                    pred: CmpPred::Slt,
                    ty: IrType::I64,
                    dst: 3,
                    lhs: 0,
                    rhs: 0,
                },
                Op::Br {
                    cond: 3,
                    then_t: 3,
                    else_t: 7,
                },
                Op::Ret { src: Some(1) },
            ],
            vec![RegClass::Int; 4],
            vec![0, 3, 7],
        );
        let removed = optimize(&mut f);
        assert_eq!(removed, 2, "{}", crate::ops::disasm(&f));
        assert!(
            f.ops.iter().any(|o| matches!(
                o,
                Op::Bin {
                    dst: 1,
                    lhs: 1,
                    rhs: 0,
                    ..
                }
            )),
            "{}",
            crate::ops::disasm(&f)
        );
        assert!(!f.ops.iter().any(|o| matches!(o, Op::Mov { .. })));
        assert!(crate::verify::verify_function(&f, 1).is_empty());
    }

    #[test]
    fn cmp_feeding_branch_is_fused() {
        // Loop: r1 += r0; r2 = r1 < r0; br r2 ? loop : exit.
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Const { dst: 1, idx: 0 },
                Op::Jmp { target: 3 },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 1,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Cmp {
                    pred: CmpPred::Slt,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Br {
                    cond: 2,
                    then_t: 3,
                    else_t: 6,
                },
                Op::Ret { src: Some(1) },
            ],
            vec![RegClass::Int; 3],
            vec![0, 3, 6],
        );
        let removed = optimize(&mut f);
        // The Cmp dies into the fused op. (The entry Jmp stays: its target
        // also has the loop backedge, so the blocks cannot merge.)
        assert_eq!(removed, 1, "{}", crate::ops::disasm(&f));
        assert!(f.ops.iter().any(|o| matches!(
            o,
            Op::CmpBr {
                pred: CmpPred::Slt,
                then_t: 3,
                else_t: 5,
                ..
            }
        )));
        assert!(!f
            .ops
            .iter()
            .any(|o| matches!(o, Op::Cmp { .. } | Op::Br { .. })));
        // Block structure stays verifier-clean after the remap.
        assert!(crate::verify::verify_function(&f, 1).is_empty());
    }

    #[test]
    fn latch_bin_fuses_into_backedge_jump() {
        // header: cmpbr → body | exit; body: r1 += r0; jmp header.
        // The backedge cannot be elided (the header has two predecessors),
        // so the latch Bin must fuse into it.
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Const { dst: 1, idx: 0 },
                Op::Jmp { target: 3 },
                Op::CmpBr {
                    pred: CmpPred::Slt,
                    ty: IrType::I64,
                    lhs: 1,
                    rhs: 0,
                    then_t: 4,
                    else_t: 6,
                },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 1,
                    lhs: 1,
                    rhs: 0,
                },
                Op::Jmp { target: 3 },
                Op::Ret { src: Some(1) },
            ],
            vec![RegClass::Int; 2],
            vec![0, 3, 4, 6],
        );
        let removed = optimize(&mut f);
        assert_eq!(removed, 1, "{}", crate::ops::disasm(&f));
        assert!(
            f.ops.iter().any(|o| matches!(
                o,
                Op::BinJmp {
                    op: BinOpKind::Add,
                    dst: 1,
                    target: 3,
                    ..
                }
            )),
            "{}",
            crate::ops::disasm(&f)
        );
        assert!(!f.ops.iter().any(|o| matches!(o, Op::Bin { .. })));
        assert!(crate::verify::verify_function(&f, 1).is_empty());
    }

    #[test]
    fn fallthrough_jump_with_other_predecessor_is_kept() {
        // Block 1 is both the fallthrough of block 0 *and* a branch target
        // from block 2 — the jmp cannot be elided.
        let mut f = func(
            vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Jmp { target: 2 },
                Op::Const { dst: 1, idx: 0 },
                Op::Ret { src: Some(1) },
                Op::Jmp { target: 2 },
            ],
            vec![RegClass::Int; 2],
            vec![0, 2, 4],
        );
        optimize(&mut f);
        assert!(
            f.ops.iter().filter(|o| matches!(o, Op::Jmp { .. })).count() >= 2,
            "jmp into a shared block was elided:\n{}",
            crate::ops::disasm(&f)
        );
    }
}
