//! The bytecode format: a register machine over [`RtVal`] values.
//!
//! Each function is one flat `Vec<Op>` — the CFG is linearized in
//! reverse-postorder and branch targets are instruction offsets, so the hot
//! execution loop is `pc`-increment plus one `match` on a dense `#[repr(u8)]`
//! opcode (no block lookups, no phi scans, no operand re-matching).
//!
//! Registers are virtual (`u16` indices into a per-frame register file),
//! typed by coarse [`RegClass`]; constants live in a per-function pool
//! (globals and function references are pool entries resolved once per run,
//! not per use).

use omplt_interp::RtVal;
use omplt_ir::{BinOpKind, CastOp, CmpPred, IrType, SymbolId};

/// A virtual register index within one frame.
pub type Reg = u16;

/// A vector register index within one frame. Vector registers live in their
/// own namespace (`v0`, `v1`, …), parallel to the scalar file — a frame only
/// allocates the vector file when [`VmFunction::num_vregs`] is nonzero, so
/// scalar-only code pays nothing for the tier.
pub type VReg = u16;

/// Maximum lane count any vector op may carry. `--vector-width` requests are
/// clamped here, and [`VecVal`] storage is sized by it.
pub const MAX_LANES: usize = 8;

/// One vector register's value: a fixed array of scalar lanes. Ops only
/// touch lanes `0..w`; the rest are dead storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VecVal {
    /// Per-lane scalar values.
    pub lanes: [RtVal; MAX_LANES],
}

impl Default for VecVal {
    fn default() -> VecVal {
        VecVal {
            lanes: [RtVal::I(0); MAX_LANES],
        }
    }
}

/// Coarse register type class — enough to verify operand compatibility
/// (the fine-grained `IrType` rides on the ops that need width information).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RegClass {
    /// Integers of any width (sign-extended into `i64` storage).
    Int,
    /// `f32`/`f64` (stored as `f64`).
    Float,
    /// Guest pointers.
    Ptr,
}

impl RegClass {
    /// The class a value of IR type `ty` lives in.
    pub fn of(ty: IrType) -> RegClass {
        if ty.is_float() {
            RegClass::Float
        } else if ty == IrType::Ptr {
            RegClass::Ptr
        } else {
            RegClass::Int
        }
    }

    /// Display letter (`i`/`f`/`p`) for the disassembler and diagnostics.
    pub fn letter(self) -> char {
        match self {
            RegClass::Int => 'i',
            RegClass::Float => 'f',
            RegClass::Ptr => 'p',
        }
    }
}

impl std::fmt::Display for RegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Float => f.write_str("float"),
            RegClass::Ptr => f.write_str("ptr"),
        }
    }
}

/// A constant-pool entry. `Global` and `FnPtr` are *symbolic*: their guest
/// addresses exist only once an engine has materialized the module, so the
/// engine resolves the pool to flat [`RtVal`]s at construction time.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PoolConst {
    /// An immediate value.
    Val(RtVal),
    /// Address of a module global (resolved at engine startup).
    Global(SymbolId),
    /// Tagged function pointer (for `__kmpc_fork_call` targets).
    FnPtr(SymbolId),
}

impl PoolConst {
    /// The register class a load of this constant produces.
    pub fn class(self) -> RegClass {
        match self {
            PoolConst::Val(RtVal::I(_)) => RegClass::Int,
            PoolConst::Val(RtVal::F(_)) => RegClass::Float,
            PoolConst::Val(RtVal::P(_)) | PoolConst::Global(_) | PoolConst::FnPtr(_) => {
                RegClass::Ptr
            }
        }
    }
}

/// Who a `Call` op targets: another bytecode function, or a name served by
/// the shared OpenMP/IO runtime (resolution happens at compile time — the
/// module-functions-first precedence is baked into the bytecode).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CallTarget {
    /// Index into [`VmModule::funcs`].
    Bytecode(u32),
    /// Runtime shim, dispatched by interned name.
    Runtime(SymbolId),
}

/// One bytecode instruction.
///
/// `#[repr(u8)]` keeps the discriminant a single dense byte, so the
/// dispatch `match` compiles to a jump table.
#[repr(u8)]
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Op {
    /// `dst = consts[idx]`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant-pool index.
        idx: u16,
    },
    /// `dst = src` (phi-edge copies, promoted-slot reads/writes).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = alloc(bytes)` — fresh zeroed guest allocation.
    Alloca {
        /// Destination (pointer) register.
        dst: Reg,
        /// Allocation size in bytes (≥ 1).
        bytes: u32,
    },
    /// `dst = *(ty*)addr`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address register.
        addr: Reg,
        /// Loaded type (width + decode).
        ty: IrType,
    },
    /// `*(ty*)addr = src`.
    Store {
        /// Value register.
        src: Reg,
        /// Address register.
        addr: Reg,
        /// Stored type (width + encode).
        ty: IrType,
    },
    /// `dst = base + index * elem_size` (byte-scaled GEP).
    Gep {
        /// Destination (pointer) register.
        dst: Reg,
        /// Base pointer register.
        base: Reg,
        /// Index register (sign-extended).
        index: Reg,
        /// Element size in bytes.
        elem_size: u32,
    },
    /// `dst = lhs <op> rhs` at width `ty`.
    Bin {
        /// Operation.
        op: BinOpKind,
        /// Operand type (wrapping width / pointer flavor).
        ty: IrType,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs <pred> rhs` (yields 0/1).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand type.
        ty: IrType,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = cast<op>(src)`.
    Cast {
        /// Conversion.
        op: CastOp,
        /// Source type.
        from: IrType,
        /// Destination type.
        to: IrType,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = cond ? t : f`.
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register (0 = false).
        cond: Reg,
        /// Value if true.
        t: Reg,
        /// Value if false.
        f: Reg,
    },
    /// Call `call_targets[target]` with `call_args[args_at .. args_at+nargs]`.
    Call {
        /// Index into [`VmFunction::call_targets`].
        target: u16,
        /// Start of the argument-register run in [`VmFunction::call_args`].
        args_at: u32,
        /// Number of argument registers.
        nargs: u16,
        /// Callee return type (`Void` ⇒ `dst` is `None`).
        ret: IrType,
        /// Where the return value lands.
        dst: Option<Reg>,
    },
    /// Unconditional jump to an instruction offset.
    Jmp {
        /// Target offset (must be a block start).
        target: u32,
    },
    /// Conditional jump: `cond != 0` ⇒ `then_t`, else `else_t`.
    Br {
        /// Condition register.
        cond: Reg,
        /// Offset when true.
        then_t: u32,
        /// Offset when false.
        else_t: u32,
    },
    /// Fused `dst = lhs <op> rhs; jmp target` — the loop-latch increment
    /// plus backedge, fused by the peephole pass.
    BinJmp {
        /// Operation.
        op: BinOpKind,
        /// Operand type.
        ty: IrType,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
        /// Jump target (must be a block start).
        target: u32,
    },
    /// Fused compare-and-branch: `lhs <pred> rhs` ⇒ `then_t`, else `else_t`.
    /// Produced by the peephole pass from a `Cmp` whose only consumer is the
    /// block-ending `Br` — the hot loop-latch pattern.
    CmpBr {
        /// Predicate.
        pred: CmpPred,
        /// Operand type.
        ty: IrType,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
        /// Offset when the comparison holds.
        then_t: u32,
        /// Offset when it does not.
        else_t: u32,
    },
    /// Return from the frame.
    Ret {
        /// Returned register (`None` for void).
        src: Option<Reg>,
    },
    /// `unreachable` executed — aborts the run.
    Unreachable,
    /// `vdst = vsrc` (vector copy; loop-carried accumulator plumbing).
    VMov {
        /// Destination vector register.
        dst: VReg,
        /// Source vector register.
        src: VReg,
        /// Lane count.
        w: u8,
    },
    /// `vdst.lane[l] = base + l` for `l < w` — the per-block lane indices of
    /// a widened induction variable.
    VIota {
        /// Destination vector register (Int class).
        dst: VReg,
        /// Scalar base register.
        base: Reg,
        /// Lane count.
        w: u8,
    },
    /// `vdst.lane[l] = src` for `l < w`.
    VBroadcast {
        /// Destination vector register.
        dst: VReg,
        /// Scalar source register.
        src: Reg,
        /// Lane count.
        w: u8,
    },
    /// `dst = vsrc.lane[lane]`.
    VExtract {
        /// Scalar destination register.
        dst: Reg,
        /// Source vector register.
        src: VReg,
        /// Lane index (must be < the register's width).
        lane: u8,
    },
    /// Unit-stride vector load: `vdst.lane[l] = *(ty*)(addr + l*size(ty))`.
    VLoad {
        /// Destination vector register.
        dst: VReg,
        /// Scalar lane-0 address register.
        addr: Reg,
        /// Element type (width + decode).
        ty: IrType,
        /// Lane count.
        w: u8,
    },
    /// Unit-stride vector store: `*(ty*)(addr + l*size(ty)) = vsrc.lane[l]`.
    VStore {
        /// Source vector register.
        src: VReg,
        /// Scalar lane-0 address register.
        addr: Reg,
        /// Element type (width + encode).
        ty: IrType,
        /// Lane count.
        w: u8,
    },
    /// Indexed vector load:
    /// `vdst.lane[l] = *(ty*)(base + vidx.lane[l]*elem_size)`.
    VGather {
        /// Index scale in bytes (leads the payload: `#[repr(u8)]` lays
        /// fields out C-style, and a trailing u32 would pad past 16 bytes).
        elem_size: u32,
        /// Destination vector register.
        dst: VReg,
        /// Scalar base pointer register.
        base: Reg,
        /// Per-lane index vector register (Int class).
        idx: VReg,
        /// Element type.
        ty: IrType,
        /// Lane count.
        w: u8,
    },
    /// Indexed vector store:
    /// `*(ty*)(base + vidx.lane[l]*elem_size) = vsrc.lane[l]`.
    VScatter {
        /// Index scale in bytes (leads the payload: `#[repr(u8)]` lays
        /// fields out C-style, and a trailing u32 would pad past 16 bytes).
        elem_size: u32,
        /// Source vector register.
        src: VReg,
        /// Scalar base pointer register.
        base: Reg,
        /// Per-lane index vector register (Int class).
        idx: VReg,
        /// Element type.
        ty: IrType,
        /// Lane count.
        w: u8,
    },
    /// Lane-parallel arithmetic: `vdst.lane[l] = vlhs.lane[l] <op> vrhs.lane[l]`.
    VBin {
        /// Operation.
        op: BinOpKind,
        /// Operand type (wrapping width).
        ty: IrType,
        /// Destination vector register.
        dst: VReg,
        /// Left operand vector register.
        lhs: VReg,
        /// Right operand vector register.
        rhs: VReg,
        /// Lane count.
        w: u8,
    },
    /// Lane-parallel conversion: `vdst.lane[l] = cast<op>(vsrc.lane[l])`.
    VCast {
        /// Conversion.
        op: CastOp,
        /// Source type.
        from: IrType,
        /// Destination type.
        to: IrType,
        /// Destination vector register.
        dst: VReg,
        /// Source vector register.
        src: VReg,
        /// Lane count.
        w: u8,
    },
    /// Horizontal reduction, left fold in lane order:
    /// `dst = (…(lane[0] <op> lane[1]) <op> …) <op> lane[w-1]`.
    VReduce {
        /// Operation (associative integer op for exact results).
        op: BinOpKind,
        /// Operand type.
        ty: IrType,
        /// Scalar destination register.
        dst: Reg,
        /// Source vector register.
        src: VReg,
        /// Lane count.
        w: u8,
    },
    /// Epilogue bookkeeping: tallies `max(src, 0)` scalar remainder
    /// iterations into the `vm.simd.epilogue_iters` counter. No data effect.
    VEpi {
        /// Scalar register holding the remaining-iteration count.
        src: Reg,
    },
}

impl Op {
    /// The register this op defines, if any.
    pub fn def(self) -> Option<Reg> {
        match self {
            Op::Const { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Alloca { dst, .. }
            | Op::Load { dst, .. }
            | Op::Gep { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Cast { dst, .. }
            | Op::Select { dst, .. }
            | Op::BinJmp { dst, .. }
            | Op::VExtract { dst, .. }
            | Op::VReduce { dst, .. } => Some(dst),
            Op::Call { dst, .. } => dst,
            _ => None,
        }
    }

    /// The vector register this op defines, if any.
    pub fn vdef(self) -> Option<VReg> {
        match self {
            Op::VMov { dst, .. }
            | Op::VIota { dst, .. }
            | Op::VBroadcast { dst, .. }
            | Op::VLoad { dst, .. }
            | Op::VGather { dst, .. }
            | Op::VBin { dst, .. }
            | Op::VCast { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Visits every vector register this op *reads*.
    pub fn for_each_vuse(self, mut f: impl FnMut(VReg)) {
        match self {
            Op::VMov { src, .. }
            | Op::VExtract { src, .. }
            | Op::VCast { src, .. }
            | Op::VReduce { src, .. } => f(src),
            Op::VStore { src, .. } => f(src),
            Op::VGather { idx, .. } => f(idx),
            Op::VScatter { src, idx, .. } => {
                f(src);
                f(idx);
            }
            Op::VBin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            _ => {}
        }
    }

    /// Visits every register this op *reads*. Call arguments live in the
    /// shared `call_args` pool, hence the extra parameter.
    pub fn for_each_use(self, call_args: &[Reg], mut f: impl FnMut(Reg)) {
        match self {
            Op::Const { .. } | Op::Alloca { .. } | Op::Jmp { .. } | Op::Unreachable => {}
            Op::Mov { src, .. } => f(src),
            Op::Load { addr, .. } => f(addr),
            Op::Store { src, addr, .. } => {
                f(src);
                f(addr);
            }
            Op::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            Op::Bin { lhs, rhs, .. }
            | Op::Cmp { lhs, rhs, .. }
            | Op::BinJmp { lhs, rhs, .. }
            | Op::CmpBr { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Cast { src, .. } => f(src),
            Op::Select { cond, t, f: fv, .. } => {
                f(cond);
                f(t);
                f(fv);
            }
            Op::Call { args_at, nargs, .. } => {
                for &r in &call_args[args_at as usize..args_at as usize + nargs as usize] {
                    f(r);
                }
            }
            Op::Br { cond, .. } => f(cond),
            Op::Ret { src } => {
                if let Some(r) = src {
                    f(r);
                }
            }
            // Vector ops: only their *scalar* operands are uses here (vector
            // registers have their own namespace and are never renamed).
            Op::VIota { base, .. }
            | Op::VBroadcast { src: base, .. }
            | Op::VLoad { addr: base, .. }
            | Op::VStore { addr: base, .. }
            | Op::VGather { base, .. }
            | Op::VScatter { base, .. }
            | Op::VEpi { src: base } => f(base),
            Op::VMov { .. }
            | Op::VExtract { .. }
            | Op::VBin { .. }
            | Op::VCast { .. }
            | Op::VReduce { .. } => {}
        }
    }

    /// Rewrites every register through `f` (register-allocation renaming).
    /// Call-argument registers are renamed separately on the shared pool.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::Const { dst, .. } | Op::Alloca { dst, .. } => *dst = f(*dst),
            Op::Mov { dst, src } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Op::Load { dst, addr, .. } => {
                *dst = f(*dst);
                *addr = f(*addr);
            }
            Op::Store { src, addr, .. } => {
                *src = f(*src);
                *addr = f(*addr);
            }
            Op::Gep {
                dst, base, index, ..
            } => {
                *dst = f(*dst);
                *base = f(*base);
                *index = f(*index);
            }
            Op::Bin { dst, lhs, rhs, .. }
            | Op::Cmp { dst, lhs, rhs, .. }
            | Op::BinJmp { dst, lhs, rhs, .. } => {
                *dst = f(*dst);
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::CmpBr { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::Cast { dst, src, .. } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Op::Select {
                dst,
                cond,
                t,
                f: fv,
            } => {
                *dst = f(*dst);
                *cond = f(*cond);
                *t = f(*t);
                *fv = f(*fv);
            }
            Op::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            Op::Br { cond, .. } => *cond = f(*cond),
            Op::Ret { src } => {
                if let Some(r) = src {
                    *r = f(*r);
                }
            }
            Op::VIota { base, .. }
            | Op::VBroadcast { src: base, .. }
            | Op::VLoad { addr: base, .. }
            | Op::VStore { addr: base, .. }
            | Op::VGather { base, .. }
            | Op::VScatter { base, .. }
            | Op::VEpi { src: base } => *base = f(*base),
            Op::VExtract { dst, .. } | Op::VReduce { dst, .. } => *dst = f(*dst),
            Op::VMov { .. } | Op::VBin { .. } | Op::VCast { .. } => {}
            Op::Jmp { .. } | Op::Unreachable => {}
        }
    }

    /// Overwrites the destination register (def-coalescing in the peephole
    /// pass). No-op for ops without one.
    pub fn set_def(&mut self, r: Reg) {
        match self {
            Op::Const { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Alloca { dst, .. }
            | Op::Load { dst, .. }
            | Op::Gep { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Cast { dst, .. }
            | Op::Select { dst, .. }
            | Op::BinJmp { dst, .. }
            | Op::VExtract { dst, .. }
            | Op::VReduce { dst, .. } => *dst = r,
            Op::Call { dst: Some(d), .. } => *d = r,
            _ => {}
        }
    }

    /// Rewrites only the registers this op *reads* (copy propagation must
    /// not touch defs — a `Mov` destination can be a live copy-map key).
    /// A `Call` rewrites its own (never shared) slice of `call_args`.
    pub fn map_uses(&mut self, call_args: &mut [Reg], mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Op::Const { .. } | Op::Alloca { .. } | Op::Jmp { .. } | Op::Unreachable => {}
            Op::Mov { src, .. } => *src = f(*src),
            Op::Load { addr, .. } => *addr = f(*addr),
            Op::Store { src, addr, .. } => {
                *src = f(*src);
                *addr = f(*addr);
            }
            Op::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            Op::Bin { lhs, rhs, .. }
            | Op::Cmp { lhs, rhs, .. }
            | Op::BinJmp { lhs, rhs, .. }
            | Op::CmpBr { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Op::Cast { src, .. } => *src = f(*src),
            Op::Select { cond, t, f: fv, .. } => {
                *cond = f(*cond);
                *t = f(*t);
                *fv = f(*fv);
            }
            Op::Call { args_at, nargs, .. } => {
                let lo = *args_at as usize;
                for r in &mut call_args[lo..lo + *nargs as usize] {
                    *r = f(*r);
                }
            }
            Op::Br { cond, .. } => *cond = f(*cond),
            Op::Ret { src } => {
                if let Some(r) = src {
                    *r = f(*r);
                }
            }
            Op::VIota { base, .. }
            | Op::VBroadcast { src: base, .. }
            | Op::VLoad { addr: base, .. }
            | Op::VStore { addr: base, .. }
            | Op::VGather { base, .. }
            | Op::VScatter { base, .. }
            | Op::VEpi { src: base } => *base = f(*base),
            Op::VMov { .. }
            | Op::VExtract { .. }
            | Op::VBin { .. }
            | Op::VCast { .. }
            | Op::VReduce { .. } => {}
        }
    }

    /// True for ops that end a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Op::Jmp { .. }
                | Op::Br { .. }
                | Op::BinJmp { .. }
                | Op::CmpBr { .. }
                | Op::Ret { .. }
                | Op::Unreachable
        )
    }
}

/// One compiled function.
#[derive(Clone, Debug)]
pub struct VmFunction {
    /// Symbol name (module interner string).
    pub name: String,
    /// Register receiving the `i`-th argument at frame entry.
    pub params: Vec<Reg>,
    /// Size of the register file.
    pub num_regs: u16,
    /// Class of each register (indexed by register number).
    pub reg_class: Vec<RegClass>,
    /// Size of the vector register file (0 for scalar-only functions — the
    /// common case; frames skip the vector file entirely then).
    pub num_vregs: u16,
    /// Lane class of each vector register (indexed by vector register).
    pub vreg_class: Vec<RegClass>,
    /// Declared lane count of each vector register; every op touching the
    /// register must carry exactly this width (verifier-enforced).
    pub vreg_width: Vec<u8>,
    /// The flat instruction stream.
    pub ops: Vec<Op>,
    /// Constant pool (deduplicated).
    pub consts: Vec<PoolConst>,
    /// Flattened call-argument register runs (see [`Op::Call`]).
    pub call_args: Vec<Reg>,
    /// Call-target table (deduplicated).
    pub call_targets: Vec<CallTarget>,
    /// Sorted instruction offsets that begin a basic block (branch targets
    /// must land here; also drives liveness and the disassembler).
    pub block_starts: Vec<u32>,
    /// Return type.
    pub ret: IrType,
}

impl VmFunction {
    /// The ops of the block starting at offset `start` (up to the next block
    /// start or the end of the stream).
    pub fn block_range(&self, start: u32) -> std::ops::Range<usize> {
        let end = match self.block_starts.binary_search(&start) {
            Ok(i) if i + 1 < self.block_starts.len() => self.block_starts[i + 1] as usize,
            _ => self.ops.len(),
        };
        start as usize..end
    }
}

/// A compiled module: functions plus a name index.
#[derive(Clone, Debug, Default)]
pub struct VmModule {
    /// Compiled functions.
    pub funcs: Vec<VmFunction>,
}

impl VmModule {
    /// Finds a function index by name.
    pub fn function_index(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// Total op count across all functions (size metric).
    pub fn num_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }
}

/// Renders one function as readable assembly (debug dumps and goldens).
pub fn disasm(f: &VmFunction) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|r| format!("r{r}")).collect();
    // Scalar-only functions keep the historical header shape (goldens pin it).
    let vregs = if f.num_vregs > 0 {
        format!(" vregs={}", f.num_vregs)
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "func @{}({}) regs={}{} ret={}",
        f.name,
        params.join(", "),
        f.num_regs,
        vregs,
        f.ret
    );
    for (pc, op) in f.ops.iter().enumerate() {
        if f.block_starts.binary_search(&(pc as u32)).is_ok() {
            let _ = writeln!(out, "L{pc}:");
        }
        let text = match *op {
            Op::Const { dst, idx } => format!("r{dst} = const {:?}", f.consts[idx as usize]),
            Op::Mov { dst, src } => format!("r{dst} = mov r{src}"),
            Op::Alloca { dst, bytes } => format!("r{dst} = alloca {bytes}"),
            Op::Load { dst, addr, ty } => format!("r{dst} = load.{ty} [r{addr}]"),
            Op::Store { src, addr, ty } => format!("store.{ty} [r{addr}], r{src}"),
            Op::Gep {
                dst,
                base,
                index,
                elem_size,
            } => format!("r{dst} = gep r{base} + r{index}*{elem_size}"),
            Op::Bin {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => format!("r{dst} = {}.{ty} r{lhs}, r{rhs}", op.mnemonic()),
            Op::Cmp {
                pred,
                ty,
                dst,
                lhs,
                rhs,
            } => format!("r{dst} = cmp.{}.{ty} r{lhs}, r{rhs}", pred.mnemonic()),
            Op::Cast {
                op,
                from,
                to,
                dst,
                src,
            } => format!("r{dst} = {}.{from}.{to} r{src}", op.mnemonic()),
            Op::Select {
                dst,
                cond,
                t,
                f: fv,
            } => {
                format!("r{dst} = select r{cond}, r{t}, r{fv}")
            }
            Op::Call {
                target,
                args_at,
                nargs,
                dst,
                ..
            } => {
                let args: Vec<String> = f.call_args
                    [args_at as usize..args_at as usize + nargs as usize]
                    .iter()
                    .map(|r| format!("r{r}"))
                    .collect();
                let callee = match f.call_targets[target as usize] {
                    CallTarget::Bytecode(i) => format!("fn#{i}"),
                    CallTarget::Runtime(s) => format!("rt#{}", s.0),
                };
                match dst {
                    Some(d) => format!("r{d} = call {callee}({})", args.join(", ")),
                    None => format!("call {callee}({})", args.join(", ")),
                }
            }
            Op::Jmp { target } => format!("jmp L{target}"),
            Op::Br {
                cond,
                then_t,
                else_t,
            } => format!("br r{cond}, L{then_t}, L{else_t}"),
            Op::BinJmp {
                op,
                ty,
                dst,
                lhs,
                rhs,
                target,
            } => format!(
                "r{dst} = {}jmp.{ty} r{lhs}, r{rhs}, L{target}",
                op.mnemonic()
            ),
            Op::CmpBr {
                pred,
                ty,
                lhs,
                rhs,
                then_t,
                else_t,
            } => format!(
                "cmpbr.{}.{ty} r{lhs}, r{rhs}, L{then_t}, L{else_t}",
                pred.mnemonic()
            ),
            Op::Ret { src } => match src {
                Some(r) => format!("ret r{r}"),
                None => "ret".to_string(),
            },
            Op::Unreachable => "unreachable".to_string(),
            Op::VMov { dst, src, w } => format!("v{dst} = vmov.x{w} v{src}"),
            Op::VIota { dst, base, w } => format!("v{dst} = viota.x{w} r{base}"),
            Op::VBroadcast { dst, src, w } => {
                format!("v{dst} = vbcast.x{w} r{src}")
            }
            Op::VExtract { dst, src, lane } => {
                format!("r{dst} = vextract v{src}[{lane}]")
            }
            Op::VLoad { dst, addr, ty, w } => {
                format!("v{dst} = vload.{ty}.x{w} [r{addr}]")
            }
            Op::VStore { src, addr, ty, w } => {
                format!("vstore.{ty}.x{w} [r{addr}], v{src}")
            }
            Op::VGather {
                dst,
                base,
                idx,
                ty,
                elem_size,
                w,
            } => format!("v{dst} = vgather.{ty}.x{w} r{base} + v{idx}*{elem_size}"),
            Op::VScatter {
                src,
                base,
                idx,
                ty,
                elem_size,
                w,
            } => format!("vscatter.{ty}.x{w} r{base} + v{idx}*{elem_size}, v{src}"),
            Op::VBin {
                op,
                ty,
                dst,
                lhs,
                rhs,
                w,
            } => format!("v{dst} = v{}.{ty}.x{w} v{lhs}, v{rhs}", op.mnemonic()),
            Op::VCast {
                op,
                from,
                to,
                dst,
                src,
                w,
            } => format!("v{dst} = v{}.{from}.{to}.x{w} v{src}", op.mnemonic()),
            Op::VReduce {
                op,
                ty,
                dst,
                src,
                w,
            } => format!("r{dst} = vreduce.{}.{ty}.x{w} v{src}", op.mnemonic()),
            Op::VEpi { src } => format!("vepi r{src}"),
        };
        let _ = writeln!(out, "  {pc:4}  {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stays_small() {
        // The dispatch loop streams these; keep them cache-friendly.
        assert!(
            std::mem::size_of::<Op>() <= 16,
            "Op grew to {} bytes",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn def_and_uses() {
        let op = Op::Bin {
            op: BinOpKind::Add,
            ty: IrType::I64,
            dst: 2,
            lhs: 0,
            rhs: 1,
        };
        assert_eq!(op.def(), Some(2));
        let mut uses = Vec::new();
        op.for_each_use(&[], |r| uses.push(r));
        assert_eq!(uses, vec![0, 1]);

        let call = Op::Call {
            target: 0,
            args_at: 1,
            nargs: 2,
            ret: IrType::Void,
            dst: None,
        };
        let mut uses = Vec::new();
        call.for_each_use(&[9, 4, 5, 9], |r| uses.push(r));
        assert_eq!(uses, vec![4, 5], "call reads its slice of the arg pool");
    }

    #[test]
    fn vector_ops_report_defs_and_uses() {
        let red = Op::VReduce {
            op: BinOpKind::Add,
            ty: IrType::I64,
            dst: 5,
            src: 1,
            w: 4,
        };
        assert_eq!(red.def(), Some(5), "horizontal reduce defines a scalar");
        assert_eq!(red.vdef(), None);
        let mut vuses = Vec::new();
        red.for_each_vuse(|v| vuses.push(v));
        assert_eq!(vuses, vec![1]);

        let gather = Op::VGather {
            dst: 0,
            base: 3,
            idx: 1,
            ty: IrType::I64,
            elem_size: 8,
            w: 4,
        };
        assert_eq!(gather.vdef(), Some(0));
        let mut uses = Vec::new();
        gather.for_each_use(&[], |r| uses.push(r));
        assert_eq!(uses, vec![3], "gather's base pointer is a scalar use");
        let mut vuses = Vec::new();
        gather.for_each_vuse(|v| vuses.push(v));
        assert_eq!(vuses, vec![1]);
    }

    #[test]
    fn pool_const_classes() {
        assert_eq!(PoolConst::Val(RtVal::I(3)).class(), RegClass::Int);
        assert_eq!(PoolConst::Val(RtVal::F(1.5)).class(), RegClass::Float);
        assert_eq!(PoolConst::Global(SymbolId(0)).class(), RegClass::Ptr);
        assert_eq!(PoolConst::FnPtr(SymbolId(1)).class(), RegClass::Ptr);
    }
}
