//! The bytecode execution engine.
//!
//! [`VmEngine`] runs [`crate::ops::VmModule`] bytecode: one heap-allocated
//! register file per frame, a `pc` loop whose body is a single `match` on
//! the dense opcode, and no `unsafe` anywhere — the load-time verifier
//! ([`crate::verify`]) has already proven every register index, pool index,
//! and jump target in-bounds.
//!
//! Everything *around* the dispatch loop is shared with the interpreter:
//!
//! * guest memory is the interpreter's atomic-word [`Memory`], so racy guest
//!   programs degrade to relaxed-atomic semantics identically;
//! * arithmetic goes through `omplt_interp::exec::{exec_bin, exec_cmp,
//!   exec_cast}` — bit-identical results by construction;
//! * the whole OpenMP runtime (`__kmpc_fork_call` thread teams, static/
//!   dynamic/guided/runtime schedules, barriers, `nowait`) is the generic
//!   `omplt_interp::runtime::dispatch`, reached through the [`Engine`]
//!   trait. Team threads run their own VM frames over the same shared
//!   engine state.

use crate::ops::{CallTarget, Op, PoolConst, VecVal, VmModule};
use omplt_interp::engine::{self, ChunkLog, Engine};
use omplt_interp::exec::{decode_scalar, encode_scalar, exec_bin, exec_cast, exec_cmp};
use omplt_interp::runtime::{self, RuntimeConfig, ThreadCtx};
use omplt_interp::{ExecError, Memory, RtVal, RunResult};
use omplt_ir::{IrType, Module};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared VM state for one run (`Sync`; shared across team threads).
pub struct VmEngine<'m> {
    /// The IR module (symbol names, globals — the runtime needs both).
    module: &'m Module,
    /// The compiled bytecode.
    code: &'m VmModule,
    /// Guest memory (same implementation the interpreter uses).
    mem: Arc<Memory>,
    /// Collected stdout.
    out: Mutex<String>,
    /// Task counter.
    tasks: AtomicU64,
    /// Remaining instruction budget, shared across all threads.
    fuel: AtomicU64,
    /// Total ops retired so far, across all threads (see
    /// [`RunResult::ops_retired`]).
    ops: AtomicU64,
    /// Runtime configuration.
    cfg: RuntimeConfig,
    /// Guest addresses of module globals, by symbol index.
    global_addrs: Vec<(u32, u64)>,
    /// Served schedule chunks (recorded when `cfg.log_chunks` is set).
    chunk_log: ChunkLog,
    /// Per-function constant pools with globals/function pointers resolved
    /// to concrete guest addresses (done once here, not per `Const` op).
    resolved: Vec<Vec<RtVal>>,
}

impl<'m> VmEngine<'m> {
    /// Creates an engine: materializes module globals (identical layout to
    /// the interpreter) and resolves every constant pool against them.
    pub fn new(
        module: &'m Module,
        code: &'m VmModule,
        cfg: RuntimeConfig,
    ) -> Result<VmEngine<'m>, ExecError> {
        let mem = Arc::new(Memory::new());
        let global_addrs = engine::materialize_globals(module, &mem);
        let mut resolved = Vec::with_capacity(code.funcs.len());
        for f in &code.funcs {
            let mut pool = Vec::with_capacity(f.consts.len());
            for &c in &f.consts {
                pool.push(match c {
                    PoolConst::Val(v) => v,
                    PoolConst::Global(s) => RtVal::P(
                        global_addrs
                            .iter()
                            .find(|(sym, _)| *sym == s.0)
                            .map(|(_, a)| *a)
                            .ok_or_else(|| {
                                ExecError::Malformed(format!("unknown global {}", s.0))
                            })?,
                    ),
                    PoolConst::FnPtr(s) => RtVal::P(Memory::encode_fn_ptr(s.0)),
                });
            }
            resolved.push(pool);
        }
        Ok(VmEngine {
            module,
            code,
            mem,
            out: Mutex::new(String::new()),
            tasks: AtomicU64::new(0),
            fuel: AtomicU64::new(cfg.max_steps),
            ops: AtomicU64::new(0),
            cfg,
            global_addrs,
            chunk_log: ChunkLog::new(),
            resolved,
        })
    }

    fn finish(&self, ret: Option<RtVal>) -> RunResult {
        RunResult {
            stdout: std::mem::take(&mut *self.out.lock().expect("out lock")),
            exit_code: ret.map_or(0, |v| v.as_i()),
            tasks_created: self.tasks.load(Ordering::Relaxed),
            chunk_log: self.chunk_log.take_sorted(),
            final_globals: engine::snapshot_globals(self.module, &self.mem, &self.global_addrs),
            ops_retired: self.ops.load(Ordering::Relaxed),
        }
    }

    /// Runs `main` and collects results.
    pub fn run_main(&self) -> Result<RunResult, ExecError> {
        let _span = omplt_trace::span("vm.run");
        let ctx = ThreadCtx::initial();
        let ret = self.call_by_name("main", vec![], &ctx)?;
        Ok(self.finish(ret))
    }

    /// Runs an arbitrary function (for kernels without `main`).
    pub fn run_function(&self, name: &str, args: Vec<RtVal>) -> Result<RunResult, ExecError> {
        let ctx = ThreadCtx::initial();
        let ret = self.call_by_name(name, args, &ctx)?;
        Ok(self.finish(ret))
    }

    /// Calls a function by name: bytecode functions first, then runtime
    /// shims — the same precedence the interpreter uses (and that the
    /// bytecode compiler already baked into direct `Call` ops; this path
    /// serves `main` and `__kmpc_fork_call`'s outlined bodies).
    pub fn call_by_name(
        &self,
        name: &str,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        if let Some(i) = self.code.function_index(name) {
            return self.run_frame(i, args, ctx);
        }
        runtime::dispatch(self, name, args, ctx)
    }

    /// Executes one bytecode frame.
    pub fn run_frame(
        &self,
        fi: u32,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        let mut retired = 0u64;
        let r = self.run_frame_inner(fi, args, ctx, &mut retired);
        self.ops.fetch_add(retired, Ordering::Relaxed);
        if omplt_trace::active() {
            omplt_trace::count("vm.ops.retired", retired);
        }
        r
    }

    fn run_frame_inner(
        &self,
        fi: u32,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
        retired: &mut u64,
    ) -> Result<Option<RtVal>, ExecError> {
        let f = &self.code.funcs[fi as usize];
        let consts = &self.resolved[fi as usize];
        let mut regs: Vec<RtVal> = vec![RtVal::I(0); f.num_regs as usize];
        for (i, &p) in f.params.iter().enumerate() {
            regs[p as usize] = *args
                .get(i)
                .ok_or_else(|| ExecError::Malformed(format!("missing argument {i}")))?;
        }

        // The vector file is only materialized for widened functions, so
        // scalar code pays nothing for the tier.
        let mut vregs: Vec<VecVal> = vec![VecVal::default(); f.num_vregs as usize];

        // Fuel in batches, like the interpreter: one shared-atomic touch per
        // 4096 ops so team threads don't serialize on the budget counter.
        // Retired-op accounting rides on the same counter (granted − unused)
        // instead of a second per-op increment in the hot loop.
        let mut granted: u64 = 0;
        let mut local_fuel: u64 = 0;
        let r = self.dispatch(
            f,
            consts,
            &mut regs,
            &mut vregs,
            ctx,
            &mut granted,
            &mut local_fuel,
        );
        *retired += granted - local_fuel;
        r
    }

    /// The dispatch loop proper. `granted`/`local_fuel` live in the caller
    /// so retired-op counts survive early `?` returns.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        f: &crate::ops::VmFunction,
        consts: &[RtVal],
        regs: &mut [RtVal],
        vregs: &mut [VecVal],
        ctx: &ThreadCtx,
        granted: &mut u64,
        local_fuel: &mut u64,
    ) -> Result<Option<RtVal>, ExecError> {
        // `fuel` stays in a machine register; it is written back to
        // `*local_fuel` only on the explicit exits below. `?`-propagated
        // errors skip the write-back, so failed frames report the
        // batch-granted count — still deterministic, just coarser.
        const FUEL_BATCH: u64 = 4096;
        let mut fuel = *local_fuel;
        let mut pc: usize = 0;
        loop {
            if fuel == 0 {
                let prev = self.fuel.fetch_sub(FUEL_BATCH, Ordering::Relaxed);
                if prev < FUEL_BATCH {
                    return Err(ExecError::FuelExhausted);
                }
                // Per-job wall-clock deadline, checked once per batch so the
                // per-op dispatch loop stays untouched.
                if let Some(dl) = self.cfg.deadline {
                    if dl.expired() {
                        return Err(ExecError::DeadlineExpired(dl.ms));
                    }
                }
                fuel = FUEL_BATCH;
                *granted += FUEL_BATCH;
            }
            fuel -= 1;
            let op = f.ops[pc];
            pc += 1;
            match op {
                Op::Const { dst, idx } => regs[dst as usize] = consts[idx as usize],
                Op::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
                Op::Alloca { dst, bytes } => {
                    regs[dst as usize] = RtVal::P(self.mem.alloc(bytes as u64));
                }
                Op::Load { dst, addr, ty } => {
                    let raw = self
                        .mem
                        .load(regs[addr as usize].as_p(), ty.size())
                        .map_err(|e| ExecError::Mem(e.what))?;
                    regs[dst as usize] = decode_scalar(ty, raw);
                }
                Op::Store { src, addr, ty } => {
                    self.mem
                        .store(
                            regs[addr as usize].as_p(),
                            ty.size(),
                            encode_scalar(ty, regs[src as usize]),
                        )
                        .map_err(|e| ExecError::Mem(e.what))?;
                }
                Op::Gep {
                    dst,
                    base,
                    index,
                    elem_size,
                } => {
                    let p = regs[base as usize].as_p();
                    let i = regs[index as usize].as_i();
                    regs[dst as usize] =
                        RtVal::P(p.wrapping_add((i as u64).wrapping_mul(elem_size as u64)));
                }
                Op::Bin {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                } => {
                    regs[dst as usize] = exec_bin(op, ty, regs[lhs as usize], regs[rhs as usize])?;
                }
                Op::Cmp {
                    pred,
                    ty,
                    dst,
                    lhs,
                    rhs,
                } => {
                    regs[dst as usize] =
                        RtVal::I(exec_cmp(pred, ty, regs[lhs as usize], regs[rhs as usize]) as i64);
                }
                Op::Cast {
                    op,
                    from,
                    to,
                    dst,
                    src,
                } => {
                    regs[dst as usize] = exec_cast(op, from, to, regs[src as usize]);
                }
                Op::Select {
                    dst,
                    cond,
                    t,
                    f: fv,
                } => {
                    let c = regs[cond as usize].as_i();
                    regs[dst as usize] = regs[if c != 0 { t } else { fv } as usize];
                }
                Op::Call {
                    target,
                    args_at,
                    nargs,
                    ret,
                    dst,
                } => {
                    let lo = args_at as usize;
                    let mut vs = Vec::with_capacity(nargs as usize);
                    for &r in &f.call_args[lo..lo + nargs as usize] {
                        vs.push(regs[r as usize]);
                    }
                    let r = match f.call_targets[target as usize] {
                        CallTarget::Bytecode(i) => self.run_frame(i, vs, ctx)?,
                        CallTarget::Runtime(sym) => {
                            let name = self.module.symbol_name(sym);
                            runtime::dispatch(self, name, vs, ctx)?
                        }
                    };
                    if ret != IrType::Void {
                        if let Some(d) = dst {
                            regs[d as usize] = r.unwrap_or(RtVal::I(0));
                        }
                    }
                }
                Op::Jmp { target } => pc = target as usize,
                Op::BinJmp {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                    target,
                } => {
                    regs[dst as usize] = exec_bin(op, ty, regs[lhs as usize], regs[rhs as usize])?;
                    pc = target as usize;
                }
                Op::Br {
                    cond,
                    then_t,
                    else_t,
                } => {
                    pc = if regs[cond as usize].as_i() != 0 {
                        then_t
                    } else {
                        else_t
                    } as usize;
                }
                Op::CmpBr {
                    pred,
                    ty,
                    lhs,
                    rhs,
                    then_t,
                    else_t,
                } => {
                    pc = if exec_cmp(pred, ty, regs[lhs as usize], regs[rhs as usize]) {
                        then_t
                    } else {
                        else_t
                    } as usize;
                }
                Op::Ret { src } => {
                    *local_fuel = fuel;
                    return Ok(src.map(|r| regs[r as usize]));
                }
                Op::Unreachable => {
                    *local_fuel = fuel;
                    return Err(ExecError::Unreachable);
                }
                Op::VMov { dst, src, .. } => vregs[dst as usize] = vregs[src as usize],
                Op::VIota { dst, base, w } => {
                    let b = regs[base as usize].as_i();
                    let v = &mut vregs[dst as usize];
                    for l in 0..w as usize {
                        v.lanes[l] = RtVal::I(b.wrapping_add(l as i64));
                    }
                }
                Op::VBroadcast { dst, src, w } => {
                    let s = regs[src as usize];
                    let v = &mut vregs[dst as usize];
                    for l in 0..w as usize {
                        v.lanes[l] = s;
                    }
                }
                Op::VExtract { dst, src, lane } => {
                    regs[dst as usize] = vregs[src as usize].lanes[lane as usize];
                }
                Op::VLoad { dst, addr, ty, w } => {
                    let base = regs[addr as usize].as_p();
                    let size = ty.size();
                    let mut v = VecVal::default();
                    for l in 0..w as usize {
                        let raw = self
                            .mem
                            .load(base.wrapping_add(l as u64 * size), size)
                            .map_err(|e| ExecError::Mem(e.what))?;
                        v.lanes[l] = decode_scalar(ty, raw);
                    }
                    vregs[dst as usize] = v;
                }
                Op::VStore { src, addr, ty, w } => {
                    let base = regs[addr as usize].as_p();
                    let size = ty.size();
                    let v = vregs[src as usize];
                    for l in 0..w as usize {
                        self.mem
                            .store(
                                base.wrapping_add(l as u64 * size),
                                size,
                                encode_scalar(ty, v.lanes[l]),
                            )
                            .map_err(|e| ExecError::Mem(e.what))?;
                    }
                }
                Op::VGather {
                    dst,
                    base,
                    idx,
                    ty,
                    elem_size,
                    w,
                } => {
                    let p = regs[base as usize].as_p();
                    let iv = vregs[idx as usize];
                    let mut v = VecVal::default();
                    for l in 0..w as usize {
                        let a = p.wrapping_add(
                            (iv.lanes[l].as_i() as u64).wrapping_mul(elem_size as u64),
                        );
                        let raw = self
                            .mem
                            .load(a, ty.size())
                            .map_err(|e| ExecError::Mem(e.what))?;
                        v.lanes[l] = decode_scalar(ty, raw);
                    }
                    vregs[dst as usize] = v;
                }
                Op::VScatter {
                    src,
                    base,
                    idx,
                    ty,
                    elem_size,
                    w,
                } => {
                    let p = regs[base as usize].as_p();
                    let iv = vregs[idx as usize];
                    let v = vregs[src as usize];
                    for l in 0..w as usize {
                        let a = p.wrapping_add(
                            (iv.lanes[l].as_i() as u64).wrapping_mul(elem_size as u64),
                        );
                        self.mem
                            .store(a, ty.size(), encode_scalar(ty, v.lanes[l]))
                            .map_err(|e| ExecError::Mem(e.what))?;
                    }
                }
                Op::VBin {
                    op,
                    ty,
                    dst,
                    lhs,
                    rhs,
                    w,
                } => {
                    let a = vregs[lhs as usize];
                    let b = vregs[rhs as usize];
                    let mut v = VecVal::default();
                    for l in 0..w as usize {
                        v.lanes[l] = exec_bin(op, ty, a.lanes[l], b.lanes[l])?;
                    }
                    vregs[dst as usize] = v;
                }
                Op::VCast {
                    op,
                    from,
                    to,
                    dst,
                    src,
                    w,
                } => {
                    let s = vregs[src as usize];
                    let mut v = VecVal::default();
                    for l in 0..w as usize {
                        v.lanes[l] = exec_cast(op, from, to, s.lanes[l]);
                    }
                    vregs[dst as usize] = v;
                }
                Op::VReduce {
                    op,
                    ty,
                    dst,
                    src,
                    w,
                } => {
                    let v = vregs[src as usize];
                    let mut acc = v.lanes[0];
                    for l in 1..w as usize {
                        acc = exec_bin(op, ty, acc, v.lanes[l])?;
                    }
                    regs[dst as usize] = acc;
                }
                Op::VEpi { src } => {
                    if omplt_trace::active() {
                        let left = regs[src as usize].as_i().max(0) as u64;
                        omplt_trace::count("vm.simd.epilogue_iters", left);
                    }
                }
            }
        }
    }
}

impl Engine for VmEngine<'_> {
    fn module(&self) -> &Module {
        self.module
    }

    fn mem(&self) -> &Memory {
        &self.mem
    }

    fn out(&self) -> &Mutex<String> {
        &self.out
    }

    fn tasks(&self) -> &AtomicU64 {
        &self.tasks
    }

    fn cfg(&self) -> &RuntimeConfig {
        &self.cfg
    }

    fn chunk_log(&self) -> Option<&ChunkLog> {
        self.cfg.log_chunks.then_some(&self.chunk_log)
    }

    fn trace_prefix(&self) -> &'static str {
        "vm"
    }

    fn call_by_name(
        &self,
        name: &str,
        args: Vec<RtVal>,
        ctx: &ThreadCtx,
    ) -> Result<Option<RtVal>, ExecError> {
        VmEngine::call_by_name(self, name, args, ctx)
    }
}
