//! Binary serialization for compiled bytecode ([`VmModule`]).
//!
//! The daemon's artifact cache stores compiled modules as flat byte strings
//! so cache sizing is exact (the LRU budget counts real bytes) and so cached
//! artifacts survive any future move to an on-disk or remote cache tier.
//! The format is a private, versioned, little-endian encoding:
//!
//! ```text
//! "OMPLTBC\x02"  magic + format version (bump on any layout change)
//! u32            function count
//! per function:  name, ret, params, reg classes, vreg classes/widths,
//!                const pool, call args, call targets, block starts, ops
//! ```
//!
//! Every enum crosses the boundary through an exhaustive `match`, so adding
//! an IR or bytecode variant without extending the codec is a compile error,
//! not a silent corruption. [`decode`] validates tags and lengths and fails
//! with a message — never panics — because cached bytes, like anything a
//! server reads back, are treated as untrusted input.

use crate::ops::{CallTarget, Op, PoolConst, Reg, RegClass, VmFunction, VmModule};
use omplt_interp::RtVal;
use omplt_ir::{BinOpKind, CastOp, CmpPred, IrType, SymbolId};

/// Magic prefix: 7 identifying bytes plus a 1-byte format version.
const MAGIC: &[u8; 8] = b"OMPLTBC\x02";

/// A malformed or version-incompatible bytecode image.
#[derive(Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode image: {}", self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(msg.into()))
}

// ---------------------------------------------------------------- encoding

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn reg(&mut self, r: Reg) {
        self.u16(r);
    }
    fn opt_reg(&mut self, r: Option<Reg>) {
        match r {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.u16(r);
            }
        }
    }
    fn ty(&mut self, t: IrType) {
        self.u8(ty_tag(t));
    }
}

fn ty_tag(t: IrType) -> u8 {
    match t {
        IrType::Void => 0,
        IrType::I1 => 1,
        IrType::I8 => 2,
        IrType::I16 => 3,
        IrType::I32 => 4,
        IrType::I64 => 5,
        IrType::F32 => 6,
        IrType::F64 => 7,
        IrType::Ptr => 8,
    }
}

fn ty_from(tag: u8) -> Result<IrType, DecodeError> {
    Ok(match tag {
        0 => IrType::Void,
        1 => IrType::I1,
        2 => IrType::I8,
        3 => IrType::I16,
        4 => IrType::I32,
        5 => IrType::I64,
        6 => IrType::F32,
        7 => IrType::F64,
        8 => IrType::Ptr,
        other => return err(format!("bad IrType tag {other}")),
    })
}

fn bin_tag(op: BinOpKind) -> u8 {
    match op {
        BinOpKind::Add => 0,
        BinOpKind::Sub => 1,
        BinOpKind::Mul => 2,
        BinOpKind::SDiv => 3,
        BinOpKind::UDiv => 4,
        BinOpKind::SRem => 5,
        BinOpKind::URem => 6,
        BinOpKind::Shl => 7,
        BinOpKind::AShr => 8,
        BinOpKind::LShr => 9,
        BinOpKind::And => 10,
        BinOpKind::Or => 11,
        BinOpKind::Xor => 12,
        BinOpKind::FAdd => 13,
        BinOpKind::FSub => 14,
        BinOpKind::FMul => 15,
        BinOpKind::FDiv => 16,
        BinOpKind::FRem => 17,
    }
}

fn bin_from(tag: u8) -> Result<BinOpKind, DecodeError> {
    Ok(match tag {
        0 => BinOpKind::Add,
        1 => BinOpKind::Sub,
        2 => BinOpKind::Mul,
        3 => BinOpKind::SDiv,
        4 => BinOpKind::UDiv,
        5 => BinOpKind::SRem,
        6 => BinOpKind::URem,
        7 => BinOpKind::Shl,
        8 => BinOpKind::AShr,
        9 => BinOpKind::LShr,
        10 => BinOpKind::And,
        11 => BinOpKind::Or,
        12 => BinOpKind::Xor,
        13 => BinOpKind::FAdd,
        14 => BinOpKind::FSub,
        15 => BinOpKind::FMul,
        16 => BinOpKind::FDiv,
        17 => BinOpKind::FRem,
        other => return err(format!("bad BinOpKind tag {other}")),
    })
}

fn pred_tag(p: CmpPred) -> u8 {
    match p {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Slt => 2,
        CmpPred::Sle => 3,
        CmpPred::Sgt => 4,
        CmpPred::Sge => 5,
        CmpPred::Ult => 6,
        CmpPred::Ule => 7,
        CmpPred::Ugt => 8,
        CmpPred::Uge => 9,
        CmpPred::FEq => 10,
        CmpPred::FNe => 11,
        CmpPred::FLt => 12,
        CmpPred::FLe => 13,
        CmpPred::FGt => 14,
        CmpPred::FGe => 15,
    }
}

fn pred_from(tag: u8) -> Result<CmpPred, DecodeError> {
    Ok(match tag {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Slt,
        3 => CmpPred::Sle,
        4 => CmpPred::Sgt,
        5 => CmpPred::Sge,
        6 => CmpPred::Ult,
        7 => CmpPred::Ule,
        8 => CmpPred::Ugt,
        9 => CmpPred::Uge,
        10 => CmpPred::FEq,
        11 => CmpPred::FNe,
        12 => CmpPred::FLt,
        13 => CmpPred::FLe,
        14 => CmpPred::FGt,
        15 => CmpPred::FGe,
        other => return err(format!("bad CmpPred tag {other}")),
    })
}

fn cast_tag(c: CastOp) -> u8 {
    match c {
        CastOp::Trunc => 0,
        CastOp::ZExt => 1,
        CastOp::SExt => 2,
        CastOp::SiToFp => 3,
        CastOp::UiToFp => 4,
        CastOp::FpToSi => 5,
        CastOp::FpToUi => 6,
        CastOp::FpTrunc => 7,
        CastOp::FpExt => 8,
        CastOp::PtrToInt => 9,
        CastOp::IntToPtr => 10,
    }
}

fn cast_from(tag: u8) -> Result<CastOp, DecodeError> {
    Ok(match tag {
        0 => CastOp::Trunc,
        1 => CastOp::ZExt,
        2 => CastOp::SExt,
        3 => CastOp::SiToFp,
        4 => CastOp::UiToFp,
        5 => CastOp::FpToSi,
        6 => CastOp::FpToUi,
        7 => CastOp::FpTrunc,
        8 => CastOp::FpExt,
        9 => CastOp::PtrToInt,
        10 => CastOp::IntToPtr,
        other => return err(format!("bad CastOp tag {other}")),
    })
}

fn class_tag(c: RegClass) -> u8 {
    match c {
        RegClass::Int => 0,
        RegClass::Float => 1,
        RegClass::Ptr => 2,
    }
}

fn class_from(tag: u8) -> Result<RegClass, DecodeError> {
    Ok(match tag {
        0 => RegClass::Int,
        1 => RegClass::Float,
        2 => RegClass::Ptr,
        other => return err(format!("bad RegClass tag {other}")),
    })
}

fn encode_op(e: &mut Enc, op: Op) {
    match op {
        Op::Const { dst, idx } => {
            e.u8(0);
            e.reg(dst);
            e.u16(idx);
        }
        Op::Mov { dst, src } => {
            e.u8(1);
            e.reg(dst);
            e.reg(src);
        }
        Op::Alloca { dst, bytes } => {
            e.u8(2);
            e.reg(dst);
            e.u32(bytes);
        }
        Op::Load { dst, addr, ty } => {
            e.u8(3);
            e.reg(dst);
            e.reg(addr);
            e.ty(ty);
        }
        Op::Store { src, addr, ty } => {
            e.u8(4);
            e.reg(src);
            e.reg(addr);
            e.ty(ty);
        }
        Op::Gep {
            dst,
            base,
            index,
            elem_size,
        } => {
            e.u8(5);
            e.reg(dst);
            e.reg(base);
            e.reg(index);
            e.u32(elem_size);
        }
        Op::Bin {
            op,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            e.u8(6);
            e.u8(bin_tag(op));
            e.ty(ty);
            e.reg(dst);
            e.reg(lhs);
            e.reg(rhs);
        }
        Op::Cmp {
            pred,
            ty,
            dst,
            lhs,
            rhs,
        } => {
            e.u8(7);
            e.u8(pred_tag(pred));
            e.ty(ty);
            e.reg(dst);
            e.reg(lhs);
            e.reg(rhs);
        }
        Op::Cast {
            op,
            from,
            to,
            dst,
            src,
        } => {
            e.u8(8);
            e.u8(cast_tag(op));
            e.ty(from);
            e.ty(to);
            e.reg(dst);
            e.reg(src);
        }
        Op::Select { dst, cond, t, f } => {
            e.u8(9);
            e.reg(dst);
            e.reg(cond);
            e.reg(t);
            e.reg(f);
        }
        Op::Call {
            target,
            args_at,
            nargs,
            ret,
            dst,
        } => {
            e.u8(10);
            e.u16(target);
            e.u32(args_at);
            e.u16(nargs);
            e.ty(ret);
            e.opt_reg(dst);
        }
        Op::Jmp { target } => {
            e.u8(11);
            e.u32(target);
        }
        Op::Br {
            cond,
            then_t,
            else_t,
        } => {
            e.u8(12);
            e.reg(cond);
            e.u32(then_t);
            e.u32(else_t);
        }
        Op::BinJmp {
            op,
            ty,
            dst,
            lhs,
            rhs,
            target,
        } => {
            e.u8(13);
            e.u8(bin_tag(op));
            e.ty(ty);
            e.reg(dst);
            e.reg(lhs);
            e.reg(rhs);
            e.u32(target);
        }
        Op::CmpBr {
            pred,
            ty,
            lhs,
            rhs,
            then_t,
            else_t,
        } => {
            e.u8(14);
            e.u8(pred_tag(pred));
            e.ty(ty);
            e.reg(lhs);
            e.reg(rhs);
            e.u32(then_t);
            e.u32(else_t);
        }
        Op::Ret { src } => {
            e.u8(15);
            e.opt_reg(src);
        }
        Op::Unreachable => e.u8(16),
        Op::VMov { dst, src, w } => {
            e.u8(17);
            e.reg(dst);
            e.reg(src);
            e.u8(w);
        }
        Op::VIota { dst, base, w } => {
            e.u8(18);
            e.reg(dst);
            e.reg(base);
            e.u8(w);
        }
        Op::VBroadcast { dst, src, w } => {
            e.u8(19);
            e.reg(dst);
            e.reg(src);
            e.u8(w);
        }
        Op::VExtract { dst, src, lane } => {
            e.u8(20);
            e.reg(dst);
            e.reg(src);
            e.u8(lane);
        }
        Op::VLoad { dst, addr, ty, w } => {
            e.u8(21);
            e.reg(dst);
            e.reg(addr);
            e.ty(ty);
            e.u8(w);
        }
        Op::VStore { src, addr, ty, w } => {
            e.u8(22);
            e.reg(src);
            e.reg(addr);
            e.ty(ty);
            e.u8(w);
        }
        Op::VGather {
            dst,
            base,
            idx,
            ty,
            elem_size,
            w,
        } => {
            e.u8(23);
            e.reg(dst);
            e.reg(base);
            e.reg(idx);
            e.ty(ty);
            e.u32(elem_size);
            e.u8(w);
        }
        Op::VScatter {
            src,
            base,
            idx,
            ty,
            elem_size,
            w,
        } => {
            e.u8(24);
            e.reg(src);
            e.reg(base);
            e.reg(idx);
            e.ty(ty);
            e.u32(elem_size);
            e.u8(w);
        }
        Op::VBin {
            op,
            ty,
            dst,
            lhs,
            rhs,
            w,
        } => {
            e.u8(25);
            e.u8(bin_tag(op));
            e.ty(ty);
            e.reg(dst);
            e.reg(lhs);
            e.reg(rhs);
            e.u8(w);
        }
        Op::VCast {
            op,
            from,
            to,
            dst,
            src,
            w,
        } => {
            e.u8(26);
            e.u8(cast_tag(op));
            e.ty(from);
            e.ty(to);
            e.reg(dst);
            e.reg(src);
            e.u8(w);
        }
        Op::VReduce {
            op,
            ty,
            dst,
            src,
            w,
        } => {
            e.u8(27);
            e.u8(bin_tag(op));
            e.ty(ty);
            e.reg(dst);
            e.reg(src);
            e.u8(w);
        }
        Op::VEpi { src } => {
            e.u8(28);
            e.reg(src);
        }
    }
}

fn encode_const(e: &mut Enc, c: PoolConst) {
    match c {
        PoolConst::Val(RtVal::I(v)) => {
            e.u8(0);
            e.u64(v as u64);
        }
        PoolConst::Val(RtVal::F(v)) => {
            e.u8(1);
            e.u64(v.to_bits());
        }
        PoolConst::Val(RtVal::P(v)) => {
            e.u8(2);
            e.u64(v);
        }
        PoolConst::Global(s) => {
            e.u8(3);
            e.u32(s.0);
        }
        PoolConst::FnPtr(s) => {
            e.u8(4);
            e.u32(s.0);
        }
    }
}

/// Serializes a compiled module to its canonical byte image.
pub fn encode(m: &VmModule) -> Vec<u8> {
    let mut e = Enc {
        buf: Vec::with_capacity(64 + m.num_ops() * 12),
    };
    e.buf.extend_from_slice(MAGIC);
    e.u32(m.funcs.len() as u32);
    for f in &m.funcs {
        e.str(&f.name);
        e.ty(f.ret);
        e.u16(f.num_regs);
        e.u32(f.params.len() as u32);
        for &r in &f.params {
            e.reg(r);
        }
        e.u32(f.reg_class.len() as u32);
        for &c in &f.reg_class {
            e.u8(class_tag(c));
        }
        e.u16(f.num_vregs);
        e.u32(f.vreg_class.len() as u32);
        for &c in &f.vreg_class {
            e.u8(class_tag(c));
        }
        e.u32(f.vreg_width.len() as u32);
        for &w in &f.vreg_width {
            e.u8(w);
        }
        e.u32(f.consts.len() as u32);
        for &c in &f.consts {
            encode_const(&mut e, c);
        }
        e.u32(f.call_args.len() as u32);
        for &r in &f.call_args {
            e.reg(r);
        }
        e.u32(f.call_targets.len() as u32);
        for &t in &f.call_targets {
            match t {
                CallTarget::Bytecode(i) => {
                    e.u8(0);
                    e.u32(i);
                }
                CallTarget::Runtime(s) => {
                    e.u8(1);
                    e.u32(s.0);
                }
            }
        }
        e.u32(f.block_starts.len() as u32);
        for &b in &f.block_starts {
            e.u32(b);
        }
        e.u32(f.ops.len() as u32);
        for &op in &f.ops {
            encode_op(&mut e, op);
        }
    }
    e.buf
}

// ---------------------------------------------------------------- decoding

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.at < n {
            return err("truncated");
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length prefix used to size a preallocation; bounded so a corrupt
    /// image cannot request an absurd reservation before truncation is hit.
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.at {
            return err(format!("length {n} exceeds remaining image"));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| err("invalid UTF-8 in name"))
    }
    fn reg(&mut self) -> Result<Reg, DecodeError> {
        self.u16()
    }
    fn opt_reg(&mut self) -> Result<Option<Reg>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u16()?)),
            other => err(format!("bad Option<Reg> tag {other}")),
        }
    }
    fn ty(&mut self) -> Result<IrType, DecodeError> {
        ty_from(self.u8()?)
    }
}

fn decode_op(d: &mut Dec) -> Result<Op, DecodeError> {
    Ok(match d.u8()? {
        0 => Op::Const {
            dst: d.reg()?,
            idx: d.u16()?,
        },
        1 => Op::Mov {
            dst: d.reg()?,
            src: d.reg()?,
        },
        2 => Op::Alloca {
            dst: d.reg()?,
            bytes: d.u32()?,
        },
        3 => Op::Load {
            dst: d.reg()?,
            addr: d.reg()?,
            ty: d.ty()?,
        },
        4 => Op::Store {
            src: d.reg()?,
            addr: d.reg()?,
            ty: d.ty()?,
        },
        5 => Op::Gep {
            dst: d.reg()?,
            base: d.reg()?,
            index: d.reg()?,
            elem_size: d.u32()?,
        },
        6 => Op::Bin {
            op: bin_from(d.u8()?)?,
            ty: d.ty()?,
            dst: d.reg()?,
            lhs: d.reg()?,
            rhs: d.reg()?,
        },
        7 => Op::Cmp {
            pred: pred_from(d.u8()?)?,
            ty: d.ty()?,
            dst: d.reg()?,
            lhs: d.reg()?,
            rhs: d.reg()?,
        },
        8 => Op::Cast {
            op: cast_from(d.u8()?)?,
            from: d.ty()?,
            to: d.ty()?,
            dst: d.reg()?,
            src: d.reg()?,
        },
        9 => Op::Select {
            dst: d.reg()?,
            cond: d.reg()?,
            t: d.reg()?,
            f: d.reg()?,
        },
        10 => Op::Call {
            target: d.u16()?,
            args_at: d.u32()?,
            nargs: d.u16()?,
            ret: d.ty()?,
            dst: d.opt_reg()?,
        },
        11 => Op::Jmp { target: d.u32()? },
        12 => Op::Br {
            cond: d.reg()?,
            then_t: d.u32()?,
            else_t: d.u32()?,
        },
        13 => Op::BinJmp {
            op: bin_from(d.u8()?)?,
            ty: d.ty()?,
            dst: d.reg()?,
            lhs: d.reg()?,
            rhs: d.reg()?,
            target: d.u32()?,
        },
        14 => Op::CmpBr {
            pred: pred_from(d.u8()?)?,
            ty: d.ty()?,
            lhs: d.reg()?,
            rhs: d.reg()?,
            then_t: d.u32()?,
            else_t: d.u32()?,
        },
        15 => Op::Ret { src: d.opt_reg()? },
        16 => Op::Unreachable,
        17 => Op::VMov {
            dst: d.reg()?,
            src: d.reg()?,
            w: d.u8()?,
        },
        18 => Op::VIota {
            dst: d.reg()?,
            base: d.reg()?,
            w: d.u8()?,
        },
        19 => Op::VBroadcast {
            dst: d.reg()?,
            src: d.reg()?,
            w: d.u8()?,
        },
        20 => Op::VExtract {
            dst: d.reg()?,
            src: d.reg()?,
            lane: d.u8()?,
        },
        21 => Op::VLoad {
            dst: d.reg()?,
            addr: d.reg()?,
            ty: d.ty()?,
            w: d.u8()?,
        },
        22 => Op::VStore {
            src: d.reg()?,
            addr: d.reg()?,
            ty: d.ty()?,
            w: d.u8()?,
        },
        23 => Op::VGather {
            dst: d.reg()?,
            base: d.reg()?,
            idx: d.reg()?,
            ty: d.ty()?,
            elem_size: d.u32()?,
            w: d.u8()?,
        },
        24 => Op::VScatter {
            src: d.reg()?,
            base: d.reg()?,
            idx: d.reg()?,
            ty: d.ty()?,
            elem_size: d.u32()?,
            w: d.u8()?,
        },
        25 => Op::VBin {
            op: bin_from(d.u8()?)?,
            ty: d.ty()?,
            dst: d.reg()?,
            lhs: d.reg()?,
            rhs: d.reg()?,
            w: d.u8()?,
        },
        26 => Op::VCast {
            op: cast_from(d.u8()?)?,
            from: d.ty()?,
            to: d.ty()?,
            dst: d.reg()?,
            src: d.reg()?,
            w: d.u8()?,
        },
        27 => Op::VReduce {
            op: bin_from(d.u8()?)?,
            ty: d.ty()?,
            dst: d.reg()?,
            src: d.reg()?,
            w: d.u8()?,
        },
        28 => Op::VEpi { src: d.reg()? },
        other => return err(format!("bad Op tag {other}")),
    })
}

fn decode_const(d: &mut Dec) -> Result<PoolConst, DecodeError> {
    Ok(match d.u8()? {
        0 => PoolConst::Val(RtVal::I(d.u64()? as i64)),
        1 => PoolConst::Val(RtVal::F(f64::from_bits(d.u64()?))),
        2 => PoolConst::Val(RtVal::P(d.u64()?)),
        3 => PoolConst::Global(SymbolId(d.u32()?)),
        4 => PoolConst::FnPtr(SymbolId(d.u32()?)),
        other => return err(format!("bad PoolConst tag {other}")),
    })
}

/// Reconstructs a module from a byte image produced by [`encode`].
///
/// The result is structurally valid but *semantically* untrusted — callers
/// that execute it should run it through `verify_module` once (the daemon
/// verifies at insert time instead, and trusts its own process memory).
pub fn decode(bytes: &[u8]) -> Result<VmModule, DecodeError> {
    let mut d = Dec { buf: bytes, at: 0 };
    if d.take(MAGIC.len())? != MAGIC {
        return err("bad magic or unsupported version");
    }
    let nfuncs = d.u32()?;
    let mut funcs = Vec::new();
    for _ in 0..nfuncs {
        let name = d.str()?;
        let ret = d.ty()?;
        let num_regs = d.u16()?;
        let nparams = d.len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(d.reg()?);
        }
        let nclasses = d.len()?;
        let mut reg_class = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            reg_class.push(class_from(d.u8()?)?);
        }
        let num_vregs = d.u16()?;
        let nvclasses = d.len()?;
        let mut vreg_class = Vec::with_capacity(nvclasses);
        for _ in 0..nvclasses {
            vreg_class.push(class_from(d.u8()?)?);
        }
        let nvwidths = d.len()?;
        let mut vreg_width = Vec::with_capacity(nvwidths);
        for _ in 0..nvwidths {
            vreg_width.push(d.u8()?);
        }
        let nconsts = d.len()?;
        let mut consts = Vec::with_capacity(nconsts);
        for _ in 0..nconsts {
            consts.push(decode_const(&mut d)?);
        }
        let nargs = d.len()?;
        let mut call_args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            call_args.push(d.reg()?);
        }
        let ntargets = d.len()?;
        let mut call_targets = Vec::with_capacity(ntargets);
        for _ in 0..ntargets {
            call_targets.push(match d.u8()? {
                0 => CallTarget::Bytecode(d.u32()?),
                1 => CallTarget::Runtime(SymbolId(d.u32()?)),
                other => return err(format!("bad CallTarget tag {other}")),
            });
        }
        let nblocks = d.len()?;
        let mut block_starts = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            block_starts.push(d.u32()?);
        }
        let nops = d.len()?;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(decode_op(&mut d)?);
        }
        funcs.push(VmFunction {
            name,
            params,
            num_regs,
            reg_class,
            num_vregs,
            vreg_class,
            vreg_width,
            ops,
            consts,
            call_args,
            call_targets,
            block_starts,
            ret,
        });
    }
    if d.at != bytes.len() {
        return err(format!(
            "{} trailing bytes after module",
            bytes.len() - d.at
        ));
    }
    Ok(VmModule { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VmModule {
        let f = VmFunction {
            name: "main".to_string(),
            params: vec![0, 1],
            num_regs: 6,
            reg_class: vec![
                RegClass::Int,
                RegClass::Int,
                RegClass::Float,
                RegClass::Ptr,
                RegClass::Int,
                RegClass::Int,
            ],
            ops: vec![
                Op::Const { dst: 0, idx: 0 },
                Op::Alloca { dst: 3, bytes: 16 },
                Op::Store {
                    src: 0,
                    addr: 3,
                    ty: IrType::I64,
                },
                Op::Load {
                    dst: 4,
                    addr: 3,
                    ty: IrType::I64,
                },
                Op::Bin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 4,
                    lhs: 4,
                    rhs: 0,
                },
                Op::Cast {
                    op: CastOp::SiToFp,
                    from: IrType::I64,
                    to: IrType::F64,
                    dst: 2,
                    src: 4,
                },
                Op::CmpBr {
                    pred: CmpPred::Slt,
                    ty: IrType::I64,
                    lhs: 4,
                    rhs: 0,
                    then_t: 1,
                    else_t: 7,
                },
                Op::Call {
                    target: 0,
                    args_at: 0,
                    nargs: 2,
                    ret: IrType::Void,
                    dst: None,
                },
                Op::VBroadcast {
                    dst: 0,
                    src: 0,
                    w: 4,
                },
                Op::VIota {
                    dst: 1,
                    base: 0,
                    w: 4,
                },
                Op::VLoad {
                    dst: 2,
                    addr: 3,
                    ty: IrType::I64,
                    w: 2,
                },
                Op::VBin {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 2,
                    lhs: 2,
                    rhs: 0,
                    w: 2,
                },
                Op::VGather {
                    dst: 2,
                    base: 3,
                    idx: 1,
                    ty: IrType::I64,
                    elem_size: 8,
                    w: 2,
                },
                Op::VScatter {
                    src: 2,
                    base: 3,
                    idx: 1,
                    ty: IrType::I64,
                    elem_size: 8,
                    w: 2,
                },
                Op::VStore {
                    src: 2,
                    addr: 3,
                    ty: IrType::I64,
                    w: 2,
                },
                Op::VCast {
                    op: CastOp::SiToFp,
                    from: IrType::I64,
                    to: IrType::F64,
                    dst: 3,
                    src: 2,
                    w: 2,
                },
                Op::VMov {
                    dst: 2,
                    src: 1,
                    w: 4,
                },
                Op::VReduce {
                    op: BinOpKind::Add,
                    ty: IrType::I64,
                    dst: 5,
                    src: 2,
                    w: 4,
                },
                Op::VExtract {
                    dst: 5,
                    src: 1,
                    lane: 3,
                },
                Op::VEpi { src: 5 },
                Op::Ret { src: Some(4) },
            ],
            consts: vec![
                PoolConst::Val(RtVal::I(-7)),
                PoolConst::Val(RtVal::F(1.5)),
                PoolConst::Global(SymbolId(3)),
                PoolConst::FnPtr(SymbolId(4)),
            ],
            call_args: vec![0, 1],
            call_targets: vec![CallTarget::Runtime(SymbolId(9)), CallTarget::Bytecode(0)],
            num_vregs: 4,
            vreg_class: vec![RegClass::Int, RegClass::Int, RegClass::Int, RegClass::Float],
            vreg_width: vec![4, 4, 2, 2],
            block_starts: vec![0, 1, 7],
            ret: IrType::I32,
        };
        VmModule { funcs: vec![f] }
    }

    #[test]
    fn roundtrips_structurally() {
        let m = sample();
        let bytes = encode(&m);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back.funcs.len(), 1);
        let (a, b) = (&m.funcs[0], &back.funcs[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.params, b.params);
        assert_eq!(a.num_regs, b.num_regs);
        assert_eq!(a.reg_class, b.reg_class);
        assert_eq!(a.num_vregs, b.num_vregs);
        assert_eq!(a.vreg_class, b.vreg_class);
        assert_eq!(a.vreg_width, b.vreg_width);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.consts, b.consts);
        assert_eq!(a.call_args, b.call_args);
        assert_eq!(a.call_targets, b.call_targets);
        assert_eq!(a.block_starts, b.block_starts);
        assert_eq!(a.ret, b.ret);
        // And the image itself is canonical: re-encoding reproduces it.
        assert_eq!(bytes, encode(&back));
    }

    #[test]
    fn rejects_corruption_without_panicking() {
        let bytes = encode(&sample());
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(decode(&bad).is_err());
        // Future format version.
        let mut vers = bytes.clone();
        vers[7] = 3;
        assert!(decode(&vers).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode(&long).is_err());
    }
}
