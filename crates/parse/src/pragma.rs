//! Parsing of `#pragma omp` directives, arriving between the
//! `PragmaOmpStart`/`PragmaOmpEnd` annotation tokens. Directive and clause
//! names are *contextual* keywords (plain identifiers — except `for`, which
//! is the base-language keyword).

use crate::parser::Parser;
use omplt_ast::{OMPClause, OMPClauseKind, OMPDirectiveKind, ReductionOp, ScheduleKind, Stmt, P};
use omplt_lex::{Keyword, Punct, TokenKind};

/// Parses one OpenMP directive (pragma line + associated statement).
pub fn parse_omp_directive(p: &mut Parser<'_, '_>) -> P<Stmt> {
    let loc = p.loc();
    p.next(); // PragmaOmpStart

    // ---- directive name ----
    let kind = match parse_directive_name(p) {
        Some(k) => k,
        None => {
            p.sema
                .diags
                .error(loc, "expected an OpenMP directive name after '#pragma omp'");
            skip_to_pragma_end(p);
            // Parse and return the following statement unmodified.
            return p.parse_stmt();
        }
    };

    // ---- clauses ----
    let mut clauses = Vec::new();
    while !matches!(p.peek().kind, TokenKind::PragmaOmpEnd | TokenKind::Eof) {
        // optional separating commas between clauses
        if p.eat_punct(Punct::Comma) {
            continue;
        }
        match parse_clause(p) {
            Some(c) => clauses.push(c),
            None => {
                skip_to_pragma_end(p);
                break;
            }
        }
    }
    if matches!(p.peek().kind, TokenKind::PragmaOmpEnd) {
        p.next();
    }

    // ---- associated statement ----
    let associated = p.parse_stmt();
    p.sema
        .act_on_omp_directive(kind, clauses, Some(associated), loc)
}

fn parse_directive_name(p: &mut Parser<'_, '_>) -> Option<OMPDirectiveKind> {
    // `parallel [for]`, `for`, `simd`, `taskloop`, `unroll`, `tile`,
    // `interchange`, `reverse`, `fuse`
    match &p.peek().kind {
        TokenKind::Kw(Keyword::For) => {
            p.next();
            if eat_simd(p) {
                Some(OMPDirectiveKind::ForSimd)
            } else {
                Some(OMPDirectiveKind::For)
            }
        }
        TokenKind::Ident(name) => match name.as_str() {
            "parallel" => {
                p.next();
                if p.peek().kind.is_kw(Keyword::For) {
                    p.next();
                    if eat_simd(p) {
                        Some(OMPDirectiveKind::ParallelForSimd)
                    } else {
                        Some(OMPDirectiveKind::ParallelFor)
                    }
                } else {
                    Some(OMPDirectiveKind::Parallel)
                }
            }
            "simd" => {
                p.next();
                Some(OMPDirectiveKind::Simd)
            }
            "taskloop" => {
                p.next();
                Some(OMPDirectiveKind::Taskloop)
            }
            "unroll" => {
                p.next();
                Some(OMPDirectiveKind::Unroll)
            }
            "tile" => {
                p.next();
                Some(OMPDirectiveKind::Tile)
            }
            "interchange" => {
                p.next();
                Some(OMPDirectiveKind::Interchange)
            }
            "reverse" => {
                p.next();
                Some(OMPDirectiveKind::Reverse)
            }
            "fuse" => {
                p.next();
                Some(OMPDirectiveKind::Fuse)
            }
            _ => None,
        },
        _ => None,
    }
}

/// Consumes a trailing `simd` composite-construct token if present.
fn eat_simd(p: &mut Parser<'_, '_>) -> bool {
    if matches!(&p.peek().kind, TokenKind::Ident(n) if n == "simd") {
        p.next();
        true
    } else {
        false
    }
}

fn parse_clause(p: &mut Parser<'_, '_>) -> Option<P<OMPClause>> {
    let loc = p.loc();
    let name = match &p.peek().kind {
        TokenKind::Ident(n) => n.clone(),
        other => {
            p.sema.diags.error(
                loc,
                format!("expected an OpenMP clause name, found {other:?}"),
            );
            return None;
        }
    };
    p.next();
    let kind = match name.as_str() {
        "full" => OMPClauseKind::Full,
        "nowait" => OMPClauseKind::Nowait,
        "partial" => {
            if p.at_punct(Punct::LParen) {
                p.next();
                let e = p.parse_assignment_expr();
                p.expect_punct(Punct::RParen);
                OMPClauseKind::Partial(Some(wrap_constant(p, e)))
            } else {
                OMPClauseKind::Partial(None)
            }
        }
        "sizes" => {
            p.expect_punct(Punct::LParen);
            let mut sizes = Vec::new();
            loop {
                let e = p.parse_assignment_expr();
                sizes.push(wrap_constant(p, e));
                if !p.eat_punct(Punct::Comma) {
                    break;
                }
            }
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Sizes(sizes)
        }
        "permutation" => {
            p.expect_punct(Punct::LParen);
            let mut perm = Vec::new();
            loop {
                let e = p.parse_assignment_expr();
                perm.push(wrap_constant(p, e));
                if !p.eat_punct(Punct::Comma) {
                    break;
                }
            }
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Permutation(perm)
        }
        "collapse" => {
            p.expect_punct(Punct::LParen);
            let e = p.parse_assignment_expr();
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Collapse(wrap_constant(p, e))
        }
        "safelen" => {
            p.expect_punct(Punct::LParen);
            let e = p.parse_assignment_expr();
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Safelen(wrap_constant(p, e))
        }
        "simdlen" => {
            p.expect_punct(Punct::LParen);
            let e = p.parse_assignment_expr();
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Simdlen(wrap_constant(p, e))
        }
        "num_threads" => {
            p.expect_punct(Punct::LParen);
            let e = p.parse_assignment_expr();
            p.expect_punct(Punct::RParen);
            OMPClauseKind::NumThreads(e)
        }
        "grainsize" => {
            p.expect_punct(Punct::LParen);
            let e = p.parse_assignment_expr();
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Grainsize(wrap_constant(p, e))
        }
        "schedule" => {
            p.expect_punct(Punct::LParen);
            let kloc = p.loc();
            let sk = match &p.next().kind {
                TokenKind::Ident(s) => match s.as_str() {
                    "static" => ScheduleKind::Static,
                    "dynamic" => ScheduleKind::Dynamic,
                    "guided" => ScheduleKind::Guided,
                    "auto" => ScheduleKind::Auto,
                    "runtime" => ScheduleKind::Runtime,
                    other => {
                        p.sema
                            .diags
                            .error(kloc, format!("unknown schedule kind '{other}'"));
                        ScheduleKind::Static
                    }
                },
                TokenKind::Kw(Keyword::Auto) => ScheduleKind::Auto,
                TokenKind::Kw(Keyword::Static) => ScheduleKind::Static,
                other => {
                    p.sema
                        .diags
                        .error(kloc, format!("expected schedule kind, found {other:?}"));
                    ScheduleKind::Static
                }
            };
            let chunk = if p.eat_punct(Punct::Comma) {
                Some(p.parse_assignment_expr())
            } else {
                None
            };
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Schedule { kind: sk, chunk }
        }
        "private" | "firstprivate" | "shared" => {
            p.expect_punct(Punct::LParen);
            let mut vars = Vec::new();
            loop {
                let vloc = p.loc();
                match &p.next().kind {
                    TokenKind::Ident(vn) => vars.push(p.sema.act_on_decl_ref(vn, vloc)),
                    other => {
                        p.sema
                            .diags
                            .error(vloc, format!("expected variable name, found {other:?}"));
                    }
                }
                if !p.eat_punct(Punct::Comma) {
                    break;
                }
            }
            p.expect_punct(Punct::RParen);
            match name.as_str() {
                "private" => OMPClauseKind::Private(vars),
                "firstprivate" => OMPClauseKind::FirstPrivate(vars),
                _ => OMPClauseKind::Shared(vars),
            }
        }
        "reduction" => {
            p.expect_punct(Punct::LParen);
            let oloc = p.loc();
            let op = match &p.next().kind {
                TokenKind::Punct(Punct::Plus) => ReductionOp::Add,
                TokenKind::Punct(Punct::Star) => ReductionOp::Mul,
                TokenKind::Ident(s) if s == "min" => ReductionOp::Min,
                TokenKind::Ident(s) if s == "max" => ReductionOp::Max,
                other => {
                    p.sema
                        .diags
                        .error(oloc, format!("unsupported reduction operator {other:?}"));
                    ReductionOp::Add
                }
            };
            p.expect_punct(Punct::Colon);
            let mut vars = Vec::new();
            loop {
                let vloc = p.loc();
                match &p.next().kind {
                    TokenKind::Ident(vn) => vars.push(p.sema.act_on_decl_ref(vn, vloc)),
                    other => {
                        p.sema
                            .diags
                            .error(vloc, format!("expected variable name, found {other:?}"));
                    }
                }
                if !p.eat_punct(Punct::Comma) {
                    break;
                }
            }
            p.expect_punct(Punct::RParen);
            OMPClauseKind::Reduction { op, vars }
        }
        other => {
            p.sema
                .diags
                .error(loc, format!("unknown OpenMP clause '{other}'"));
            // Skip a parenthesized argument if present.
            if p.eat_punct(Punct::LParen) {
                let mut depth = 1;
                while depth > 0
                    && !matches!(p.peek().kind, TokenKind::Eof | TokenKind::PragmaOmpEnd)
                {
                    match &p.next().kind {
                        TokenKind::Punct(Punct::LParen) => depth += 1,
                        TokenKind::Punct(Punct::RParen) => depth -= 1,
                        _ => {}
                    }
                }
            }
            return None;
        }
    };
    Some(OMPClause::new(kind, loc))
}

/// Wraps a clause argument in a Sema-evaluated `ConstantExpr` node (Clang
/// dumps these with a `value: Int n` child — paper Fig.
/// lst:astdump_shadowast).
fn wrap_constant(_p: &mut Parser<'_, '_>, e: P<omplt_ast::Expr>) -> P<omplt_ast::Expr> {
    match e.eval_const_int() {
        Some(v) => {
            let ty = P::clone(&e.ty);
            let loc = e.loc;
            P::new(omplt_ast::Expr {
                kind: omplt_ast::ExprKind::ConstantExpr { value: v, sub: e },
                ty,
                category: omplt_ast::ValueCategory::RValue,
                loc,
            })
        }
        None => e, // non-constant: Sema diagnoses at the use site
    }
}

fn skip_to_pragma_end(p: &mut Parser<'_, '_>) {
    while !matches!(p.peek().kind, TokenKind::PragmaOmpEnd | TokenKind::Eof) {
        p.next();
    }
    if matches!(p.peek().kind, TokenKind::PragmaOmpEnd) {
        p.next();
    }
}
