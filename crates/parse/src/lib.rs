//! # omplt-parse
//!
//! The recursive-descent parser (Parser layer of the paper's Fig. 1). As in
//! Clang, "general control flow is steered by the parser": it pulls
//! preprocessed tokens and pushes each recognized construct into
//! [`omplt_sema::Sema`] action methods, which build and type-check the AST.
//!
//! OpenMP directives arrive bracketed in `PragmaOmpStart`/`PragmaOmpEnd`
//! annotation tokens (see `omplt-lex`); [`pragma`] parses the directive name
//! and clauses, then hands the associated statement plus parsed clause list
//! to Sema.

pub mod parser;
pub mod pragma;

pub use parser::{parse_translation_unit, Parser};
