//! Recursive-descent parser for the C subset. Every recognized construct is
//! pushed into [`Sema`] action methods, mirroring Clang's control flow
//! (paper Fig. 1: "when the parser has decided what syntactic element it
//! is, it is pushed to Sema to create an AST node for it").

use crate::pragma::parse_omp_directive;
use omplt_ast::{
    BinOp, Decl, Expr, ExprKind, IntWidth, Stmt, StmtKind, TranslationUnit, Type, TypeKind, UnOp, P,
};
use omplt_lex::{Keyword, Punct, Token, TokenKind};
use omplt_sema::Sema;
use omplt_source::SourceLocation;

/// Parses a preprocessed token stream into a translation unit.
pub fn parse_translation_unit(tokens: Vec<Token>, sema: &mut Sema<'_>) -> TranslationUnit {
    let _span = omplt_trace::span("parse");
    omplt_fault::panic_if_armed("parse.panic");
    let mut p = Parser::new(tokens, sema);
    p.parse_tu()
}

/// The parser state.
pub struct Parser<'s, 'a> {
    toks: Vec<Token>,
    pos: usize,
    /// The semantic analyzer actions are pushed into.
    pub sema: &'s mut Sema<'a>,
}

impl<'s, 'a> Parser<'s, 'a> {
    /// Creates a parser over `toks` (which must end with `Eof`).
    pub fn new(toks: Vec<Token>, sema: &'s mut Sema<'a>) -> Self {
        Parser { toks, pos: 0, sema }
    }

    // ---------------- token plumbing ----------------

    pub(crate) fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    pub(crate) fn next(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn loc(&self) -> SourceLocation {
        self.peek().loc
    }

    pub(crate) fn at_punct(&self, p: Punct) -> bool {
        self.peek().kind.is_punct(p)
    }

    fn at_kw(&self, k: Keyword) -> bool {
        self.peek().kind.is_kw(k)
    }

    pub(crate) fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        if self.at_kw(k) {
            self.next();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_punct(&mut self, p: Punct) {
        if !self.eat_punct(p) {
            let d = self.peek().describe();
            self.sema.diags.error(
                self.loc(),
                format!("expected '{}', found {}", p.as_str(), d),
            );
        }
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        self.sema.diags.error(self.loc(), msg);
    }

    /// Skips to the next `;` or `}` for error recovery.
    fn recover(&mut self) {
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return,
                TokenKind::Punct(Punct::Semi) | TokenKind::Punct(Punct::RBrace) => {
                    self.next();
                    return;
                }
                _ => {
                    self.next();
                }
            }
        }
    }

    // ---------------- types ----------------

    /// Whether the current token can start a type.
    pub(crate) fn at_type_start(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Kw(
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Short
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
                    | Keyword::PtrdiffT
                    | Keyword::Const
                    | Keyword::Auto
            )
        )
    }

    /// Parses declaration specifiers + pointer declarators:
    /// `const unsigned long **`. Returns `None` for `auto` (range-for only).
    pub(crate) fn parse_type(&mut self) -> Option<P<Type>> {
        let mut signed: Option<bool> = None;
        let mut base: Option<P<Type>> = None;
        let mut longs = 0u8;
        let mut is_auto = false;
        let mut any = false;
        while let TokenKind::Kw(k) = self.peek().kind {
            match k {
                Keyword::Const => {
                    self.next();
                }
                Keyword::Auto => {
                    self.next();
                    is_auto = true;
                    any = true;
                }
                Keyword::Void => {
                    self.next();
                    base = Some(self.sema.ctx.void());
                    any = true;
                }
                Keyword::Bool => {
                    self.next();
                    base = Some(self.sema.ctx.bool_ty());
                    any = true;
                }
                Keyword::Char => {
                    self.next();
                    base = Some(self.sema.ctx.char_ty());
                    any = true;
                }
                Keyword::Short => {
                    self.next();
                    base = Some(self.sema.ctx.short_ty());
                    any = true;
                }
                Keyword::Int => {
                    self.next();
                    if base.is_none() {
                        base = Some(self.sema.ctx.int());
                    }
                    any = true;
                }
                Keyword::Long => {
                    self.next();
                    longs += 1;
                    any = true;
                }
                Keyword::Unsigned => {
                    self.next();
                    signed = Some(false);
                    any = true;
                }
                Keyword::Signed => {
                    self.next();
                    signed = Some(true);
                    any = true;
                }
                Keyword::Float => {
                    self.next();
                    base = Some(self.sema.ctx.float_ty());
                    any = true;
                }
                Keyword::Double => {
                    self.next();
                    base = Some(self.sema.ctx.double_ty());
                    any = true;
                }
                Keyword::SizeT => {
                    self.next();
                    base = Some(self.sema.ctx.size_t());
                    any = true;
                }
                Keyword::PtrdiffT => {
                    self.next();
                    base = Some(self.sema.ctx.ptrdiff_t());
                    any = true;
                }
                _ => break,
            }
        }
        if !any {
            return None;
        }
        if is_auto {
            // `auto` is only valid as a range-for element placeholder.
            return None;
        }
        let mut ty = if longs > 0 {
            self.sema.ctx.int_ty(IntWidth::W64, signed.unwrap_or(true))
        } else {
            match base {
                Some(b) => {
                    if let Some(s) = signed {
                        match b.kind {
                            TypeKind::Int { width, .. } => self.sema.ctx.int_ty(width, s),
                            _ => b,
                        }
                    } else {
                        b
                    }
                }
                None => self.sema.ctx.int_ty(IntWidth::W32, signed.unwrap_or(true)),
            }
        };
        while self.eat_punct(Punct::Star) {
            // allow `* const`
            while self.eat_kw(Keyword::Const) {}
            ty = self.sema.ctx.pointer_to(ty);
        }
        Some(ty)
    }

    // ---------------- translation unit ----------------

    fn parse_tu(&mut self) -> TranslationUnit {
        let mut tu = TranslationUnit::default();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            // Skip file-scope OpenMP pragmas (not supported) gracefully.
            if matches!(self.peek().kind, TokenKind::PragmaOmpStart) {
                self.error_here("OpenMP directives are only supported inside functions");
                while !matches!(self.peek().kind, TokenKind::PragmaOmpEnd | TokenKind::Eof) {
                    self.next();
                }
                self.next();
                continue;
            }
            // extern/static storage specifiers are accepted and ignored.
            while self.eat_kw(Keyword::Extern) || self.eat_kw(Keyword::Static) {}
            let Some(ty) = self.parse_type() else {
                self.error_here(format!(
                    "expected declaration, found {}",
                    self.peek().describe()
                ));
                self.recover();
                continue;
            };
            let name_loc = self.loc();
            let name = match &self.next().kind {
                TokenKind::Ident(n) => n.clone(),
                other => {
                    self.sema
                        .diags
                        .error(name_loc, format!("expected identifier, found {other:?}"));
                    self.recover();
                    continue;
                }
            };
            if self.at_punct(Punct::LParen) {
                if let Some(f) = self.parse_function_rest(name, ty, name_loc) {
                    tu.decls.push(Decl::Function(f));
                }
            } else {
                let ty = self.parse_array_suffix(ty);
                let init = if self.eat_punct(Punct::Assign) {
                    Some(self.parse_assignment_expr())
                } else {
                    None
                };
                self.expect_punct(Punct::Semi);
                let v = self.sema.act_on_var_decl(&name, ty, init, false, name_loc);
                tu.decls.push(Decl::Var(v));
            }
        }
        tu
    }

    fn parse_array_suffix(&mut self, mut ty: P<Type>) -> P<Type> {
        let mut dims = Vec::new();
        while self.eat_punct(Punct::LBracket) {
            let loc = self.loc();
            let e = self.parse_assignment_expr();
            let n = match e.eval_const_int() {
                Some(v) if v > 0 => v as u64,
                _ => {
                    self.sema
                        .diags
                        .error(loc, "array size must be a positive constant");
                    1
                }
            };
            dims.push(n);
            self.expect_punct(Punct::RBracket);
        }
        for &n in dims.iter().rev() {
            ty = Type::new(TypeKind::Array(ty, n));
        }
        ty
    }

    fn parse_function_rest(
        &mut self,
        name: String,
        ret: P<Type>,
        loc: SourceLocation,
    ) -> Option<P<omplt_ast::FunctionDecl>> {
        self.expect_punct(Punct::LParen);
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            // `(void)` means no parameters
            if self.at_kw(Keyword::Void) && self.peek2().kind.is_punct(Punct::RParen) {
                self.next();
            } else {
                loop {
                    let Some(pty) = self.parse_type() else {
                        self.error_here("expected parameter type");
                        break;
                    };
                    let ploc = self.loc();
                    let pname = match &self.peek().kind {
                        TokenKind::Ident(n) => {
                            let n = n.clone();
                            self.next();
                            n
                        }
                        _ => self.sema.ctx.fresh_name(".unnamed."),
                    };
                    // Array parameters decay to pointers.
                    let pty = self.parse_array_suffix(pty);
                    let pty = match &pty.kind {
                        TypeKind::Array(el, _) => self.sema.ctx.pointer_to(P::clone(el)),
                        _ => pty,
                    };
                    params.push((pname, pty, ploc));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect_punct(Punct::RParen);
        let func = self.sema.act_on_function_start(&name, ret, params, loc);
        if self.at_punct(Punct::LBrace) {
            let body = self.parse_compound_stmt();
            self.sema.act_on_function_end(&func, Some(body));
        } else {
            self.expect_punct(Punct::Semi);
            self.sema.act_on_function_end(&func, None);
        }
        Some(func)
    }

    // ---------------- statements ----------------

    /// Parses one statement.
    pub fn parse_stmt(&mut self) -> P<Stmt> {
        let loc = self.loc();
        match &self.peek().kind {
            TokenKind::PragmaOmpStart => parse_omp_directive(self),
            TokenKind::Punct(Punct::LBrace) => self.parse_compound_stmt(),
            TokenKind::Punct(Punct::Semi) => {
                self.next();
                Stmt::new(StmtKind::Null, loc)
            }
            TokenKind::Kw(Keyword::If) => {
                self.next();
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                let cond = self.sema.to_bool(cond);
                self.expect_punct(Punct::RParen);
                let then = self.parse_stmt();
                let els = if self.eat_kw(Keyword::Else) {
                    Some(self.parse_stmt())
                } else {
                    None
                };
                Stmt::new(StmtKind::If { cond, then, els }, loc)
            }
            TokenKind::Kw(Keyword::While) => {
                self.next();
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                let cond = self.sema.to_bool(cond);
                self.expect_punct(Punct::RParen);
                let body = self.parse_stmt();
                Stmt::new(StmtKind::While { cond, body }, loc)
            }
            TokenKind::Kw(Keyword::Do) => {
                self.next();
                let body = self.parse_stmt();
                if !self.eat_kw(Keyword::While) {
                    self.error_here("expected 'while' after do-body");
                }
                self.expect_punct(Punct::LParen);
                let cond = self.parse_expr();
                let cond = self.sema.to_bool(cond);
                self.expect_punct(Punct::RParen);
                self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::DoWhile { body, cond }, loc)
            }
            TokenKind::Kw(Keyword::For) => self.parse_for_stmt(),
            TokenKind::Kw(Keyword::Return) => {
                self.next();
                let e = if self.at_punct(Punct::Semi) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.expect_punct(Punct::Semi);
                self.sema.act_on_return(e, loc)
            }
            TokenKind::Kw(Keyword::Break) => {
                self.next();
                self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Break, loc)
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.next();
                self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Continue, loc)
            }
            _ if self.at_type_start() => self.parse_decl_stmt(),
            _ => {
                let e = self.parse_expr();
                self.expect_punct(Punct::Semi);
                Stmt::new(StmtKind::Expr(e), loc)
            }
        }
    }

    /// `{ stmt* }` with its own scope.
    pub fn parse_compound_stmt(&mut self) -> P<Stmt> {
        let loc = self.loc();
        self.expect_punct(Punct::LBrace);
        self.sema.scopes.push();
        let mut stmts = Vec::new();
        while !self.at_punct(Punct::RBrace) && !matches!(self.peek().kind, TokenKind::Eof) {
            stmts.push(self.parse_stmt());
        }
        self.expect_punct(Punct::RBrace);
        self.sema.scopes.pop();
        Stmt::new(StmtKind::Compound(stmts), loc)
    }

    fn parse_decl_stmt(&mut self) -> P<Stmt> {
        let loc = self.loc();
        let Some(base_ty) = self.parse_type() else {
            self.error_here("expected type");
            self.recover();
            return Stmt::new(StmtKind::Null, loc);
        };
        let mut decls = Vec::new();
        loop {
            let name_loc = self.loc();
            let name = match &self.peek().kind {
                TokenKind::Ident(n) => {
                    let n = n.clone();
                    self.next();
                    n
                }
                _ => {
                    self.error_here("expected identifier in declaration");
                    self.recover();
                    return Stmt::new(StmtKind::Null, loc);
                }
            };
            let ty = self.parse_array_suffix(P::clone(&base_ty));
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.parse_assignment_expr())
            } else {
                None
            };
            decls.push(Decl::Var(
                self.sema.act_on_var_decl(&name, ty, init, false, name_loc),
            ));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi);
        Stmt::new(StmtKind::Decl(decls), loc)
    }

    /// `for (...)`, including range-based `for (T [&]x : arr)`.
    fn parse_for_stmt(&mut self) -> P<Stmt> {
        let loc = self.loc();
        self.next(); // for
        self.expect_punct(Punct::LParen);

        // Range-for lookahead: type [&] ident ':'
        if self.at_type_start() {
            let save = self.pos;
            let elem_ty = self.parse_type(); // None for `auto`
            let by_ref = self.eat_punct(Punct::Amp);
            if let TokenKind::Ident(name) = self.peek().kind.clone() {
                if self.peek2().kind.is_punct(Punct::Colon) {
                    self.next(); // ident
                    self.next(); // :
                    let range = self.parse_expr();
                    self.expect_punct(Punct::RParen);
                    match self
                        .sema
                        .act_on_range_for_begin(&name, elem_ty, by_ref, range, loc)
                    {
                        Some(parts) => {
                            let body = self.parse_stmt();
                            return self.sema.act_on_range_for_end(parts, body);
                        }
                        None => {
                            let _ = self.parse_stmt();
                            return Stmt::new(StmtKind::Null, loc);
                        }
                    }
                }
            }
            self.pos = save;
        }

        self.sema.scopes.push(); // loop-init scope
        let init = if self.at_punct(Punct::Semi) {
            self.next();
            None
        } else if self.at_type_start() {
            Some(self.parse_decl_stmt())
        } else {
            let e = self.parse_expr();
            self.expect_punct(Punct::Semi);
            Some(Stmt::new(StmtKind::Expr(e), loc))
        };
        let cond = if self.at_punct(Punct::Semi) {
            None
        } else {
            Some(self.parse_expr())
        };
        self.expect_punct(Punct::Semi);
        let inc = if self.at_punct(Punct::RParen) {
            None
        } else {
            Some(self.parse_expr())
        };
        self.expect_punct(Punct::RParen);
        let body = self.parse_stmt();
        self.sema.scopes.pop();
        Stmt::new(
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            },
            loc,
        )
    }

    // ---------------- expressions ----------------

    /// Full expression (lowest precedence: comma).
    pub fn parse_expr(&mut self) -> P<Expr> {
        let mut e = self.parse_assignment_expr();
        while self.at_punct(Punct::Comma) {
            let loc = self.loc();
            self.next();
            let r = self.parse_assignment_expr();
            e = self.sema.act_on_binary(BinOp::Comma, e, r, loc);
        }
        e
    }

    /// Assignment expression (right-associative).
    pub fn parse_assignment_expr(&mut self) -> P<Expr> {
        let lhs = self.parse_conditional();
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::Assign) => BinOp::Assign,
            TokenKind::Punct(Punct::PlusAssign) => BinOp::AddAssign,
            TokenKind::Punct(Punct::MinusAssign) => BinOp::SubAssign,
            TokenKind::Punct(Punct::StarAssign) => BinOp::MulAssign,
            TokenKind::Punct(Punct::SlashAssign) => BinOp::DivAssign,
            TokenKind::Punct(Punct::PercentAssign) => BinOp::RemAssign,
            TokenKind::Punct(Punct::ShlAssign) => BinOp::ShlAssign,
            TokenKind::Punct(Punct::ShrAssign) => BinOp::ShrAssign,
            TokenKind::Punct(Punct::AmpAssign) => BinOp::AndAssign,
            TokenKind::Punct(Punct::PipeAssign) => BinOp::OrAssign,
            TokenKind::Punct(Punct::CaretAssign) => BinOp::XorAssign,
            _ => return lhs,
        };
        let loc = self.loc();
        self.next();
        let rhs = self.parse_assignment_expr();
        self.sema.act_on_binary(op, lhs, rhs, loc)
    }

    fn parse_conditional(&mut self) -> P<Expr> {
        let c = self.parse_binary(0);
        if self.at_punct(Punct::Question) {
            let loc = self.loc();
            self.next();
            let t = self.parse_expr();
            self.expect_punct(Punct::Colon);
            let f = self.parse_conditional();
            return self.sema.act_on_conditional(c, t, f, loc);
        }
        c
    }

    /// Precedence-climbing binary parser.
    fn parse_binary(&mut self, min_prec: u8) -> P<Expr> {
        let mut lhs = self.parse_unary();
        loop {
            let (op, prec) = match &self.peek().kind {
                TokenKind::Punct(Punct::PipePipe) => (BinOp::LOr, 1),
                TokenKind::Punct(Punct::AmpAmp) => (BinOp::LAnd, 2),
                TokenKind::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
                TokenKind::Punct(Punct::Caret) => (BinOp::BitXor, 4),
                TokenKind::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
                TokenKind::Punct(Punct::EqEq) => (BinOp::Eq, 6),
                TokenKind::Punct(Punct::NotEq) => (BinOp::Ne, 6),
                TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
                TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
                TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
                TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
                TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
                TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
                TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
                TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
                TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
                TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
                TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
                _ => return lhs,
            };
            if prec < min_prec {
                return lhs;
            }
            let loc = self.loc();
            self.next();
            let rhs = self.parse_binary(prec + 1);
            lhs = self.sema.act_on_binary(op, lhs, rhs, loc);
        }
    }

    fn parse_unary(&mut self) -> P<Expr> {
        let loc = self.loc();
        let op = match &self.peek().kind {
            TokenKind::Punct(Punct::PlusPlus) => Some(UnOp::PreInc),
            TokenKind::Punct(Punct::MinusMinus) => Some(UnOp::PreDec),
            TokenKind::Punct(Punct::Plus) => Some(UnOp::Plus),
            TokenKind::Punct(Punct::Minus) => Some(UnOp::Minus),
            TokenKind::Punct(Punct::Bang) => Some(UnOp::LNot),
            TokenKind::Punct(Punct::Tilde) => Some(UnOp::BitNot),
            TokenKind::Punct(Punct::Star) => Some(UnOp::Deref),
            TokenKind::Punct(Punct::Amp) => Some(UnOp::AddrOf),
            TokenKind::Kw(Keyword::Sizeof) => {
                self.next();
                self.expect_punct(Punct::LParen);
                let e = if self.at_type_start() {
                    let ty = self.parse_type().unwrap_or_else(|| self.sema.ctx.int());
                    Expr::rvalue(ExprKind::SizeOf(ty), self.sema.ctx.size_t(), loc)
                } else {
                    let inner = self.parse_expr();
                    let ty = P::clone(&inner.ty);
                    Expr::rvalue(ExprKind::SizeOf(ty), self.sema.ctx.size_t(), loc)
                };
                self.expect_punct(Punct::RParen);
                return e;
            }
            // C-style cast: '(' type ')' unary-expr
            TokenKind::Punct(Punct::LParen) => {
                if matches!(self.peek2().kind, TokenKind::Kw(k) if type_start_kw(k)) {
                    self.next(); // (
                    let ty = self.parse_type().unwrap_or_else(|| self.sema.ctx.int());
                    self.expect_punct(Punct::RParen);
                    let sub = self.parse_unary();
                    return self.sema.act_on_cast(ty, sub, loc);
                }
                None
            }
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let sub = self.parse_unary();
            return self.sema.act_on_unary(op, sub, loc);
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> P<Expr> {
        let mut e = self.parse_primary();
        loop {
            let loc = self.loc();
            match &self.peek().kind {
                TokenKind::Punct(Punct::LBracket) => {
                    self.next();
                    let idx = self.parse_expr();
                    self.expect_punct(Punct::RBracket);
                    e = self.sema.act_on_subscript(e, idx, loc);
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.next();
                    e = self.sema.act_on_unary(UnOp::PostInc, e, loc);
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.next();
                    e = self.sema.act_on_unary(UnOp::PostDec, e, loc);
                }
                _ => return e,
            }
        }
    }

    fn parse_primary(&mut self) -> P<Expr> {
        let loc = self.loc();
        match self.next().kind {
            TokenKind::IntLit { value, suffix } => {
                use omplt_lex::token::IntSuffix;
                let ctx = &self.sema.ctx;
                let ty = match suffix {
                    IntSuffix::None => {
                        if value <= i32::MAX as u128 {
                            ctx.int()
                        } else if value <= i64::MAX as u128 {
                            ctx.long_ty()
                        } else {
                            ctx.size_t()
                        }
                    }
                    IntSuffix::Unsigned => ctx.uint(),
                    IntSuffix::Long | IntSuffix::LongLong => ctx.long_ty(),
                    IntSuffix::UnsignedLong | IntSuffix::UnsignedLongLong => ctx.size_t(),
                };
                ctx.int_lit(value as i128, ty, loc)
            }
            TokenKind::FloatLit(v) => {
                Expr::rvalue(ExprKind::FloatingLiteral(v), self.sema.ctx.double_ty(), loc)
            }
            TokenKind::CharLit(c) => self
                .sema
                .ctx
                .int_lit(c as i128, self.sema.ctx.char_ty(), loc),
            TokenKind::StrLit(s) => Expr::rvalue(
                ExprKind::StringLiteral(s),
                self.sema.ctx.pointer_to(self.sema.ctx.char_ty()),
                loc,
            ),
            TokenKind::Kw(Keyword::True) => {
                Expr::rvalue(ExprKind::BoolLiteral(true), self.sema.ctx.bool_ty(), loc)
            }
            TokenKind::Kw(Keyword::False) => {
                Expr::rvalue(ExprKind::BoolLiteral(false), self.sema.ctx.bool_ty(), loc)
            }
            TokenKind::Ident(name) => {
                if self.at_punct(Punct::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_assignment_expr());
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_punct(Punct::RParen);
                    self.sema.act_on_call(&name, args, loc)
                } else {
                    self.sema.act_on_decl_ref(&name, loc)
                }
            }
            TokenKind::Punct(Punct::LParen) => {
                let e = self.parse_expr();
                self.expect_punct(Punct::RParen);
                let ty = P::clone(&e.ty);
                let cat = e.category;
                P::new(Expr {
                    kind: ExprKind::Paren(e),
                    ty,
                    category: cat,
                    loc,
                })
            }
            other => {
                self.sema
                    .diags
                    .error(loc, format!("expected expression, found {other:?}"));
                self.sema.error_expr(loc)
            }
        }
    }
}

fn type_start_kw(k: Keyword) -> bool {
    matches!(
        k,
        Keyword::Void
            | Keyword::Bool
            | Keyword::Char
            | Keyword::Short
            | Keyword::Int
            | Keyword::Long
            | Keyword::Unsigned
            | Keyword::Signed
            | Keyword::Float
            | Keyword::Double
            | Keyword::SizeT
            | Keyword::PtrdiffT
            | Keyword::Const
    )
}
