//! End-to-end front-end tests: source text → preprocessor → parser → Sema →
//! AST, checked via clang-style dumps. These regenerate the paper's
//! listings (see EXPERIMENTS.md index: L3, L4, L5, L7).

use omplt_ast::{dump_translation_unit, DumpOptions, StmtKind, TranslationUnit};
use omplt_lex::Preprocessor;
use omplt_parse::parse_translation_unit;
use omplt_sema::{OpenMpCodegenMode, Sema};
use omplt_source::{DiagnosticsEngine, FileManager, SourceManager};
use std::cell::RefCell;

fn parse_mode(src: &str, mode: OpenMpCodegenMode) -> (TranslationUnit, String, String) {
    let mut fm = FileManager::new();
    let main = fm.add_virtual_file("test.c", src);
    let sm = RefCell::new(SourceManager::new());
    let file_id = sm.borrow_mut().add_file(main).0;
    let diags = DiagnosticsEngine::new();
    let tokens = {
        let mut sm_ref = sm.borrow_mut();
        let mut pp = Preprocessor::new(&mut sm_ref, &mut fm, &diags, file_id);
        pp.tokenize_all()
    };
    let mut sema = Sema::new(&diags, &sm, mode, true);
    let tu = parse_translation_unit(tokens, &mut sema);
    let dump = dump_translation_unit(&tu, DumpOptions::default());
    let rendered = diags.render(&sm.borrow());
    (tu, dump, rendered)
}

fn parse(src: &str) -> (TranslationUnit, String, String) {
    parse_mode(src, OpenMpCodegenMode::Classic)
}

fn parse_ok(src: &str) -> (TranslationUnit, String) {
    let (tu, dump, errs) = parse(src);
    assert!(
        errs.is_empty(),
        "unexpected diagnostics:\n{errs}\ndump:\n{dump}"
    );
    (tu, dump)
}

#[test]
fn minimal_function() {
    let (tu, dump) = parse_ok("int add(int a, int b) { return a + b; }\n");
    assert!(tu.function("add").is_some());
    assert!(dump.contains("FunctionDecl add 'int (int, int)'"), "{dump}");
    assert!(dump.contains("ReturnStmt"), "{dump}");
    assert!(dump.contains("BinaryOperator 'int' '+'"), "{dump}");
}

#[test]
fn locals_arrays_and_subscripts() {
    let (_, dump) =
        parse_ok("void f(void) {\n  double a[10];\n  a[3] = 1.5;\n  double x = a[3] * 2.0;\n}\n");
    assert!(dump.contains("VarDecl used a 'double[10]'"), "{dump}");
    assert!(dump.contains("ArraySubscriptExpr 'double'"), "{dump}");
    assert!(
        dump.contains("ImplicitCastExpr 'double *' <ArrayToPointerDecay>"),
        "{dump}"
    );
}

#[test]
fn control_flow_statements() {
    let (_, dump) = parse_ok(
        "int f(int n) {\n  int s = 0;\n  if (n > 0) s = 1; else s = 2;\n  while (n > 0) n = n - 1;\n  do n = n + 1; while (n < 3);\n  return s;\n}\n",
    );
    for node in ["IfStmt", "WhileStmt", "DoStmt"] {
        assert!(dump.contains(node), "missing {node}:\n{dump}");
    }
}

#[test]
fn paper_listing_parallel_for_schedule_static() {
    // Paper Fig. lst:astdump (L3): the exact source from the paper.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp parallel for schedule(static)\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let (_, dump) = parse_ok(src);
    assert!(dump.contains("OMPParallelForDirective"), "{dump}");
    assert!(dump.contains("OMPScheduleClause static"), "{dump}");
    assert!(dump.contains("CapturedStmt"), "{dump}");
    assert!(dump.contains("CapturedDecl nothrow"), "{dump}");
    assert!(dump.contains("ForStmt"), "{dump}");
    assert!(dump.contains("VarDecl used i 'int' cinit"), "{dump}");
    assert!(dump.contains("IntegerLiteral 'int' 7"), "{dump}");
    assert!(
        dump.contains("ImplicitParamDecl implicit .global_tid."),
        "{dump}"
    );
    assert!(
        dump.contains("ImplicitParamDecl implicit .bound_tid."),
        "{dump}"
    );
    assert!(
        dump.contains("ImplicitParamDecl implicit __context"),
        "{dump}"
    );
    assert!(dump.contains("CallExpr 'void'"), "{dump}");
}

#[test]
fn paper_listing_composed_unroll() {
    // Paper Fig. lst:astdump_shadowast (L4): unroll full over unroll
    // partial(2).
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll full\n  #pragma omp unroll partial(2)\n  for (int i = 7; i < 17; i += 3)\n    body(i);\n}\n";
    let (tu, dump) = parse_ok(src);
    // Nested OMPUnrollDirective with OMPFullClause outer, OMPPartialClause
    // inner carrying ConstantExpr 'int' value: Int 2.
    let outer_pos = dump.find("OMPUnrollDirective").unwrap();
    let rest = &dump[outer_pos + 1..];
    assert!(
        rest.contains("OMPUnrollDirective"),
        "directives must nest:\n{dump}"
    );
    assert!(dump.contains("OMPFullClause"), "{dump}");
    assert!(dump.contains("OMPPartialClause"), "{dump}");
    assert!(dump.contains("ConstantExpr 'int'"), "{dump}");
    assert!(dump.contains("value: Int 2"), "{dump}");
    // The inner directive's loop is NOT captured (paper §2.1).
    assert!(
        !dump.contains("CapturedStmt"),
        "transformations must not capture:\n{dump}"
    );

    // The default dump hides the shadow AST...
    assert!(!dump.contains("TransformedStmt"), "{dump}");
    // ...which becomes visible with show_transformed.
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let full_dump = omplt_ast::dump_stmt(
        body.as_ref().unwrap(),
        DumpOptions {
            show_transformed: true,
        },
    );
    assert!(full_dump.contains("TransformedStmt"), "{full_dump}");
    assert!(full_dump.contains(".unrolled.iv.i"), "{full_dump}");
    assert!(
        full_dump.contains("LoopHintAttr Implicit loop UnrollCount Numeric"),
        "{full_dump}"
    );
}

#[test]
fn canonical_loop_dump_in_irbuilder_mode() {
    // Paper Fig. lst:ompcanonicalloop (L7).
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 42; i += 1)\n    body(i);\n}\n";
    let (_, dump, errs) = parse_mode(src, OpenMpCodegenMode::IrBuilder);
    assert!(errs.is_empty(), "{errs}");
    assert!(dump.contains("OMPUnrollDirective"), "{dump}");
    assert!(dump.contains("OMPCanonicalLoop"), "{dump}");
    // children: ForStmt + two CapturedStmt lambdas + DeclRefExpr
    assert!(
        dump.contains("DeclRefExpr 'int' lvalue Var 'i' 'int'"),
        "{dump}"
    );
    let cl_pos = dump.find("OMPCanonicalLoop").unwrap();
    let after = &dump[cl_pos..];
    assert!(after.matches("CapturedStmt").count() >= 2, "{dump}");
}

#[test]
fn tile_directive_with_sizes() {
    let src = "void use(int i, int j);\nvoid f(void) {\n  #pragma omp tile sizes(4, 4)\n  for (int i = 0; i < 32; i += 1)\n    for (int j = 0; j < 32; j += 1)\n      use(i, j);\n}\n";
    let (tu, dump) = parse_ok(src);
    assert!(dump.contains("OMPTileDirective"), "{dump}");
    assert!(dump.contains("OMPSizesClause"), "{dump}");
    // shadow AST holds 4 generated loops
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!()
    };
    let StmtKind::OMP(d) = &stmts[0].kind else {
        panic!("{dump}")
    };
    let t = d.get_transformed_stmt().expect("tile builds a shadow AST");
    assert_eq!(omplt_sema::count_generated_loops(t), 4);
}

#[test]
fn range_based_for_loop_desugars() {
    // Paper Fig. lst:rangeloop (L6).
    let src = "double sum;\nvoid f(void) {\n  double data[8];\n  for (double &v : data)\n    sum = sum + v;\n}\n";
    let (_, dump) = parse_ok(src);
    assert!(dump.contains("CXXForRangeStmt"), "{dump}");
    assert!(dump.contains("__range"), "{dump}");
    assert!(dump.contains("__begin"), "{dump}");
    assert!(dump.contains("__end"), "{dump}");
}

#[test]
fn preprocessor_macro_feeds_pragma() {
    let src = "#define FACTOR 4\nvoid body(int i);\nvoid f(void) {\n  #pragma omp unroll partial(FACTOR)\n  for (int i = 0; i < 16; i += 1)\n    body(i);\n}\n";
    let (tu, _) = parse_ok(src);
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!()
    };
    let StmtKind::OMP(d) = &stmts[0].kind else {
        panic!()
    };
    match d.partial_clause() {
        Some(Some(e)) => assert_eq!(e.eval_const_int(), Some(4)),
        other => panic!("expected partial(4), got {other:?}"),
    }
}

#[test]
fn non_canonical_loop_diagnosed_with_caret() {
    let src = "void f(int n) {\n  #pragma omp for\n  for (int i = 0; i != n; i *= 2)\n    ;\n}\n";
    let (_, _, errs) = parse(src);
    assert!(
        errs.contains("increment clause of OpenMP for loop is not in canonical form"),
        "{errs}"
    );
    assert!(
        errs.contains("test.c:3"),
        "diagnostic must point at the loop:\n{errs}"
    );
    assert!(errs.contains('^'), "caret rendering expected:\n{errs}");
}

#[test]
fn break_in_omp_loop_diagnosed() {
    let src = "void f(int n) {\n  #pragma omp for\n  for (int i = 0; i < n; i += 1) {\n    if (i > 3) break;\n  }\n}\n";
    let (_, _, errs) = parse(src);
    assert!(errs.contains("break statement cannot be used"), "{errs}");
}

#[test]
fn full_unroll_consumed_by_worksharing_is_error() {
    // C4: "fully unrolled, there is no generated loop that can be
    // associated with another directive".
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp parallel for\n  #pragma omp unroll full\n  for (int i = 0; i < 8; i += 1)\n    body(i);\n}\n";
    let (_, _, errs) = parse(src);
    assert!(errs.contains("does not generate a loop"), "{errs}");
}

#[test]
fn undeclared_variable_in_body() {
    let (_, _, errs) = parse("void f(void) { x = 3; }\n");
    assert!(errs.contains("use of undeclared identifier 'x'"), "{errs}");
}

#[test]
fn reduction_and_data_sharing_clauses_parse() {
    let src = "void f(double *a, int n) {\n  double s = 0.0;\n  int t = 0;\n  #pragma omp parallel for reduction(+: s) firstprivate(t) schedule(static, 8)\n  for (int i = 0; i < n; i += 1)\n    s = s + a[i];\n}\n";
    let (_, dump) = parse_ok(src);
    assert!(dump.contains("OMPReductionClause '+'"), "{dump}");
    assert!(dump.contains("OMPFirstprivateClause"), "{dump}");
    assert!(dump.contains("OMPScheduleClause static"), "{dump}");
}

#[test]
fn includes_and_prototypes() {
    // Via the virtual FS: include provides a prototype used by main file.
    let mut fm = FileManager::new();
    fm.add_virtual_file("lib.h", "void helper(int x);\n");
    let main = fm.add_virtual_file(
        "main.c",
        "#include \"lib.h\"\nvoid f(void) { helper(3); }\n",
    );
    let sm = RefCell::new(SourceManager::new());
    let file_id = sm.borrow_mut().add_file(main).0;
    let diags = DiagnosticsEngine::new();
    let tokens = {
        let mut sm_ref = sm.borrow_mut();
        let mut pp = Preprocessor::new(&mut sm_ref, &mut fm, &diags, file_id);
        pp.tokenize_all()
    };
    let mut sema = Sema::new(&diags, &sm, OpenMpCodegenMode::Classic, true);
    let tu = parse_translation_unit(tokens, &mut sema);
    assert!(!diags.has_errors(), "{}", diags.render(&sm.borrow()));
    assert!(tu.function("helper").is_some());
    assert!(tu.function("f").unwrap().is_definition());
}

#[test]
fn collapse_clause_collects_nest() {
    let src = "void use(int i, int j);\nvoid f(void) {\n  #pragma omp for collapse(2)\n  for (int i = 0; i < 4; i += 1)\n    for (int j = 0; j < 4; j += 1)\n      use(i, j);\n}\n";
    let (tu, _) = parse_ok(src);
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!()
    };
    let StmtKind::OMP(d) = &stmts[0].kind else {
        panic!()
    };
    let h = d.loop_helpers.as_ref().expect("classic helpers");
    assert_eq!(h.loops.len(), 2, "collapse(2) → per-loop helpers for both");
    assert_eq!(h.node_count(), 17 + 12);
}

#[test]
fn pragma_composition_order_is_reverse_source_order() {
    // tile over unroll: the tile consumes unroll's generated loop.
    let src = "void body(int i);\nvoid f(void) {\n  #pragma omp tile sizes(4)\n  #pragma omp unroll partial(2)\n  for (int i = 0; i < 64; i += 1)\n    body(i);\n}\n";
    let (tu, dump) = parse_ok(src);
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!("{dump}")
    };
    let StmtKind::OMP(tile) = &stmts[0].kind else {
        panic!("{dump}")
    };
    assert_eq!(tile.kind, omplt_ast::OMPDirectiveKind::Tile);
    // tile's transformed AST: 2 loops generated by the tile itself, plus the
    // strip-mined inner loop inherited from the consumed unroll's body.
    let t = tile.get_transformed_stmt().unwrap();
    assert_eq!(omplt_sema::count_generated_loops(t), 3);
    let t_dump = omplt_ast::dump_stmt(t, DumpOptions::default());
    assert!(t_dump.contains(".floor.iv"), "{t_dump}");
    assert!(t_dump.contains(".unroll_inner.iv"), "{t_dump}");
    // its associated statement is the unroll directive
    let StmtKind::OMP(unroll) = &tile.associated.as_ref().unwrap().kind else {
        panic!("{dump}")
    };
    assert_eq!(unroll.kind, omplt_ast::OMPDirectiveKind::Unroll);
}

#[test]
fn sizeof_and_casts() {
    let (_, dump) = parse_ok(
        "void f(void) {\n  size_t s = sizeof(double);\n  int x = (int)(3.7);\n  double d = (double)x;\n}\n",
    );
    assert!(dump.contains("UnaryExprOrTypeTraitExpr"), "{dump}");
    assert!(
        dump.contains("CStyleCastExpr 'int' <FloatingToIntegral>"),
        "{dump}"
    );
    assert!(
        dump.contains("CStyleCastExpr 'double' <IntegralToFloating>"),
        "{dump}"
    );
}

#[test]
fn global_variables() {
    let (tu, dump) = parse_ok("int counter;\ndouble table[16];\nvoid f(void) { counter = 1; }\n");
    assert_eq!(tu.decls.len(), 3);
    assert!(dump.contains("'double[16]'"), "{dump}");
}
