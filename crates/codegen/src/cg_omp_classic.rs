//! Classic OpenMP lowering (paper §2): front-end "early outlining" of
//! `parallel` regions, worksharing emitted from the `OMPLoopDirective`
//! shadow helper expressions ("a significant portion of the code generation
//! already takes place when creating the AST"), and transformation
//! directives that either emit their Sema-built transformed AST or defer to
//! the mid-end via loop metadata.

use crate::codegen::{ir_type, Binding, FnCodegen};
use omplt_ast::{
    DeclId, OMPClauseKind, OMPDirective, OMPDirectiveKind, ReductionOp, ScheduleKind, Stmt,
    StmtKind, P,
};
use omplt_ir::{Function, IrType, LoopMetadata, UnrollHint, Value};

/// What an outlined function's body contains.
enum OutlinedContent<'a> {
    /// Just the captured body (`parallel`).
    PlainBody,
    /// A workshared loop (`parallel for`).
    Workshare(&'a P<OMPDirective>),
}

impl FnCodegen<'_, '_> {
    /// Classic-mode directive dispatch.
    pub(crate) fn emit_omp_classic(&mut self, d: &P<OMPDirective>) {
        match d.kind {
            OMPDirectiveKind::Parallel
            | OMPDirectiveKind::ParallelFor
            | OMPDirectiveKind::ParallelForSimd => self.emit_omp_classic_parallel(d),
            OMPDirectiveKind::For | OMPDirectiveKind::ForSimd => {
                let saved = self.apply_data_sharing(d);
                self.emit_workshared_loop(d);
                self.restore_data_sharing(d, saved);
            }
            OMPDirectiveKind::Simd => self.emit_logical_loop(d, LoopFlavor::Simd),
            OMPDirectiveKind::Taskloop => self.emit_logical_loop(d, LoopFlavor::Taskloop),
            OMPDirectiveKind::Unroll => self.emit_unroll_classic(d),
            OMPDirectiveKind::Tile
            | OMPDirectiveKind::Interchange
            | OMPDirectiveKind::Reverse
            | OMPDirectiveKind::Fuse => {
                // "If encountering a non-associated tile construct, CodeGen
                // will simply emit the transformed AST in its place" (§2.2).
                // Interchange/reverse/fuse follow the same rule; an illegal
                // use is rejected by the dependence analysis, never lowered
                // differently here.
                match d.get_transformed_stmt() {
                    Some(t) => {
                        let t = P::clone(t);
                        self.emit_stmt(&t);
                    }
                    None => {
                        if let Some(a) = &d.associated {
                            let a = P::clone(a);
                            self.emit_stmt(&a);
                        }
                    }
                }
            }
        }
    }

    /// Top-level `unroll` (not consumed by another directive): "it is more
    /// efficient to defer unrolling to the LoopUnroll pass by attaching
    /// `llvm.loop.unroll.*` metadata to the loop without even tiling the
    /// loop beforehand" (§2.2).
    fn emit_unroll_classic(&mut self, d: &P<OMPDirective>) {
        let md = if d.has_full_clause() {
            LoopMetadata::unroll(UnrollHint::Full)
        } else if let Some(f) = d.partial_clause() {
            let factor = f
                .and_then(|e| e.eval_const_int())
                .map_or(2, |v| v.max(1) as u64);
            LoopMetadata::unroll(UnrollHint::Count(factor))
        } else {
            // Heuristic mode: the pass chooses.
            LoopMetadata::unroll(UnrollHint::Enable)
        };
        // Resolve the associated loop, looking through wrappers and inner
        // transformation directives.
        let Some(assoc) = d.associated.clone() else {
            return;
        };
        let (prologue, lp) = resolve_loop(&assoc);
        for p in &prologue {
            self.emit_stmt(p);
        }
        match &lp.kind {
            StmtKind::For { .. } => self.emit_for(&lp, Some(md)),
            _ => self.emit_stmt(&lp),
        }
    }

    /// Outlines the captured region and emits the `__kmpc_fork_call`.
    /// (`parallel` runs the body; `parallel for` workshares inside,
    /// dispatching by codegen mode.)
    pub(crate) fn emit_omp_classic_parallel(&mut self, d: &P<OMPDirective>) {
        let content = if d.kind.is_worksharing() {
            OutlinedContent::Workshare(d)
        } else {
            OutlinedContent::PlainBody
        };
        let Some(assoc) = &d.associated else { return };
        let StmtKind::Captured(cs) = &assoc.kind else {
            // Should not happen (Sema always captures); degrade gracefully.
            let a = P::clone(assoc);
            self.emit_stmt(&a);
            return;
        };
        let cs = P::clone(cs);

        // num_threads clause is evaluated in the caller, before the fork.
        let num_threads = d
            .find_clause(|k| matches!(k, OMPClauseKind::NumThreads(_)))
            .map(|c| match &c.kind {
                OMPClauseKind::NumThreads(e) => {
                    let e = P::clone(e);
                    self.emit_rvalue(&e)
                }
                _ => unreachable!(),
            });

        // Build the outlined function:
        // void name(i32 gtid, i32 btid, ptr cap0, …)
        let name = self.outlined_name();
        let mut params = vec![IrType::I32, IrType::I32];
        params.extend(std::iter::repeat_n(IrType::Ptr, cs.captures.len()));
        let sub_fn = Function::new(&name, params, IrType::Void);
        {
            let mut sub = FnCodegen::new(
                &mut *self.module,
                self.diags,
                self.opts,
                self.globals,
                sub_fn,
            );
            sub.outlined_counter = self.outlined_counter * 64 + 1;
            // Captured variables arrive by reference: the argument IS the
            // variable's address.
            for (i, cap) in cs.captures.iter().enumerate() {
                sub.bindings.insert(
                    cap.var.id,
                    Binding {
                        addr: Value::Arg(2 + i as u32),
                    },
                );
            }
            let saved = sub.apply_data_sharing(d);
            match content {
                OutlinedContent::PlainBody => {
                    sub.emit_stmt(&cs.decl.body);
                }
                OutlinedContent::Workshare(dir) => match sub.opts.mode {
                    omplt_sema::OpenMpCodegenMode::Classic => sub.emit_workshared_loop(dir),
                    omplt_sema::OpenMpCodegenMode::IrBuilder => {
                        sub.emit_workshare_irbuilder(dir, &cs.decl.body)
                    }
                },
            }
            sub.restore_data_sharing(d, saved);
            if sub.func.block(sub.cur).term.is_none() {
                sub.with_builder(|b| b.ret(None));
            }
            for bl in &mut sub.func.blocks {
                if bl.term.is_none() {
                    bl.term = Some(omplt_ir::Terminator::Unreachable);
                }
            }
            let finished =
                std::mem::replace(&mut sub.func, Function::new("<done>", vec![], IrType::Void));
            let nested = std::mem::take(&mut sub.pending_outlined);
            drop(sub);
            self.pending_outlined.push(finished);
            self.pending_outlined.extend(nested);
        }

        // Caller side: collect capture addresses and fork.
        let outlined_sym = self.sym(&name);
        let mut cap_ptrs = Vec::with_capacity(cs.captures.len());
        for cap in &cs.captures {
            let addr = match self.bindings.get(&cap.var.id) {
                Some(b) => b.addr,
                None => {
                    if let Some(&sym) = self.globals.get(&cap.var.id) {
                        Value::Global(sym)
                    } else {
                        let s = self.slot_for(&cap.var);
                        self.bindings.insert(cap.var.id, Binding { addr: s });
                        s
                    }
                }
            };
            cap_ptrs.push(addr);
        }
        let n = cap_ptrs.len();
        // Borrow func and module as separate fields so the OpenMPIRBuilder
        // helper can intern runtime symbols while building.
        let mut b = omplt_ir::IrBuilder::new(&mut self.func);
        b.set_insert_point(self.cur);
        omplt_ompirb::create_parallel(
            &mut b,
            self.module,
            omplt_ompirb::OutlinedFn {
                sym: outlined_sym,
                num_captures: n,
            },
            cap_ptrs,
            num_threads,
        );
        self.cur = b.insert_block();
    }

    /// Emits the workshared loop from the directive's shadow helper bundle
    /// (classic `EmitOMPWorksharingLoop`). Static schedules (chunked or
    /// not) go through `__kmpc_for_static_init` and the chunk loop built
    /// from `next_lower_bound`/`next_upper_bound`; dynamic, guided, and
    /// runtime schedules go through the `__kmpc_dispatch_*` protocol
    /// (init → while(next) → inner chunk loop → fini).
    pub(crate) fn emit_workshared_loop(&mut self, d: &P<OMPDirective>) {
        let Some(h) = d.loop_helpers.clone() else {
            // No helpers (e.g. malformed loop already diagnosed).
            return;
        };
        let Some((prologues, body)) = self.collect_nest_for_codegen(d) else {
            return;
        };
        let (sched, chunk) = schedule_of(d);
        // `auto` is implementation-defined; we pick static. Everything else
        // non-static is served by the dispatch runtime.
        let dispatch = matches!(
            sched,
            ScheduleKind::Dynamic | ScheduleKind::Guided | ScheduleKind::Runtime
        );

        // Prologues (inner transformed-AST capture declarations) first,
        // then the helper bundle's own capture declarations.
        for p in &prologues {
            self.emit_stmt(p);
        }
        for cd in &h.capture_decls {
            self.emit_var_decl(cd, &[]);
        }
        for v in [
            &h.iteration_variable,
            &h.lower_bound,
            &h.upper_bound,
            &h.stride,
            &h.is_last_iter_variable,
        ] {
            self.emit_var_decl(v, &[]);
        }
        for l in &h.loops {
            // The original counters become locals of the region.
            let slot = self.slot_for(&l.counter);
            self.bindings.insert(l.counter.id, Binding { addr: slot });
        }

        let n = self.emit_rvalue(&h.num_iterations);
        let last = self.emit_rvalue(&h.last_iteration);

        let gtid_fn = self
            .module
            .declare_extern("__kmpc_global_thread_num", vec![], IrType::I32);
        // gtid is computed before the precondition guard so the
        // end-of-construct barrier (in the merge block) can use it.
        let gtid = self.with_builder(|b| b.call(gtid_fn, vec![], IrType::I32));

        // Precondition guard: skip everything when there are no iterations.
        let pre = self.emit_rvalue(&h.precondition);
        let (work_bb, done_bb) = self.with_builder(|b| {
            let work = b.create_block("omp.precond.then");
            let done = b.create_block("omp.precond.end");
            b.cond_br(pre, work, done);
            (work, done)
        });
        self.cur = work_bb;

        // lb = 0; ub = last; stride = 1; is_last = 0
        self.store_var(&h.lower_bound, Value::i64(0));
        self.store_var(&h.upper_bound, last);
        self.store_var(&h.stride, Value::i64(1));
        self.store_var(&h.is_last_iter_variable, Value::i32(0));
        let _ = n;

        let plast = self.bindings[&h.is_last_iter_variable.id].addr;
        let plb = self.bindings[&h.lower_bound.id].addr;
        let pub_ = self.bindings[&h.upper_bound.id].addr;
        let pstride = self.bindings[&h.stride.id].addr;
        let chunk_v = match &chunk {
            Some(e) => {
                let e = P::clone(e);
                let v = self.emit_rvalue(&e);
                self.with_builder(|b| b.int_resize(v, IrType::I64, true))
            }
            // Dispatch defaults: chunk 1 for dynamic/guided; runtime gets
            // its chunk from OMP_SCHEDULE (argument is ignored).
            None if dispatch => Value::i64(if sched == ScheduleKind::Runtime { 0 } else { 1 }),
            None => Value::i64(0),
        };

        // Composite `for simd` / `parallel for simd`: mark the inner chunk
        // loop vectorizable — chunks distribute across the team, lanes run
        // within each thread's chunk.
        let simd_md = simd_metadata(d);
        if dispatch {
            self.emit_dispatch_workshare(
                &h, &body, gtid, last, chunk_v, sched, plast, plb, pub_, pstride, simd_md,
            );
        } else {
            self.emit_static_workshare(
                &h,
                &body,
                gtid,
                last,
                chunk_v,
                chunk.is_some(),
                plast,
                plb,
                pub_,
                pstride,
                simd_md,
            );
        }

        self.branch_if_open(done_bb);
        self.cur = done_bb;

        // Implicit end-of-construct barrier (outside the precondition guard
        // so every team member reaches it), elided by `nowait`.
        let nowait = d
            .find_clause(|k| matches!(k, OMPClauseKind::Nowait))
            .is_some();
        if !nowait {
            let barrier_fn =
                self.module
                    .declare_extern("__kmpc_barrier", vec![IrType::I32], IrType::Void);
            self.with_builder(|b| {
                b.call(barrier_fn, vec![gtid], IrType::Void);
            });
        }
    }

    /// Static-schedule body of [`FnCodegen::emit_workshared_loop`]:
    /// `__kmpc_for_static_init` + the chunk loop.
    #[allow(clippy::too_many_arguments)]
    fn emit_static_workshare(
        &mut self,
        h: &P<omplt_ast::LoopDirectiveHelpers>,
        body: &P<Stmt>,
        gtid: Value,
        last: Value,
        chunk_v: Value,
        chunked: bool,
        plast: Value,
        plb: Value,
        pub_: Value,
        pstride: Value,
        simd_md: Option<LoopMetadata>,
    ) {
        let init_fn = self.module.declare_extern(
            "__kmpc_for_static_init",
            vec![
                IrType::I32,
                IrType::I32,
                IrType::Ptr,
                IrType::Ptr,
                IrType::Ptr,
                IrType::Ptr,
                IrType::I64,
                IrType::I64,
            ],
            IrType::Void,
        );
        let fini_fn =
            self.module
                .declare_extern("__kmpc_for_static_fini", vec![IrType::I32], IrType::Void);

        let sched_const = Value::i32(if chunked { 33 } else { 34 });
        self.with_builder(|b| {
            b.call(
                init_fn,
                vec![
                    gtid,
                    sched_const,
                    plast,
                    plb,
                    pub_,
                    pstride,
                    Value::i64(1),
                    chunk_v,
                ],
                IrType::Void,
            );
        });

        // Chunk loop (executes once for unchunked: stride == trip count):
        //   while (lb <= last) { ub = min(ub, last);
        //     for (iv = lb; iv <= ub; ++iv) { counters; body }
        //     lb += stride; ub += stride; }
        let (chunk_cond, chunk_body, chunk_inc, chunk_end) = self.with_builder(|b| {
            (
                b.create_block("omp.dispatch.cond"),
                b.create_block("omp.dispatch.body"),
                b.create_block("omp.dispatch.inc"),
                b.create_block("omp.dispatch.end"),
            )
        });
        self.branch_if_open(chunk_cond);
        self.cur = chunk_cond;
        let lb_now = self.load_var(&h.lower_bound);
        let still = self.with_builder(|b| b.cmp(omplt_ir::CmpPred::Ule, lb_now, last));
        self.with_builder(|b| b.cond_br(still, chunk_body, chunk_end));

        self.cur = chunk_body;
        self.emit_rvalue(&h.ensure_upper_bound);
        // Inner worksharing loop from the helper expressions.
        self.emit_rvalue(&h.workshare_init);
        let (ws_cond, ws_body, ws_inc) = self.with_builder(|b| {
            (
                b.create_block("omp.inner.for.cond"),
                b.create_block("omp.inner.for.body"),
                b.create_block("omp.inner.for.inc"),
            )
        });
        self.branch_if_open(ws_cond);
        self.cur = ws_cond;
        let c = self.emit_rvalue(&h.workshare_cond);
        self.with_builder(|b| b.cond_br(c, ws_body, chunk_inc));
        self.cur = ws_body;
        // Recover the user counters from the logical IV, then run the body.
        for l in &h.loops {
            self.emit_rvalue(&l.update);
        }
        self.loop_stack.push((chunk_end, ws_inc));
        self.emit_stmt(body);
        self.loop_stack.pop();
        self.branch_if_open(ws_inc);
        self.cur = ws_inc;
        self.emit_rvalue(&h.inc);
        match &simd_md {
            Some(md) => {
                let md = *md;
                self.with_builder(|b| b.br_with_md(ws_cond, md));
            }
            None => self.with_builder(|b| b.br(ws_cond)),
        }

        self.cur = chunk_inc;
        self.emit_rvalue(&h.next_lower_bound);
        self.emit_rvalue(&h.next_upper_bound);
        self.with_builder(|b| b.br(chunk_cond));

        self.cur = chunk_end;
        self.with_builder(|b| {
            b.call(fini_fn, vec![gtid], IrType::Void);
        });
    }

    /// Dispatch-schedule body of [`FnCodegen::emit_workshared_loop`]:
    ///
    /// ```text
    ///   __kmpc_dispatch_init_8(gtid, sched, 0, last, 1, chunk)
    /// omp.dispatch.cond:
    ///   while (__kmpc_dispatch_next_8(gtid, &last?, &lb, &ub, &stride)) {
    /// omp.dispatch.body:
    ///     for (iv = lb; iv <= ub; ++iv) { counters; body }   // inner chunk
    ///   }
    /// omp.dispatch.end:
    ///   __kmpc_dispatch_fini_8(gtid)
    /// ```
    #[allow(clippy::too_many_arguments)]
    fn emit_dispatch_workshare(
        &mut self,
        h: &P<omplt_ast::LoopDirectiveHelpers>,
        body: &P<Stmt>,
        gtid: Value,
        last: Value,
        chunk_v: Value,
        sched: ScheduleKind,
        plast: Value,
        plb: Value,
        pub_: Value,
        pstride: Value,
        simd_md: Option<LoopMetadata>,
    ) {
        let init_fn = self.module.declare_extern(
            "__kmpc_dispatch_init_8",
            vec![
                IrType::I32,
                IrType::I32,
                IrType::I64,
                IrType::I64,
                IrType::I64,
                IrType::I64,
            ],
            IrType::Void,
        );
        let next_fn = self.module.declare_extern(
            "__kmpc_dispatch_next_8",
            vec![
                IrType::I32,
                IrType::Ptr,
                IrType::Ptr,
                IrType::Ptr,
                IrType::Ptr,
            ],
            IrType::I32,
        );
        let fini_fn =
            self.module
                .declare_extern("__kmpc_dispatch_fini_8", vec![IrType::I32], IrType::Void);

        let sched_const = Value::i32(match sched {
            ScheduleKind::Dynamic => 35,
            ScheduleKind::Guided => 36,
            _ => 37, // runtime
        });
        self.with_builder(|b| {
            b.call(
                init_fn,
                vec![
                    gtid,
                    sched_const,
                    Value::i64(0),
                    last,
                    Value::i64(1),
                    chunk_v,
                ],
                IrType::Void,
            );
        });

        let (disp_cond, disp_body, disp_end) = self.with_builder(|b| {
            (
                b.create_block("omp.dispatch.cond"),
                b.create_block("omp.dispatch.body"),
                b.create_block("omp.dispatch.end"),
            )
        });
        self.branch_if_open(disp_cond);
        self.cur = disp_cond;
        self.with_builder(|b| {
            let got = b.call(next_fn, vec![gtid, plast, plb, pub_, pstride], IrType::I32);
            let more = b.cmp(omplt_ir::CmpPred::Ne, got, Value::i32(0));
            b.cond_br(more, disp_body, disp_end);
        });

        self.cur = disp_body;
        // Inner chunk loop over the claimed [lb, ub] span.
        self.emit_rvalue(&h.workshare_init);
        let (ws_cond, ws_body, ws_inc) = self.with_builder(|b| {
            (
                b.create_block("omp.inner.for.cond"),
                b.create_block("omp.inner.for.body"),
                b.create_block("omp.inner.for.inc"),
            )
        });
        self.branch_if_open(ws_cond);
        self.cur = ws_cond;
        let c = self.emit_rvalue(&h.workshare_cond);
        self.with_builder(|b| b.cond_br(c, ws_body, disp_cond));
        self.cur = ws_body;
        for l in &h.loops {
            self.emit_rvalue(&l.update);
        }
        self.loop_stack.push((disp_end, ws_inc));
        self.emit_stmt(body);
        self.loop_stack.pop();
        self.branch_if_open(ws_inc);
        self.cur = ws_inc;
        self.emit_rvalue(&h.inc);
        match &simd_md {
            Some(md) => {
                let md = *md;
                self.with_builder(|b| b.br_with_md(ws_cond, md));
            }
            None => self.with_builder(|b| b.br(ws_cond)),
        }

        self.cur = disp_end;
        self.with_builder(|b| {
            b.call(fini_fn, vec![gtid], IrType::Void);
        });
    }

    /// Serial logical-IV loop used by `simd` (vectorize metadata) and
    /// `taskloop` (per-iteration task accounting).
    fn emit_logical_loop(&mut self, d: &P<OMPDirective>, flavor: LoopFlavor) {
        let Some(h) = d.loop_helpers.clone() else {
            return;
        };
        let Some((prologues, body)) = self.collect_nest_for_codegen(d) else {
            return;
        };
        let saved = self.apply_data_sharing(d);
        for p in &prologues {
            self.emit_stmt(p);
        }
        for cd in &h.capture_decls {
            self.emit_var_decl(cd, &[]);
        }
        self.emit_var_decl(&h.iteration_variable, &[]);
        for l in &h.loops {
            let slot = self.slot_for(&l.counter);
            self.bindings.insert(l.counter.id, Binding { addr: slot });
        }
        let task_fn = if flavor == LoopFlavor::Taskloop {
            Some(
                self.module
                    .declare_extern("__omplt_task_created", vec![], IrType::Void),
            )
        } else {
            None
        };

        self.emit_rvalue(&h.init); // iv = 0
        let (cond_bb, body_bb, inc_bb, end) = self.with_builder(|b| {
            (
                b.create_block("omp.simd.cond"),
                b.create_block("omp.simd.body"),
                b.create_block("omp.simd.inc"),
                b.create_block("omp.simd.end"),
            )
        });
        self.branch_if_open(cond_bb);
        self.cur = cond_bb;
        let c = self.emit_rvalue(&h.cond);
        self.with_builder(|b| b.cond_br(c, body_bb, end));
        self.cur = body_bb;
        if let Some(tf) = task_fn {
            self.with_builder(|b| {
                b.call(tf, vec![], IrType::Void);
            });
        }
        for l in &h.loops {
            self.emit_rvalue(&l.update);
        }
        self.loop_stack.push((end, inc_bb));
        self.emit_stmt(&body);
        self.loop_stack.pop();
        self.branch_if_open(inc_bb);
        self.cur = inc_bb;
        self.emit_rvalue(&h.inc);
        let md = if flavor == LoopFlavor::Simd {
            simd_metadata(d).unwrap_or_default()
        } else {
            LoopMetadata::default()
        };
        self.with_builder(|b| b.br_with_md(cond_bb, md));
        self.cur = end;
        self.restore_data_sharing(d, saved);
    }

    /// Re-resolves the associated loop nest for codegen: returns the
    /// prologue statements of consumed transformed ASTs plus the innermost
    /// body. The helper bundle's expressions refer to the same loops, so
    /// only structure is needed here, not re-analysis.
    pub(crate) fn collect_nest_for_codegen(
        &mut self,
        d: &P<OMPDirective>,
    ) -> Option<(Vec<P<Stmt>>, P<Stmt>)> {
        let assoc = d.associated.as_ref()?;
        let start = match &assoc.kind {
            StmtKind::Captured(cs) => P::clone(&cs.decl.body),
            _ => P::clone(assoc),
        };
        let depth = d.collapse_depth();
        let mut prologues = Vec::new();
        let mut cur = start;
        for _ in 0..depth {
            let (pro, lp) = resolve_loop(&cur);
            prologues.extend(pro);
            match &lp.kind {
                StmtKind::For { body, .. } => {
                    cur = P::clone(body);
                }
                StmtKind::CxxForRange(dd) => {
                    cur = P::clone(&dd.body);
                }
                _ => return Some((prologues, lp)),
            }
        }
        Some((prologues, cur))
    }

    // ---------------- data-sharing clauses ----------------

    /// Applies `private` / `firstprivate` / `reduction` rebinding. Returns
    /// the saved bindings for [`FnCodegen::restore_data_sharing`].
    pub(crate) fn apply_data_sharing(
        &mut self,
        d: &P<OMPDirective>,
    ) -> Vec<(DeclId, Option<Binding>, Option<Value>)> {
        let mut saved = Vec::new();
        let clauses = d.clauses.clone();
        for c in &clauses {
            match &c.kind {
                OMPClauseKind::Private(vars) | OMPClauseKind::FirstPrivate(vars) => {
                    let first = matches!(c.kind, OMPClauseKind::FirstPrivate(_));
                    for ve in vars {
                        let Some(v) = ve.as_decl_ref() else { continue };
                        let v = P::clone(v);
                        let old = self.bindings.get(&v.id).copied();
                        let old_addr = old
                            .map(|b| b.addr)
                            .or_else(|| self.globals.get(&v.id).map(|&s| Value::Global(s)));
                        let fresh = self.scratch(ir_type(&v.ty), &format!(".priv.{}", v.name));
                        if first {
                            if let Some(oa) = old_addr {
                                let ty = ir_type(&v.ty);
                                self.with_builder(|b| {
                                    let val = b.load(ty, oa);
                                    b.store(val, fresh);
                                });
                            }
                        }
                        self.bindings.insert(v.id, Binding { addr: fresh });
                        saved.push((v.id, old, None));
                    }
                }
                OMPClauseKind::Reduction { op, vars } => {
                    for ve in vars {
                        let Some(v) = ve.as_decl_ref() else { continue };
                        let v = P::clone(v);
                        let old = self.bindings.get(&v.id).copied();
                        let shared_addr = old
                            .map(|b| b.addr)
                            .or_else(|| self.globals.get(&v.id).map(|&s| Value::Global(s)));
                        let fresh = self.scratch(ir_type(&v.ty), &format!(".red.{}", v.name));
                        let ty = ir_type(&v.ty);
                        let identity = match op {
                            ReductionOp::Add => {
                                if ty.is_float() {
                                    Value::float(ty, 0.0)
                                } else {
                                    Value::int(ty, 0)
                                }
                            }
                            ReductionOp::Mul => {
                                if ty.is_float() {
                                    Value::float(ty, 1.0)
                                } else {
                                    Value::int(ty, 1)
                                }
                            }
                            _ => {
                                self.diags.warning(
                                    c.loc,
                                    format!("reduction '{}' is not supported; ignoring", op.name()),
                                );
                                continue;
                            }
                        };
                        self.with_builder(|b| b.store(identity, fresh));
                        self.bindings.insert(v.id, Binding { addr: fresh });
                        saved.push((v.id, old, shared_addr));
                    }
                }
                _ => {}
            }
        }
        saved
    }

    /// Restores bindings and combines reductions atomically.
    pub(crate) fn restore_data_sharing(
        &mut self,
        d: &P<OMPDirective>,
        saved: Vec<(DeclId, Option<Binding>, Option<Value>)>,
    ) {
        // Find the reduction ops again (for the combine).
        let mut red_op = std::collections::HashMap::new();
        for c in &d.clauses {
            if let OMPClauseKind::Reduction { op, vars } = &c.kind {
                for ve in vars {
                    if let Some(v) = ve.as_decl_ref() {
                        red_op.insert(v.id, (*op, P::clone(&v.ty)));
                    }
                }
            }
        }
        for (id, old, shared) in saved {
            if let (Some(shared_addr), Some((op, ty))) = (shared, red_op.get(&id)) {
                let ity = ir_type(ty);
                let local_addr = self.bindings[&id].addr;
                let fname = match (op, ity.is_float()) {
                    (ReductionOp::Add, false) => "__omplt_atomic_add_i64",
                    (ReductionOp::Add, true) => "__omplt_atomic_add_f64",
                    (ReductionOp::Mul, false) => "__omplt_atomic_mul_i64",
                    (ReductionOp::Mul, true) => "__omplt_atomic_mul_f64",
                    _ => "__omplt_atomic_add_i64",
                };
                let f = self.module.declare_extern(
                    fname,
                    vec![
                        IrType::Ptr,
                        if ity.is_float() {
                            IrType::F64
                        } else {
                            IrType::I64
                        },
                    ],
                    IrType::Void,
                );
                self.with_builder(|b| {
                    let v = b.load(ity, local_addr);
                    let v = if ity.is_float() {
                        if ity == IrType::F32 {
                            b.cast(omplt_ir::CastOp::FpExt, v, IrType::F64)
                        } else {
                            v
                        }
                    } else {
                        b.int_resize(v, IrType::I64, true)
                    };
                    b.call(f, vec![shared_addr, v], IrType::Void);
                });
            }
            match old {
                Some(b) => {
                    self.bindings.insert(id, b);
                }
                None => {
                    self.bindings.remove(&id);
                }
            }
        }
    }
}

#[derive(PartialEq, Clone, Copy)]
enum LoopFlavor {
    Simd,
    Taskloop,
}

/// Resolves wrappers down to the loop statement, collecting transformed-AST
/// prologues — the codegen-side mirror of Sema's `resolve_level`.
pub(crate) fn resolve_loop(stmt: &P<Stmt>) -> (Vec<P<Stmt>>, P<Stmt>) {
    let mut prologue = Vec::new();
    let mut cur = P::clone(stmt);
    loop {
        let next = match &cur.kind {
            StmtKind::OMP(d) if d.kind.is_loop_transformation() => match d.get_transformed_stmt() {
                Some(t) => P::clone(t),
                None => return (prologue, cur),
            },
            StmtKind::OMPCanonicalLoop(cl) => P::clone(&cl.loop_stmt),
            // Delegate to Sema's splitter so the two sides can never
            // disagree about which `{ decls…; loop }` shapes (including
            // nested blocks spliced from stacked transformations) count
            // as a prologue.
            StmtKind::Compound(_) => match omplt_sema::transform::split_prologue(&cur) {
                Some((pro, lp)) => {
                    prologue.extend(pro);
                    lp
                }
                None => return (prologue, cur),
            },
            _ => return (prologue, cur),
        };
        cur = next;
    }
}

/// The loop metadata a `simd`-bearing directive hangs on its (innermost)
/// latch: `vectorize.enable` plus the clause-supplied `safelen`/`simdlen`
/// caps the widening pass must honor. `None` for non-simd directives.
fn simd_metadata(d: &P<OMPDirective>) -> Option<LoopMetadata> {
    if !d.kind.has_simd() {
        return None;
    }
    let clamp = |v: u64| u8::try_from(v).unwrap_or(u8::MAX);
    Some(LoopMetadata {
        vectorize_enable: true,
        safelen: d.safelen_value().map_or(0, clamp),
        simdlen: d.simdlen_value().map_or(0, clamp),
        ..Default::default()
    })
}

/// Extracts the schedule clause (kind + chunk).
fn schedule_of(d: &P<OMPDirective>) -> (ScheduleKind, Option<P<omplt_ast::Expr>>) {
    for c in &d.clauses {
        if let OMPClauseKind::Schedule { kind, chunk } = &c.kind {
            return (*kind, chunk.clone());
        }
    }
    (ScheduleKind::Static, None)
}
