//! CodeGen driver: lowers a type-checked translation unit to `omplt-ir`.

use omplt_ast::{Decl, DeclId, FunctionDecl, TranslationUnit, Type, TypeKind, VarDecl, P};
use omplt_ir::{Function, IrType, Module, SymbolId, Value};
use omplt_sema::OpenMpCodegenMode;
use omplt_source::DiagnosticsEngine;
use std::collections::HashMap;

/// Codegen configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodegenOptions {
    /// Which OpenMP lowering path to use (paper §2 vs §3).
    pub mode: OpenMpCodegenMode,
    /// `--verify-each`: re-check the canonical-loop skeleton invariants
    /// after every OpenMPIRBuilder transformation, reporting violations as
    /// diagnostics instead of miscompiling silently.
    pub verify_each: bool,
}

/// The produced module (plus bookkeeping for tests).
pub struct CodegenResult {
    /// The generated IR module.
    pub module: Module,
}

/// Lowers `tu` into an IR module.
pub fn codegen_translation_unit(
    tu: &TranslationUnit,
    opts: CodegenOptions,
    diags: &DiagnosticsEngine,
) -> CodegenResult {
    let _span = omplt_trace::span_detail(
        "codegen",
        match opts.mode {
            OpenMpCodegenMode::Classic => "classic",
            OpenMpCodegenMode::IrBuilder => "irbuilder",
        },
    );
    omplt_fault::panic_if_armed("codegen.panic");
    let mut module = Module::new();
    let mut globals: HashMap<DeclId, SymbolId> = HashMap::new();
    // Globals first (zero-initialized; constant initializers applied).
    for d in &tu.decls {
        if let Decl::Var(v) = d {
            let sym = module.add_global(&v.name, ir_type(&v.ty), v.ty.size_of().max(1));
            if let Some(init) = &v.init {
                if let Some(c) = init.eval_const_int() {
                    if let Some(g) = module.globals.last_mut() {
                        g.init = vec![c as i64];
                    }
                }
            }
            globals.insert(v.id, sym);
        }
    }
    // Declare every function (so calls resolve in any order), then emit
    // definitions.
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            let params: Vec<IrType> = f.params.iter().map(|p| ir_type(&p.ty)).collect();
            module.declare_extern(&f.name, params, ir_type(&f.return_type()));
        }
    }
    for d in &tu.decls {
        if let Decl::Function(f) = d {
            if f.is_definition() {
                emit_function(&mut module, f, &globals, opts, diags);
            }
        }
    }
    CodegenResult { module }
}

/// Maps an AST type to its IR type.
pub fn ir_type(t: &Type) -> IrType {
    match &t.kind {
        TypeKind::Void => IrType::Void,
        TypeKind::Bool => IrType::I1,
        TypeKind::Int { width, .. } => IrType::int_with_bits(width.bits()),
        TypeKind::Float => IrType::F32,
        TypeKind::Double => IrType::F64,
        TypeKind::Pointer(_) | TypeKind::Array(..) | TypeKind::Function { .. } => IrType::Ptr,
    }
}

/// Where a variable lives during codegen.
#[derive(Clone, Copy)]
pub(crate) struct Binding {
    /// Address of the variable's storage (an alloca, argument pointer, or
    /// global).
    pub addr: Value,
}

/// Per-function code generator, shared by all OpenMP paths.
pub(crate) struct FnCodegen<'m, 'd> {
    pub module: &'m mut Module,
    pub diags: &'d DiagnosticsEngine,
    pub opts: CodegenOptions,
    pub globals: &'m HashMap<DeclId, SymbolId>,
    /// The function being built.
    pub func: Function,
    /// Current insertion block.
    pub cur: omplt_ir::BlockId,
    /// Variable bindings (flat: `DeclId`s are unique per compilation).
    pub bindings: HashMap<DeclId, Binding>,
    /// Cached allocas per variable, so re-executed declarations (loop
    /// bodies) reuse storage instead of growing the frame.
    pub var_slots: HashMap<DeclId, Value>,
    /// Stack of `(break_target, continue_target)` for loops.
    pub loop_stack: Vec<(omplt_ir::BlockId, omplt_ir::BlockId)>,
    /// Functions outlined while emitting this one (appended to the module
    /// afterwards).
    pub pending_outlined: Vec<Function>,
    /// Counter for outlined-function names.
    pub outlined_counter: usize,
}

impl<'m, 'd> FnCodegen<'m, 'd> {
    pub(crate) fn new(
        module: &'m mut Module,
        diags: &'d DiagnosticsEngine,
        opts: CodegenOptions,
        globals: &'m HashMap<DeclId, SymbolId>,
        func: Function,
    ) -> Self {
        let entry = func.entry();
        FnCodegen {
            module,
            diags,
            opts,
            globals,
            func,
            cur: entry,
            bindings: HashMap::new(),
            var_slots: HashMap::new(),
            loop_stack: Vec::new(),
            pending_outlined: Vec::new(),
            outlined_counter: 0,
        }
    }

    /// Runs `f` with a builder and keeps the insertion point in sync.
    pub(crate) fn with_builder<R>(
        &mut self,
        f: impl FnOnce(&mut omplt_ir::IrBuilder<'_>) -> R,
    ) -> R {
        let mut b = omplt_ir::IrBuilder::new(&mut self.func);
        b.set_insert_point(self.cur);
        let r = f(&mut b);
        self.cur = b.insert_block();
        r
    }

    /// Allocates (or reuses) the stack slot of a variable.
    pub(crate) fn slot_for(&mut self, v: &P<VarDecl>) -> Value {
        if let Some(&s) = self.var_slots.get(&v.id) {
            return s;
        }
        // Allocas live in the entry block so they execute once per call.
        let ty = ir_type(&v.ty);
        let (elem_ty, count) = match &v.ty.kind {
            TypeKind::Array(el, n) => (ir_type(el), *n),
            _ if v.by_ref => (IrType::Ptr, 1),
            _ => (ty, 1),
        };
        let entry = self.func.entry();
        let slot = self.func.push_inst(
            entry,
            omplt_ir::Inst::Alloca {
                ty: elem_ty,
                count,
                name: v.name.clone(),
            },
        );
        self.var_slots.insert(v.id, slot);
        slot
    }

    /// Interns a symbol in the module.
    pub(crate) fn sym(&mut self, name: &str) -> SymbolId {
        self.module.intern(name)
    }

    /// A fresh outlined-function name.
    pub(crate) fn outlined_name(&mut self) -> String {
        let n = self.outlined_counter;
        self.outlined_counter += 1;
        format!("{}.omp_outlined.{n}", self.func.name)
    }
}

fn emit_function(
    module: &mut Module,
    f: &P<FunctionDecl>,
    globals: &HashMap<DeclId, SymbolId>,
    opts: CodegenOptions,
    diags: &DiagnosticsEngine,
) {
    let params: Vec<IrType> = f.params.iter().map(|p| ir_type(&p.ty)).collect();
    let func = Function::new(&f.name, params, ir_type(&f.return_type()));
    let mut cg = FnCodegen::new(module, diags, opts, globals, func);

    // Spill arguments into allocas so parameters are addressable like
    // locals (clang -O0 style).
    for (i, p) in f.params.iter().enumerate() {
        let slot = cg.slot_for(p);
        cg.with_builder(|b| b.store(Value::Arg(i as u32), slot));
        cg.bindings.insert(p.id, Binding { addr: slot });
    }

    let body = f.body.borrow();
    cg.emit_stmt(body.as_ref().expect("emit_function on a definition"));

    // Implicit return.
    let ret_ty = ir_type(&f.return_type());
    if cg.func.block(cg.cur).term.is_none() {
        cg.with_builder(|b| {
            if ret_ty == IrType::Void {
                b.ret(None);
            } else {
                b.ret(Some(Value::int(ret_ty, 0)));
            }
        });
    }
    // Terminate any stray unterminated blocks (unreachable joins).
    for bl in &mut cg.func.blocks {
        if bl.term.is_none() {
            bl.term = Some(omplt_ir::Terminator::Unreachable);
        }
    }

    let outlined = std::mem::take(&mut cg.pending_outlined);
    let finished = std::mem::replace(&mut cg.func, Function::new("<done>", vec![], IrType::Void));
    drop(cg);
    module.add_function(finished);
    for of in outlined {
        module.add_function(of);
    }
}
