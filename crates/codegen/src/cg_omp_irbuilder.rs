//! The `OMPCanonicalLoop` / OpenMPIRBuilder lowering path (paper §3):
//! CodeGen evaluates the Sema-provided *distance function* to obtain the
//! trip count, calls `create_canonical_loop` for the skeleton, emits the
//! *loop user value function* plus the loop body inside it, and hands the
//! resulting `CanonicalLoopInfo` handles to the transformation methods.
//!
//! Implementation status intentionally mirrors the paper's report for the
//! then-current Clang ("missing implementations for … loop nests with more
//! than one loop"): multi-loop `tile`/`collapse` fall back to the classic
//! shadow-AST emission, which Sema still provides.

use crate::codegen::{ir_type, Binding, FnCodegen};
use omplt_ast::{
    CaptureKind, OMPCanonicalLoop, OMPClauseKind, OMPDirective, OMPDirectiveKind, ScheduleKind,
    Stmt, StmtKind, P,
};
use omplt_ir::{IrType, Value};
use omplt_ompirb::{
    create_canonical_loop_skeleton, create_dynamic_workshare_loop, create_static_workshare_loop,
    reverse_loop, tile_loops, unroll_loop_full, unroll_loop_heuristic, unroll_loop_partial,
    CanonicalLoopInfo, DispatchLoopInfo, WorksharingScheme,
};

impl FnCodegen<'_, '_> {
    /// `--verify-each`: re-checks the canonical-skeleton invariants of the
    /// handle(s) a transformation returned. A transformation that hands back
    /// a malformed `CanonicalLoopInfo` would otherwise miscompile silently
    /// when the next consumer trusts the handle.
    fn verify_transformed(
        &mut self,
        what: &str,
        loc: omplt_source::SourceLocation,
        clis: &[CanonicalLoopInfo],
    ) {
        if !self.opts.verify_each {
            return;
        }
        for cli in clis {
            for msg in cli.check(&self.func) {
                self.diags.error(
                    loc,
                    format!("loop produced by '{what}' violates the canonical skeleton: {msg}"),
                );
            }
        }
    }

    /// IrBuilder-mode directive dispatch.
    pub(crate) fn emit_omp_irbuilder(&mut self, d: &P<OMPDirective>) {
        match d.kind {
            // `parallel` outlining is shared with the classic path — the
            // paper notes IR-level outlining "may also become unnecessary
            // with further adaption of OpenMPIRBuilder"; like Clang today,
            // the front-end still outlines.
            OMPDirectiveKind::Parallel
            | OMPDirectiveKind::ParallelFor
            | OMPDirectiveKind::ParallelForSimd => self.emit_omp_classic_parallel_shim(d),
            OMPDirectiveKind::For | OMPDirectiveKind::ForSimd => {
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                let body = match &assoc.kind {
                    StmtKind::Captured(cs) => P::clone(&cs.decl.body),
                    _ => assoc,
                };
                self.emit_workshare_irbuilder(d, &body);
            }
            OMPDirectiveKind::Simd => {
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                let assoc = match &assoc.kind {
                    StmtKind::Captured(cs) => P::clone(&cs.decl.body),
                    _ => assoc,
                };
                if let Some(cli) = self.emit_loop_construct(&assoc) {
                    let mut md = cli.metadata(&self.func).unwrap_or_default();
                    md.vectorize_enable = true;
                    let clamp = |v: u64| u8::try_from(v).unwrap_or(u8::MAX);
                    md.safelen = d.safelen_value().map_or(0, clamp);
                    md.simdlen = d.simdlen_value().map_or(0, clamp);
                    cli.set_metadata(&mut self.func, md);
                    self.cur = cli.after;
                }
            }
            OMPDirectiveKind::Taskloop => {
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                let body = match &assoc.kind {
                    StmtKind::Captured(cs) => P::clone(&cs.decl.body),
                    _ => assoc,
                };
                let task_fn =
                    self.module
                        .declare_extern("__omplt_task_created", vec![], IrType::Void);
                if let Some(cli) = self.emit_loop_construct(&body) {
                    // Account one task per logical iteration: the unroll
                    // factor is observable through this count (paper §2.2).
                    self.func.prepend_inst(
                        cli.body,
                        omplt_ir::Inst::Call {
                            callee: omplt_ir::Callee(task_fn),
                            args: vec![],
                            ty: IrType::Void,
                        },
                    );
                    self.cur = cli.after;
                }
            }
            OMPDirectiveKind::Unroll => {
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                let Some(cli) = self.emit_loop_construct(&assoc) else {
                    return;
                };
                self.cur = cli.after;
                let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                b.set_insert_point(cli.after);
                if d.has_full_clause() {
                    unroll_loop_full(&mut b, &cli);
                } else if let Some(f) = d.partial_clause() {
                    let factor = f
                        .and_then(|e| e.eval_const_int())
                        .map_or(2, |v| v.max(1) as u64);
                    // Not consumed here → defer entirely to the mid-end.
                    unroll_loop_partial(&mut b, &cli, factor, false);
                } else {
                    unroll_loop_heuristic(&mut b, &cli);
                }
                self.verify_transformed("omp unroll", d.loc, &[cli]);
            }
            OMPDirectiveKind::Tile => {
                let sizes: Vec<u64> = d
                    .sizes_clause()
                    .map(|es| {
                        es.iter()
                            .filter_map(|e| e.eval_const_int())
                            .map(|v| v.max(1) as u64)
                            .collect()
                    })
                    .unwrap_or_default();
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                if sizes.len() == 1 {
                    if let Some(cli) = self.emit_loop_construct(&assoc) {
                        self.cur = cli.after;
                        let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                        b.set_insert_point(cli.after);
                        let tiled =
                            tile_loops(&mut b, &[cli], &[Value::int(cli.ty, sizes[0] as i64)]);
                        self.verify_transformed("omp tile", d.loc, &tiled);
                    }
                } else {
                    // Multi-loop nests: fall back to the shadow AST (the
                    // paper's reported status for the IrBuilder path).
                    match d.get_transformed_stmt() {
                        Some(t) => {
                            let t = P::clone(t);
                            self.emit_stmt(&t);
                        }
                        None => self.emit_stmt(&assoc),
                    }
                }
            }
            OMPDirectiveKind::Reverse => {
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                match self.emit_loop_construct(&assoc) {
                    Some(cli) => {
                        self.cur = cli.after;
                        let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                        b.set_insert_point(cli.after);
                        let rev = reverse_loop(&mut b, &cli);
                        self.verify_transformed("omp reverse", d.loc, &[rev]);
                    }
                    // The associated statement was not a wrapped literal
                    // loop (e.g. a nested transformation): emit the shadow
                    // AST, which Sema always builds for reverse.
                    None => match d.get_transformed_stmt() {
                        Some(t) => {
                            let t = P::clone(t);
                            self.emit_stmt(&t);
                        }
                        None => self.emit_stmt(&assoc),
                    },
                }
            }
            OMPDirectiveKind::Interchange | OMPDirectiveKind::Fuse => {
                // Multi-loop constructs: like multi-size tile, the directive
                // falls back to the shadow AST (the paper reports "missing
                // implementations for … loop nests with more than one loop"
                // on the IrBuilder path). The CanonicalLoopInfo operations
                // themselves live in omplt-ompirb for nests built directly.
                let Some(assoc) = d.associated.clone() else {
                    return;
                };
                match d.get_transformed_stmt() {
                    Some(t) => {
                        let t = P::clone(t);
                        self.emit_stmt(&t);
                    }
                    None => self.emit_stmt(&assoc),
                }
            }
        }
    }

    /// `parallel`/`parallel for` reuse the classic outlining machinery (the
    /// worksharing *content* inside still uses the IrBuilder path, selected
    /// by `opts.mode` inside `emit_parallel`).
    fn emit_omp_classic_parallel_shim(&mut self, d: &P<OMPDirective>) {
        self.emit_omp_classic_parallel(d);
    }

    /// `--verify-each` hook for dispatch worksharing loops, mirroring
    /// [`FnCodegen::verify_transformed`] for [`DispatchLoopInfo`].
    fn verify_dispatch(
        &mut self,
        what: &str,
        loc: omplt_source::SourceLocation,
        dli: &DispatchLoopInfo,
    ) {
        if !self.opts.verify_each {
            return;
        }
        for msg in dli.check(&self.func) {
            self.diags.error(
                loc,
                format!("dispatch loop produced by '{what}' violates the dispatch skeleton: {msg}"),
            );
        }
    }

    /// Emits a worksharing loop: static schedules via
    /// `create_static_workshare_loop`, dispatch schedules (dynamic, guided,
    /// runtime) via `create_dynamic_workshare_loop` — both applied to the
    /// `CanonicalLoopInfo`, composing after tile/unroll (paper §3.2).
    pub(crate) fn emit_workshare_irbuilder(&mut self, d: &P<OMPDirective>, body: &P<Stmt>) {
        let saved = self.apply_data_sharing(d);
        let (sched, chunk_expr) = d
            .clauses
            .iter()
            .find_map(|c| match &c.kind {
                OMPClauseKind::Schedule { kind, chunk } => Some((*kind, chunk.clone())),
                _ => None,
            })
            .unwrap_or((ScheduleKind::Static, None));
        // Chunk values must dominate the whole construct — including the
        // dispatch/chunked setup block, which takes over the loop's incoming
        // edges — so evaluate them before emitting the loop.
        let chunk_v = chunk_expr.map(|e| {
            let v = self.emit_rvalue(&e);
            self.with_builder(|b| b.int_resize(v, IrType::I64, true))
        });
        let Some(mut cli) = self.emit_loop_construct(body) else {
            self.restore_data_sharing(d, saved);
            return;
        };
        let dispatch = matches!(
            sched,
            ScheduleKind::Dynamic | ScheduleKind::Guided | ScheduleKind::Runtime
        );
        let dli = {
            let mut b = omplt_ir::IrBuilder::new(&mut self.func);
            b.set_insert_point(cli.after);
            if dispatch {
                let scheme = match sched {
                    ScheduleKind::Dynamic => {
                        WorksharingScheme::DynamicChunked(chunk_v.unwrap_or(Value::i64(1)))
                    }
                    ScheduleKind::Guided => {
                        WorksharingScheme::GuidedChunked(chunk_v.unwrap_or(Value::i64(1)))
                    }
                    _ => WorksharingScheme::Runtime,
                };
                let dli = create_dynamic_workshare_loop(&mut b, self.module, &mut cli, scheme);
                self.cur = dli.after;
                Some(dli)
            } else {
                let scheme = match chunk_v {
                    Some(v) => WorksharingScheme::StaticChunked(v),
                    None => WorksharingScheme::StaticUnchunked,
                };
                let cont = create_static_workshare_loop(&mut b, self.module, &mut cli, scheme);
                self.cur = cont;
                None
            }
        };
        // Composite `for simd` / `parallel for simd`: after the workshare
        // transform, `cli` is the per-thread chunk loop — lanes run within
        // each thread's chunk, so the vectorize hint lands there.
        if d.kind.has_simd() {
            let mut md = cli.metadata(&self.func).unwrap_or_default();
            md.vectorize_enable = true;
            let clamp = |v: u64| u8::try_from(v).unwrap_or(u8::MAX);
            md.safelen = d.safelen_value().map_or(0, clamp);
            md.simdlen = d.simdlen_value().map_or(0, clamp);
            cli.set_metadata(&mut self.func, md);
        }
        self.verify_transformed("omp for", d.loc, &[cli]);
        if let Some(dli) = &dli {
            self.verify_dispatch("omp for", d.loc, dli);
        }

        // Implicit end-of-construct barrier, elided by `nowait`.
        let nowait = d
            .find_clause(|k| matches!(k, OMPClauseKind::Nowait))
            .is_some();
        if !nowait {
            let gtid_fn =
                self.module
                    .declare_extern("__kmpc_global_thread_num", vec![], IrType::I32);
            let barrier_fn =
                self.module
                    .declare_extern("__kmpc_barrier", vec![IrType::I32], IrType::Void);
            self.with_builder(|b| {
                let gtid = b.call(gtid_fn, vec![], IrType::I32);
                b.call(barrier_fn, vec![gtid], IrType::Void);
            });
        }
        self.restore_data_sharing(d, saved);
    }

    /// Resolves a directive/loop stack bottom-up into a single
    /// [`CanonicalLoopInfo`]: `OMPCanonicalLoop` nodes emit skeletons;
    /// nested `unroll partial`/`tile` consume and return new handles —
    /// "in the case of loop transformations, the methods again return (one
    /// or more) CanonicalLoopInfos that can in turn again be used as
    /// handles" (paper §3.2).
    pub(crate) fn emit_loop_construct(&mut self, stmt: &P<Stmt>) -> Option<CanonicalLoopInfo> {
        match &stmt.kind {
            StmtKind::OMPCanonicalLoop(cl) => {
                let cl = P::clone(cl);
                Some(self.emit_canonical_loop(&cl))
            }
            StmtKind::Attributed { sub, .. } => {
                let sub = P::clone(sub);
                self.emit_loop_construct(&sub)
            }
            StmtKind::OMP(d) if d.kind == OMPDirectiveKind::Unroll => {
                let d = P::clone(d);
                let assoc = d.associated.clone()?;
                let inner = self.emit_loop_construct(&assoc)?;
                if d.has_full_clause() {
                    // Sema rejects consumption of full unrolls; degrade by
                    // returning the loop unrolled via metadata.
                    let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                    unroll_loop_full(&mut b, &inner);
                    self.verify_transformed("omp unroll full", d.loc, &[inner]);
                    return Some(inner);
                }
                let factor = d
                    .partial_clause()
                    .and_then(|f| f.and_then(|e| e.eval_const_int()))
                    .map_or(2, |v| v.max(1) as u64);
                let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                b.set_insert_point(inner.after);
                // Consumed: a generated loop is required (paper §2.2/§3.2).
                let out = unroll_loop_partial(&mut b, &inner, factor, true);
                if let Some(generated) = out {
                    self.verify_transformed("omp unroll partial", d.loc, &[generated]);
                }
                out
            }
            StmtKind::OMP(d) if d.kind == OMPDirectiveKind::Tile => {
                let d = P::clone(d);
                let assoc = d.associated.clone()?;
                let sizes: Vec<u64> = d
                    .sizes_clause()
                    .map(|es| {
                        es.iter()
                            .filter_map(|e| e.eval_const_int())
                            .map(|v| v.max(1) as u64)
                            .collect()
                    })
                    .unwrap_or_default();
                if sizes.len() != 1 {
                    self.diags.warning(
                        d.loc,
                        "consumed multi-loop tile is not supported by the IrBuilder path; using the outer floor loop of a 1-D tiling",
                    );
                }
                let inner = self.emit_loop_construct(&assoc)?;
                let size = *sizes.first().unwrap_or(&4);
                let mut b = omplt_ir::IrBuilder::new(&mut self.func);
                b.set_insert_point(inner.after);
                let tiled = tile_loops(&mut b, &[inner], &[Value::int(inner.ty, size as i64)]);
                self.verify_transformed("omp tile", d.loc, &tiled);
                tiled.first().copied()
            }
            StmtKind::OMP(d) if d.kind.is_loop_transformation() => {
                // Interchange / reverse / fuse consumed by an outer
                // directive: Sema wrapped the trailing loop of the shadow
                // AST in `OMPCanonicalLoop`, so the generated loop is
                // reached by emitting the compound's prologue and recursing
                // into its tail.
                let d = P::clone(d);
                match d.get_transformed_stmt() {
                    Some(t) => {
                        let t = P::clone(t);
                        self.emit_loop_construct(&t)
                    }
                    None => None,
                }
            }
            StmtKind::Compound(stmts) if !stmts.is_empty() => {
                // A transformed shadow compound (or a `{ decls…; loop }`
                // prologue): run the leading statements, the loop is last.
                let stmts = stmts.clone();
                let (last, lead) = stmts.split_last().unwrap();
                for s in lead {
                    self.emit_stmt(s);
                }
                let last = P::clone(last);
                self.emit_loop_construct(&last)
            }
            // A literal loop that Sema did not wrap (only possible when the
            // directive stack was malformed): nothing to hand back.
            _ => None,
        }
    }

    /// Emits one `OMPCanonicalLoop`: the paper's §3.2 CodeGen sequence.
    pub(crate) fn emit_canonical_loop(&mut self, cl: &P<OMPCanonicalLoop>) -> CanonicalLoopInfo {
        // 1. Run the loop's init statement(s) so the iteration variable
        //    holds its start value.
        match &cl.loop_stmt.kind {
            StmtKind::For { init, .. } => {
                if let Some(i) = init.clone() {
                    self.emit_stmt(&i);
                }
            }
            StmtKind::CxxForRange(d) => {
                let (r, b_, e) = (
                    P::clone(&d.range_stmt),
                    P::clone(&d.begin_stmt),
                    P::clone(&d.end_stmt),
                );
                self.emit_stmt(&r);
                self.emit_stmt(&b_);
                self.emit_stmt(&e);
            }
            _ => {}
        }

        // 2. "Captures take place before the loop itself": snapshot the
        //    by-value captures of the loop user value function (the start
        //    value of the iteration variable).
        let mut snapshots: Vec<(omplt_ast::DeclId, Value)> = Vec::new();
        for cap in &cl.loop_var_fn.captures {
            if cap.kind == CaptureKind::ByValue {
                let var = P::clone(&cap.var);
                let cur_val = self.load_var(&var);
                let snap = self.scratch(ir_type(&var.ty), &format!(".snap.{}", var.name));
                self.with_builder(|b| b.store(cur_val, snap));
                snapshots.push((var.id, snap));
            }
        }

        // 3. Call the distance function: bind its Result parameter to a
        //    scratch slot, emit the body, read the trip count.
        let dist_result = &cl.distance_fn.decl.params[0];
        let dist_slot = self.scratch(ir_type(&dist_result.ty), ".omp.distance");
        let saved_binding = self
            .bindings
            .insert(dist_result.id, Binding { addr: dist_slot });
        let dist_body = P::clone(&cl.distance_fn.decl.body);
        self.emit_stmt(&dist_body);
        match saved_binding {
            Some(b) => {
                self.bindings.insert(dist_result.id, b);
            }
            None => {
                self.bindings.remove(&dist_result.id);
            }
        }
        let tc_ty = ir_type(&dist_result.ty);
        let tc = self.with_builder(|b| b.load(tc_ty, dist_slot));

        // 4. The skeleton.
        let cli = {
            let mut b = omplt_ir::IrBuilder::new(&mut self.func);
            b.set_insert_point(self.cur);
            create_canonical_loop_skeleton(&mut b, tc, "omp_canonical", true)
        };

        // 5. Body: call the loop user value function with the logical IV,
        //    then the user body.
        self.cur = cli.body;
        // __i parameter: materialize the IV in a slot.
        let params = &cl.loop_var_fn.decl.params;
        let (result_param, i_param) = if params.len() == 2 {
            (Some(P::clone(&params[0])), P::clone(&params[1]))
        } else {
            (None, P::clone(&params[0]))
        };
        let i_slot = self.scratch(ir_type(&i_param.ty), ".omp.logical");
        self.with_builder(|b| b.store(cli.iv(), i_slot));
        let saved_i = self.bindings.insert(i_param.id, Binding { addr: i_slot });
        // Result parameter → the user variable's storage.
        let saved_result = result_param.as_ref().map(|rp| {
            let user_addr = self.emit_lvalue(&cl.loop_var_ref);
            (
                rp.id,
                self.bindings.insert(rp.id, Binding { addr: user_addr }),
            )
        });
        // By-value snapshots shadow the live variables inside the lambda.
        let saved_snaps: Vec<_> = snapshots
            .iter()
            .map(|(id, snap)| (*id, self.bindings.insert(*id, Binding { addr: *snap })))
            .collect();
        let lv_body = P::clone(&cl.loop_var_fn.decl.body);
        self.emit_stmt(&lv_body);
        // Restore shadowed bindings (the user body must see the real vars).
        for (id, old) in saved_snaps {
            match old {
                Some(b) => {
                    self.bindings.insert(id, b);
                }
                None => {
                    self.bindings.remove(&id);
                }
            }
        }
        if let Some((rid, old)) = saved_result {
            match old {
                Some(b) => {
                    self.bindings.insert(rid, b);
                }
                None => {
                    self.bindings.remove(&rid);
                }
            }
        }
        match saved_i {
            Some(b) => {
                self.bindings.insert(i_param.id, b);
            }
            None => {
                self.bindings.remove(&i_param.id);
            }
        }

        // User body; `continue` jumps to the latch (break is rejected by
        // Sema's canonical-form check).
        let user_body = match &cl.loop_stmt.kind {
            StmtKind::For { body, .. } => P::clone(body),
            StmtKind::CxxForRange(d) => P::clone(&d.body),
            _ => P::clone(&cl.loop_stmt),
        };
        self.loop_stack.push((cli.after, cli.latch));
        self.emit_stmt(&user_body);
        self.loop_stack.pop();
        self.branch_if_open(cli.latch);
        self.cur = cli.after;
        cli
    }
}
