//! Expression lowering.

use crate::codegen::{ir_type, Binding, FnCodegen};
use omplt_ast::{BinOp, CastKind, Expr, ExprKind, Type, TypeKind, UnOp, P};
use omplt_ir::{BinOpKind, CastOp, CmpPred, IrType, Value};

impl FnCodegen<'_, '_> {
    /// Emits `e` as an address.
    pub(crate) fn emit_lvalue(&mut self, e: &P<Expr>) -> Value {
        match &e.kind {
            ExprKind::DeclRef(v) => {
                let b = self.bindings.get(&v.id).copied().unwrap_or_else(|| {
                    // Unbound: a global, or a late-bound variable slot.
                    if let Some(&sym) = self.globals.get(&v.id) {
                        Binding {
                            addr: Value::Global(sym),
                        }
                    } else {
                        let addr = self.slot_for(v);
                        self.bindings.insert(v.id, Binding { addr });
                        Binding { addr }
                    }
                });
                if v.by_ref {
                    // Reference variables store the referent's address.
                    self.with_builder(|bl| bl.load(IrType::Ptr, b.addr))
                } else {
                    b.addr
                }
            }
            ExprKind::Unary(UnOp::Deref, sub) => self.emit_rvalue(sub),
            ExprKind::ArraySubscript(base, idx) => {
                let b = self.emit_rvalue(base);
                let i = self.emit_rvalue(idx);
                let elem = base.ty.pointee().map_or(1, |t| t.size_of()).max(1);
                self.with_builder(|bl| bl.gep(b, i, elem))
            }
            ExprKind::Paren(sub) | ExprKind::ImplicitCast(CastKind::NoOp, sub) => {
                self.emit_lvalue(sub)
            }
            other => {
                self.diags.error(
                    e.loc,
                    format!("expression is not an lvalue in codegen: {other:?}"),
                );
                Value::Undef(IrType::Ptr)
            }
        }
    }

    /// Emits `e` as a value.
    pub(crate) fn emit_rvalue(&mut self, e: &P<Expr>) -> Value {
        match &e.kind {
            ExprKind::IntegerLiteral(v) => Value::int(ir_type(&e.ty), *v as i64),
            ExprKind::BoolLiteral(b) => Value::bool(*b),
            ExprKind::FloatingLiteral(v) => Value::float(ir_type(&e.ty), *v),
            ExprKind::StringLiteral(_) => {
                self.diags.error(
                    e.loc,
                    "string literals are only supported as unused arguments",
                );
                Value::Undef(IrType::Ptr)
            }
            ExprKind::DeclRef(_) => {
                // Bare lvalue used as rvalue (no LValueToRValue wrapper —
                // happens in transformed ASTs): load.
                let addr = self.emit_lvalue(e);
                let ty = ir_type(&e.ty);
                self.with_builder(|b| b.load(ty, addr))
            }
            ExprKind::ImplicitCast(kind, sub) | ExprKind::ExplicitCast(kind, sub) => {
                self.emit_cast(*kind, sub, &e.ty)
            }
            ExprKind::Paren(sub) => self.emit_rvalue(sub),
            ExprKind::ConstantExpr { value, .. } => Value::int(ir_type(&e.ty), *value as i64),
            ExprKind::SizeOf(t) => Value::int(ir_type(&e.ty), t.size_of() as i64),
            ExprKind::Unary(op, sub) => self.emit_unary(*op, sub, &e.ty),
            ExprKind::Binary(op, l, r) => self.emit_binary(*op, l, r, &e.ty, e),
            ExprKind::ArraySubscript(..) => {
                let addr = self.emit_lvalue(e);
                let ty = ir_type(&e.ty);
                self.with_builder(|b| b.load(ty, addr))
            }
            ExprKind::Conditional(c, t, f) => {
                let cv = self.emit_rvalue(c);
                let ty = ir_type(&e.ty);
                let (then_bb, else_bb, join) = self.with_builder(|b| {
                    let then_bb = b.create_block("cond.true");
                    let else_bb = b.create_block("cond.false");
                    let join = b.create_block("cond.end");
                    b.cond_br(cv, then_bb, else_bb);
                    (then_bb, else_bb, join)
                });
                self.cur = then_bb;
                let tv = self.emit_rvalue(t);
                let t_end = self.cur;
                self.with_builder(|b| b.br(join));
                self.cur = else_bb;
                let fv = self.emit_rvalue(f);
                let f_end = self.cur;
                self.with_builder(|b| b.br(join));
                self.cur = join;
                self.with_builder(|b| {
                    let (v, phi) = b.phi(ty);
                    b.add_phi_incoming(phi, t_end, tv);
                    b.add_phi_incoming(phi, f_end, fv);
                    v
                })
            }
            ExprKind::Call { callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.emit_rvalue(a));
                }
                let sym = self.sym(&callee.name.clone());
                let ret = ir_type(&callee.return_type());
                self.with_builder(|b| b.call(sym, vals, ret))
            }
        }
    }

    fn emit_cast(&mut self, kind: CastKind, sub: &P<Expr>, to: &P<Type>) -> Value {
        match kind {
            CastKind::LValueToRValue => {
                let addr = self.emit_lvalue(sub);
                let ty = ir_type(&sub.ty);
                self.with_builder(|b| b.load(ty, addr))
            }
            CastKind::ArrayToPointerDecay => self.emit_lvalue(sub),
            CastKind::FunctionToPointerDecay | CastKind::NoOp => self.emit_rvalue(sub),
            CastKind::ToVoid => {
                self.emit_rvalue(sub);
                Value::Undef(IrType::I64)
            }
            CastKind::IntegralCast | CastKind::BooleanToIntegral => {
                let v = self.emit_rvalue(sub);
                let signed = sub.ty.is_signed_int() || *sub.ty == *Type::new(TypeKind::Bool);
                let to_ty = ir_type(to);
                self.with_builder(|b| b.int_resize(v, to_ty, signed))
            }
            CastKind::IntegralToBoolean => {
                let v = self.emit_rvalue(sub);
                let ty = ir_type(&sub.ty);
                self.with_builder(|b| {
                    if ty.is_float() {
                        b.cmp(CmpPred::FNe, v, Value::float(ty, 0.0))
                    } else {
                        b.cmp(CmpPred::Ne, v, Value::int(ty, 0))
                    }
                })
            }
            CastKind::IntegralToFloating => {
                let v = self.emit_rvalue(sub);
                let signed = sub.ty.is_signed_int();
                let to_ty = ir_type(to);
                self.with_builder(|b| {
                    b.cast(
                        if signed {
                            CastOp::SiToFp
                        } else {
                            CastOp::UiToFp
                        },
                        v,
                        to_ty,
                    )
                })
            }
            CastKind::FloatingToIntegral => {
                let v = self.emit_rvalue(sub);
                let signed = to.is_signed_int();
                let to_ty = ir_type(to);
                self.with_builder(|b| {
                    b.cast(
                        if signed {
                            CastOp::FpToSi
                        } else {
                            CastOp::FpToUi
                        },
                        v,
                        to_ty,
                    )
                })
            }
            CastKind::FloatingCast => {
                let v = self.emit_rvalue(sub);
                let to_ty = ir_type(to);
                let from = ir_type(&sub.ty);
                self.with_builder(|b| {
                    if to_ty.size() < from.size() {
                        b.cast(CastOp::FpTrunc, v, to_ty)
                    } else {
                        b.cast(CastOp::FpExt, v, to_ty)
                    }
                })
            }
            CastKind::PointerToIntegral => {
                let v = self.emit_rvalue(sub);
                let to_ty = ir_type(to);
                self.with_builder(|b| b.cast(CastOp::PtrToInt, v, to_ty))
            }
            CastKind::IntegralToPointer => {
                let v = self.emit_rvalue(sub);
                self.with_builder(|b| b.cast(CastOp::IntToPtr, v, IrType::Ptr))
            }
        }
    }

    fn emit_unary(&mut self, op: UnOp, sub: &P<Expr>, ty: &P<Type>) -> Value {
        match op {
            UnOp::Plus => self.emit_rvalue(sub),
            UnOp::Minus => {
                let v = self.emit_rvalue(sub);
                let t = ir_type(ty);
                self.with_builder(|b| {
                    if t.is_float() {
                        b.bin(BinOpKind::FSub, Value::float(t, 0.0), v)
                    } else {
                        b.sub(Value::int(t, 0), v)
                    }
                })
            }
            UnOp::BitNot => {
                let v = self.emit_rvalue(sub);
                let t = ir_type(ty);
                self.with_builder(|b| b.bin(BinOpKind::Xor, v, Value::int(t, -1)))
            }
            UnOp::LNot => {
                let v = self.emit_rvalue(sub);
                self.with_builder(|b| b.cmp(CmpPred::Eq, v, Value::bool(false)))
            }
            UnOp::Deref => {
                let addr = self.emit_rvalue(sub);
                let t = ir_type(ty);
                self.with_builder(|b| b.load(t, addr))
            }
            UnOp::AddrOf => self.emit_lvalue(sub),
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec => {
                let addr = self.emit_lvalue(sub);
                let t = ir_type(&sub.ty);
                let is_ptr = sub.ty.is_pointer();
                let elem = sub.ty.pointee().map_or(1, |p| p.size_of()).max(1);
                self.with_builder(|b| {
                    let old = b.load(t, addr);
                    let delta: i64 = if matches!(op, UnOp::PreInc | UnOp::PostInc) {
                        1
                    } else {
                        -1
                    };
                    let new = if is_ptr {
                        b.gep(old, Value::i64(delta), elem)
                    } else if t.is_float() {
                        b.bin(BinOpKind::FAdd, old, Value::float(t, delta as f64))
                    } else {
                        b.add(old, Value::int(t, delta))
                    };
                    b.store(new, addr);
                    if op.is_postfix() {
                        old
                    } else {
                        new
                    }
                })
            }
        }
    }

    fn emit_binary(
        &mut self,
        op: BinOp,
        l: &P<Expr>,
        r: &P<Expr>,
        ty: &P<Type>,
        whole: &P<Expr>,
    ) -> Value {
        // Assignments.
        if op == BinOp::Assign {
            let addr = self.emit_lvalue(l);
            let v = self.emit_rvalue(r);
            self.with_builder(|b| b.store(v, addr));
            return v;
        }
        if let Some(base) = op.compound_base() {
            let addr = self.emit_lvalue(l);
            let lty = ir_type(&l.ty);
            let old = self.with_builder(|b| b.load(lty, addr));
            let rv = self.emit_rvalue(r);
            let new = self.emit_arith(base, old, rv, &l.ty, &r.ty, whole);
            self.with_builder(|b| b.store(new, addr));
            return new;
        }
        match op {
            BinOp::Comma => {
                self.emit_rvalue(l);
                self.emit_rvalue(r)
            }
            BinOp::LAnd | BinOp::LOr => {
                // Short-circuit evaluation.
                let lv = self.emit_rvalue(l);
                let l_end = self.cur;
                let (rhs_bb, join) = self.with_builder(|b| {
                    let rhs_bb = b.create_block("sc.rhs");
                    let join = b.create_block("sc.end");
                    if op == BinOp::LAnd {
                        b.cond_br(lv, rhs_bb, join);
                    } else {
                        b.cond_br(lv, join, rhs_bb);
                    }
                    (rhs_bb, join)
                });
                self.cur = rhs_bb;
                let rv = self.emit_rvalue(r);
                let r_end = self.cur;
                self.with_builder(|b| b.br(join));
                self.cur = join;
                let short_val = Value::bool(op == BinOp::LOr);
                self.with_builder(|b| {
                    let (v, phi) = b.phi(IrType::I1);
                    b.add_phi_incoming(phi, l_end, short_val);
                    b.add_phi_incoming(phi, r_end, rv);
                    v
                })
            }
            _ => {
                let lv = self.emit_rvalue(l);
                let rv = self.emit_rvalue(r);
                if op.is_comparison() {
                    return self.emit_compare(op, lv, rv, &l.ty);
                }
                let _ = ty;
                self.emit_arith(op, lv, rv, &l.ty, &r.ty, whole)
            }
        }
    }

    fn emit_compare(&mut self, op: BinOp, lv: Value, rv: Value, operand_ty: &P<Type>) -> Value {
        let signed = operand_ty.is_signed_int();
        let float = operand_ty.is_floating();
        let pred = match (op, float, signed) {
            (BinOp::Eq, true, _) => CmpPred::FEq,
            (BinOp::Ne, true, _) => CmpPred::FNe,
            (BinOp::Lt, true, _) => CmpPred::FLt,
            (BinOp::Le, true, _) => CmpPred::FLe,
            (BinOp::Gt, true, _) => CmpPred::FGt,
            (BinOp::Ge, true, _) => CmpPred::FGe,
            (BinOp::Eq, _, _) => CmpPred::Eq,
            (BinOp::Ne, _, _) => CmpPred::Ne,
            (BinOp::Lt, _, true) => CmpPred::Slt,
            (BinOp::Le, _, true) => CmpPred::Sle,
            (BinOp::Gt, _, true) => CmpPred::Sgt,
            (BinOp::Ge, _, true) => CmpPred::Sge,
            (BinOp::Lt, _, false) => CmpPred::Ult,
            (BinOp::Le, _, false) => CmpPred::Ule,
            (BinOp::Gt, _, false) => CmpPred::Ugt,
            (BinOp::Ge, _, false) => CmpPred::Uge,
            _ => unreachable!("non-comparison op"),
        };
        self.with_builder(|b| b.cmp(pred, lv, rv))
    }

    fn emit_arith(
        &mut self,
        op: BinOp,
        lv: Value,
        rv: Value,
        lty: &P<Type>,
        rty: &P<Type>,
        whole: &P<Expr>,
    ) -> Value {
        // Pointer arithmetic (C semantics: element-scaled).
        if lty.is_pointer() {
            let elem = lty.pointee().map_or(1, |t| t.size_of()).max(1);
            match op {
                BinOp::Add => return self.with_builder(|b| b.gep(lv, rv, elem)),
                BinOp::Sub if rty.is_pointer() => {
                    // (p - q) / elem_size → element count
                    return self.with_builder(|b| {
                        let pi = b.cast(CastOp::PtrToInt, lv, IrType::I64);
                        let qi = b.cast(CastOp::PtrToInt, rv, IrType::I64);
                        let diff = b.sub(pi, qi);
                        b.sdiv(diff, Value::i64(elem as i64))
                    });
                }
                BinOp::Sub => {
                    return self.with_builder(|b| {
                        let neg = b.sub(Value::i64(0), rv);
                        b.gep(lv, neg, elem)
                    });
                }
                _ => {
                    self.diags
                        .error(whole.loc, "unsupported pointer arithmetic");
                    return Value::Undef(IrType::Ptr);
                }
            }
        }
        let float = lty.is_floating();
        let signed = lty.is_signed_int();
        let kind = match (op, float, signed) {
            (BinOp::Add, true, _) => BinOpKind::FAdd,
            (BinOp::Sub, true, _) => BinOpKind::FSub,
            (BinOp::Mul, true, _) => BinOpKind::FMul,
            (BinOp::Div, true, _) => BinOpKind::FDiv,
            (BinOp::Rem, true, _) => BinOpKind::FRem,
            (BinOp::Add, _, _) => BinOpKind::Add,
            (BinOp::Sub, _, _) => BinOpKind::Sub,
            (BinOp::Mul, _, _) => BinOpKind::Mul,
            (BinOp::Div, _, true) => BinOpKind::SDiv,
            (BinOp::Div, _, false) => BinOpKind::UDiv,
            (BinOp::Rem, _, true) => BinOpKind::SRem,
            (BinOp::Rem, _, false) => BinOpKind::URem,
            (BinOp::Shl, _, _) => BinOpKind::Shl,
            (BinOp::Shr, _, true) => BinOpKind::AShr,
            (BinOp::Shr, _, false) => BinOpKind::LShr,
            (BinOp::BitAnd, _, _) => BinOpKind::And,
            (BinOp::BitOr, _, _) => BinOpKind::Or,
            (BinOp::BitXor, _, _) => BinOpKind::Xor,
            _ => {
                self.diags
                    .error(whole.loc, format!("unsupported operator {op:?} in codegen"));
                return Value::Undef(IrType::I64);
            }
        };
        self.with_builder(|b| b.bin(kind, lv, rv))
    }
}
