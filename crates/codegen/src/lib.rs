//! # omplt-codegen
//!
//! The CodeGen layer (paper Fig. 1): lowers the type-checked AST to
//! `omplt-ir`. Two OpenMP lowering paths co-exist, selected by
//! [`omplt_sema::OpenMpCodegenMode`], mirroring Clang's
//! `-fopenmp-enable-irbuilder` flag:
//!
//! * **Classic** — early outlining done by the front-end: `parallel` regions
//!   are emitted as separate outlined functions invoked through
//!   `__kmpc_fork_call`; worksharing loops are emitted from the directive's
//!   shadow helper expressions; `tile`/`unroll` directives emit their
//!   Sema-built transformed AST (or just attach unroll metadata when not
//!   consumed by another directive).
//! * **IrBuilder** — the `OMPCanonicalLoop`-based path: CodeGen evaluates the
//!   distance function, calls `omplt_ompirb::create_canonical_loop`, emits
//!   the loop-user-value call and body inside the callback, and hands the
//!   resulting `CanonicalLoopInfo` handles to `tile_loops` /
//!   `unroll_loop_*` / `create_static_workshare_loop`.

pub mod cg_expr;
pub mod cg_omp_classic;
pub mod cg_omp_irbuilder;
pub mod cg_stmt;
pub mod codegen;

pub use codegen::{codegen_translation_unit, ir_type, CodegenOptions, CodegenResult};
