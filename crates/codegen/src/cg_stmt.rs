//! Statement lowering (the base language; OpenMP directives dispatch into
//! `cg_omp_classic` / `cg_omp_irbuilder`).

use crate::codegen::{ir_type, Binding, FnCodegen};
use omplt_ast::{Attr, CxxForRangeData, Decl, Stmt, StmtKind, VarDecl, P};
use omplt_ir::{IrType, LoopMetadata, UnrollHint, Value};
use omplt_sema::OpenMpCodegenMode;

impl FnCodegen<'_, '_> {
    /// Emits one statement at the current insertion point.
    pub(crate) fn emit_stmt(&mut self, s: &P<Stmt>) {
        // Stop emitting into a terminated block (code after return/break).
        if self.func.block(self.cur).term.is_some() {
            return;
        }
        match &s.kind {
            StmtKind::Compound(stmts) => {
                for c in stmts {
                    self.emit_stmt(c);
                }
            }
            StmtKind::Decl(decls) => {
                for d in decls {
                    if let Decl::Var(v) = d {
                        self.emit_var_decl(v, &[]);
                    }
                }
            }
            StmtKind::Expr(e) => {
                self.emit_rvalue(e);
            }
            StmtKind::Null => {}
            StmtKind::Return(e) => {
                let v = e.as_ref().map(|e| self.emit_rvalue(e));
                self.with_builder(|b| b.ret(v));
            }
            StmtKind::Break => {
                if let Some(&(brk, _)) = self.loop_stack.last() {
                    self.with_builder(|b| b.br(brk));
                } else {
                    self.diags.error(s.loc, "'break' outside of a loop");
                }
            }
            StmtKind::Continue => {
                if let Some(&(_, cont)) = self.loop_stack.last() {
                    self.with_builder(|b| b.br(cont));
                } else {
                    self.diags.error(s.loc, "'continue' outside of a loop");
                }
            }
            StmtKind::If { cond, then, els } => {
                let c = self.emit_rvalue(cond);
                let (then_bb, else_bb, join) = self.with_builder(|b| {
                    let then_bb = b.create_block("if.then");
                    let else_bb = b.create_block("if.else");
                    let join = b.create_block("if.end");
                    b.cond_br(c, then_bb, else_bb);
                    (then_bb, else_bb, join)
                });
                self.cur = then_bb;
                self.emit_stmt(then);
                self.branch_if_open(join);
                self.cur = else_bb;
                if let Some(e) = els {
                    self.emit_stmt(e);
                }
                self.branch_if_open(join);
                self.cur = join;
            }
            StmtKind::While { cond, body } => {
                let (cond_bb, body_bb, end) = self.with_builder(|b| {
                    let cond_bb = b.create_block("while.cond");
                    let body_bb = b.create_block("while.body");
                    let end = b.create_block("while.end");
                    b.br(cond_bb);
                    (cond_bb, body_bb, end)
                });
                self.cur = cond_bb;
                let c = self.emit_rvalue(cond);
                self.with_builder(|b| b.cond_br(c, body_bb, end));
                self.cur = body_bb;
                self.loop_stack.push((end, cond_bb));
                self.emit_stmt(body);
                self.loop_stack.pop();
                self.branch_if_open(cond_bb);
                self.cur = end;
            }
            StmtKind::DoWhile { body, cond } => {
                let (body_bb, cond_bb, end) = self.with_builder(|b| {
                    let body_bb = b.create_block("do.body");
                    let cond_bb = b.create_block("do.cond");
                    let end = b.create_block("do.end");
                    b.br(body_bb);
                    (body_bb, cond_bb, end)
                });
                self.cur = body_bb;
                self.loop_stack.push((end, cond_bb));
                self.emit_stmt(body);
                self.loop_stack.pop();
                self.branch_if_open(cond_bb);
                self.cur = cond_bb;
                let c = self.emit_rvalue(cond);
                self.with_builder(|b| b.cond_br(c, body_bb, end));
                self.cur = end;
            }
            StmtKind::For { .. } => self.emit_for(s, None),
            StmtKind::CxxForRange(d) => self.emit_range_for(d),
            StmtKind::Attributed { attrs, sub } => {
                // LoopHintAttr → llvm.loop.unroll.* metadata on the loop we
                // are about to emit (paper §2.1).
                let md = attrs.first().map(|a| match a {
                    Attr::LoopUnrollCount(n) => LoopMetadata::unroll(UnrollHint::Count(*n)),
                    Attr::LoopUnrollFull => LoopMetadata::unroll(UnrollHint::Full),
                    Attr::LoopUnrollEnable => LoopMetadata::unroll(UnrollHint::Enable),
                });
                match &sub.kind {
                    StmtKind::For { .. } => self.emit_for(sub, md),
                    _ => self.emit_stmt(sub),
                }
            }
            StmtKind::Captured(c) => {
                // A bare captured statement executes its body inline.
                self.emit_stmt(&c.decl.body);
            }
            StmtKind::OMPCanonicalLoop(cl) => {
                // Outside a directive the canonical loop wrapper is
                // transparent.
                let _ = self.emit_canonical_loop(cl);
            }
            StmtKind::OMP(d) => match self.opts.mode {
                OpenMpCodegenMode::Classic => self.emit_omp_classic(d),
                OpenMpCodegenMode::IrBuilder => self.emit_omp_irbuilder(d),
            },
        }
    }

    /// Declares a variable: (re)uses its slot and stores the initializer.
    /// `overrides` supplies pre-bound storage (canonical-loop Result params).
    pub(crate) fn emit_var_decl(
        &mut self,
        v: &P<VarDecl>,
        overrides: &[(omplt_ast::DeclId, Value)],
    ) {
        if let Some((_, addr)) = overrides.iter().find(|(id, _)| *id == v.id) {
            self.bindings.insert(v.id, Binding { addr: *addr });
            return;
        }
        let slot = self.slot_for(v);
        self.bindings.insert(v.id, Binding { addr: slot });
        if let Some(init) = &v.init {
            if v.by_ref {
                // Reference binding: store the referent's ADDRESS.
                let addr = self.emit_lvalue(init);
                self.with_builder(|b| b.store(addr, slot));
            } else if v.ty.element().is_some() {
                self.diags
                    .error(v.loc, "array initializers are not supported");
            } else {
                let val = self.emit_rvalue(init);
                self.with_builder(|b| b.store(val, slot));
            }
        }
    }

    /// Branches to `target` unless the current block is already terminated.
    pub(crate) fn branch_if_open(&mut self, target: omplt_ir::BlockId) {
        if self.func.block(self.cur).term.is_none() {
            self.with_builder(|b| b.br(target));
        }
    }

    /// Generic C for-loop lowering; `md` attaches loop metadata to the latch
    /// (LoopHintAttr / heuristic unroll deferral).
    ///
    /// Metadata-carrying loops are lowered through the canonical skeleton
    /// when they are in canonical form, so the mid-end `LoopUnroll` pass can
    /// recognize them without ScalarEvolution-style analysis — this is what
    /// makes the shadow-AST deferral ("no duplication takes place until
    /// that point", paper §2.1) actually fire.
    pub(crate) fn emit_for(&mut self, s: &P<Stmt>, md: Option<LoopMetadata>) {
        if let Some(m) = md {
            if self.emit_canonical_for(s, m) {
                return;
            }
        }
        let StmtKind::For {
            init,
            cond,
            inc,
            body,
        } = &s.kind
        else {
            unreachable!()
        };
        if let Some(i) = init {
            self.emit_stmt(i);
        }
        let (cond_bb, body_bb, inc_bb, end) = self.with_builder(|b| {
            let cond_bb = b.create_block("for.cond");
            let body_bb = b.create_block("for.body");
            let inc_bb = b.create_block("for.inc");
            let end = b.create_block("for.end");
            b.br(cond_bb);
            (cond_bb, body_bb, inc_bb, end)
        });
        self.cur = cond_bb;
        match cond {
            Some(c) => {
                let cv = self.emit_rvalue(c);
                self.with_builder(|b| b.cond_br(cv, body_bb, end));
            }
            None => self.with_builder(|b| b.br(body_bb)),
        }
        self.cur = body_bb;
        self.loop_stack.push((end, inc_bb));
        self.emit_stmt(body);
        self.loop_stack.pop();
        self.branch_if_open(inc_bb);
        self.cur = inc_bb;
        if let Some(i) = inc {
            self.emit_rvalue(i);
        }
        // The latch: carries the loop metadata.
        self.with_builder(|b| match md {
            Some(m) => b.br_with_md(cond_bb, m),
            None => b.br(cond_bb),
        });
        self.cur = end;
    }

    /// Lowers a canonical-form for-loop through the canonical skeleton with
    /// `md` on the latch. Returns false (emitting nothing) when the loop is
    /// not in canonical form — the caller falls back to generic lowering.
    fn emit_canonical_for(&mut self, s: &P<Stmt>, md: LoopMetadata) -> bool {
        // A throwaway context is safe here: the analysis builds expression
        // nodes only (no new declarations), and expressions reference the
        // original `VarDecl`s.
        let ctx = omplt_ast::ASTContext::new();
        let quiet = omplt_source::DiagnosticsEngine::new();
        let Some(a) = omplt_sema::analyze_canonical_loop(&ctx, &quiet, s, "loop hint") else {
            return false;
        };
        let StmtKind::For { init, body, .. } = &s.kind else {
            return false;
        };
        if let Some(i) = init.clone() {
            self.emit_stmt(&i);
        }
        // Loop-invariant values, evaluated once in the preheader position:
        // the variable's start value, the step, and the trip count.
        let start = self.load_var(&a.iter_var);
        let step_expr = a.step.clone();
        let step = self.emit_rvalue(&step_expr);
        // A compile-time trip count is materialized as a constant so the
        // full-unroll path of the LoopUnroll pass can see it (the generic
        // distance expression goes through memory and would not fold).
        let logical_ir = ir_type(&a.logical_ty);
        let tc = match a.const_trip_count() {
            Some(n) => Value::int(logical_ir, n as i64),
            None => {
                let dist = a.distance_expr(&ctx);
                self.emit_rvalue(&dist)
            }
        };
        let var_ir = ir_type(&a.iter_var.ty);
        let is_ptr = a.iter_var.ty.is_pointer();
        let elem = a.iter_var.ty.pointee().map_or(1, |t| t.size_of()).max(1);
        let down = a.direction == omplt_sema::LoopDirection::Down;

        let cli = {
            let mut b = omplt_ir::IrBuilder::new(&mut self.func);
            b.set_insert_point(self.cur);
            let cli = omplt_ompirb::create_canonical_loop_skeleton(&mut b, tc, "hint", true);
            cli.set_metadata(
                b.func_mut(),
                LoopMetadata {
                    is_canonical: true,
                    ..md
                },
            );
            cli
        };
        self.cur = cli.body;
        // var = start ± iv * step, then the body.
        let val = self.with_builder(|b| {
            if is_ptr {
                let iv64 = b.int_resize(cli.iv(), IrType::I64, false);
                let scaled = b.mul(iv64, step);
                let off = if down {
                    b.sub(Value::i64(0), scaled)
                } else {
                    scaled
                };
                b.gep(start, off, elem)
            } else {
                let ivv = b.int_resize(cli.iv(), var_ir, false);
                let stepv = b.int_resize(step, var_ir, true);
                let scaled = b.mul(ivv, stepv);
                if down {
                    b.sub(start, scaled)
                } else {
                    b.add(start, scaled)
                }
            }
        });
        self.store_var(&a.iter_var, val);
        self.loop_stack.push((cli.after, cli.latch));
        self.emit_stmt(body);
        self.loop_stack.pop();
        self.branch_if_open(cli.latch);
        self.cur = cli.after;
        true
    }

    /// Lowers a range-based for through its de-sugared form (paper Fig.
    /// lst:rangesugar).
    fn emit_range_for(&mut self, d: &P<CxxForRangeData>) {
        self.emit_stmt(&d.range_stmt);
        self.emit_stmt(&d.begin_stmt);
        self.emit_stmt(&d.end_stmt);
        let (cond_bb, body_bb, inc_bb, end) = self.with_builder(|b| {
            let cond_bb = b.create_block("range.cond");
            let body_bb = b.create_block("range.body");
            let inc_bb = b.create_block("range.inc");
            let end = b.create_block("range.end");
            b.br(cond_bb);
            (cond_bb, body_bb, inc_bb, end)
        });
        self.cur = cond_bb;
        let c = self.emit_rvalue(&d.cond);
        self.with_builder(|b| b.cond_br(c, body_bb, end));
        self.cur = body_bb;
        // Bind the loop user variable for this iteration.
        self.emit_stmt(&d.loop_var_stmt);
        self.loop_stack.push((end, inc_bb));
        self.emit_stmt(&d.body);
        self.loop_stack.pop();
        self.branch_if_open(inc_bb);
        self.cur = inc_bb;
        self.emit_rvalue(&d.inc);
        self.with_builder(|b| b.br(cond_bb));
        self.cur = end;
    }

    /// Loads the current value of a bound variable (helper for OpenMP
    /// lowering).
    pub(crate) fn load_var(&mut self, v: &P<VarDecl>) -> Value {
        let addr = self.bindings.get(&v.id).map(|b| b.addr).unwrap_or_else(|| {
            let s = self.slot_for(v);
            self.bindings.insert(v.id, Binding { addr: s });
            s
        });
        let ty = ir_type(&v.ty);
        self.with_builder(|b| b.load(ty, addr))
    }

    /// Stores into a bound variable.
    pub(crate) fn store_var(&mut self, v: &P<VarDecl>, val: Value) {
        let addr = self.bindings.get(&v.id).map(|b| b.addr).unwrap_or_else(|| {
            let s = self.slot_for(v);
            self.bindings.insert(v.id, Binding { addr: s });
            s
        });
        self.with_builder(|b| b.store(val, addr));
    }

    /// Allocates an anonymous scratch slot.
    pub(crate) fn scratch(&mut self, ty: IrType, name: &str) -> Value {
        let entry = self.func.entry();
        self.func.push_inst(
            entry,
            omplt_ir::Inst::Alloca {
                ty,
                count: 1,
                name: name.to_string(),
            },
        )
    }
}
