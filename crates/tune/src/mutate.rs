//! Mutation axes and candidate enumeration.
//!
//! The search space is factored into independent **axes**, one per tunable
//! degree of freedom the directive stacks expose: the schedule of each
//! worksharing directive, the sizes of each `tile`, the factor of each
//! `unroll`, the permutation of each `interchange`, presence toggles for the
//! order-changing transformations, the execution backend, and — when the
//! program has a simd-annotated loop — the `simdlen` hint and the VM's
//! `--vector-width`. Axis value 0
//! is always the *identity* (keep the original configuration), so the
//! all-identity candidate is the hand-annotated program itself and is always
//! enumerated first — the tuner can only ever report a configuration at
//! least as good as the one the programmer wrote.
//!
//! Two generators share the axes:
//!
//! * [`Enumerator`] — deterministic grid walk: identity, then every single-
//!   axis deviation (one-factor-at-a-time), then the full mixed-radix cross
//!   product. Budgets cut the walk off at a stable prefix, so reports are
//!   reproducible byte-for-byte.
//! * [`Sampler`] — seeded random walk over the same space; this is the
//!   randomized differential stress generator the test suites use.
//!
//! Candidates that would be *illegal* are enumerated anyway — pruning is the
//! legality analyses' job, and asserting that illegal candidates are pruned
//! (rather than silently skipped) is exactly what makes the enumerator a
//! stress corpus.

use crate::model::{Clause, Mutation, Pragma, SourceModel};

/// Which execution engine evaluates a candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// Tree-walking interpreter.
    Interp,
    /// Bytecode VM (strict: a compile/verify failure fails the candidate
    /// instead of silently re-measuring on the interpreter).
    Vm,
}

impl BackendChoice {
    /// Flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Interp => "interp",
            BackendChoice::Vm => "vm",
        }
    }
}

/// Whether an axis can change the inter-iteration execution order of the
/// program (order-preserving mutations keep the output multiset of the
/// unannotated program; order-changing ones need dependence legality).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxisKind {
    /// Schedule kind/chunk, tile sizes, unroll factors, backend choice.
    OrderPreserving,
    /// Interchange permutations, reverse/fuse toggles, stack insertions.
    OrderChanging,
}

/// One value an axis can take.
#[derive(Clone, Debug)]
pub struct AxisValue {
    /// Short label for reports (`sched=dynamic,2`).
    pub label: String,
    /// Source mutations realizing this value (empty = identity).
    pub mutations: Vec<Mutation>,
    /// Backend override (the backend axis only).
    pub backend: Option<BackendChoice>,
    /// `--vector-width` override (the vector-width axis only; implies the
    /// VM backend, since the widening pass lives in the bytecode tier).
    pub vector_width: Option<u8>,
}

impl AxisValue {
    fn identity() -> AxisValue {
        AxisValue {
            label: String::new(),
            mutations: Vec::new(),
            backend: None,
            vector_width: None,
        }
    }
}

/// One tunable degree of freedom. `values[0]` is always the identity.
#[derive(Clone, Debug)]
pub struct Axis {
    /// What the axis tunes (for reports).
    pub name: String,
    /// Order-preserving or order-changing.
    pub kind: AxisKind,
    /// Possible values, identity first.
    pub values: Vec<AxisValue>,
}

/// Knobs for axis construction.
#[derive(Clone, Debug)]
pub struct EnumConfig {
    /// `schedule(kind[, chunk])` variants tried on worksharing directives.
    pub schedules: Vec<&'static str>,
    /// Tile size candidates per dimension.
    pub tile_sizes: Vec<u32>,
    /// `unroll partial(f)` factors tried.
    pub unroll_factors: Vec<u32>,
    /// Whether to add the interp/vm backend axis.
    pub explore_backends: bool,
    /// `--vector-width` values tried (and `simdlen` clause candidates) when
    /// the program has a simd-annotated loop; empty disables the axis.
    pub vector_widths: Vec<u8>,
    /// Whether to try *inserting* order-changing directives (`reverse`,
    /// `interchange`) that the original program does not have.
    pub insertions: bool,
    /// Drop every order-changing axis (the property suite's restriction).
    pub order_preserving_only: bool,
    /// Hard cap on enumerated candidates (bounds the mixed-radix walk).
    pub max_enumerated: usize,
}

impl Default for EnumConfig {
    fn default() -> EnumConfig {
        EnumConfig {
            schedules: vec![
                "static",
                "static, 2",
                "static, 4",
                "dynamic, 2",
                "dynamic, 4",
                "guided",
                "guided, 4",
            ],
            tile_sizes: vec![2, 4, 8],
            unroll_factors: vec![2, 4, 8],
            explore_backends: true,
            vector_widths: vec![2, 4, 8],
            insertions: true,
            order_preserving_only: false,
            max_enumerated: 4096,
        }
    }
}

/// A fully specified configuration to try: a set of source mutations plus
/// the backend that executes it.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Stable enumeration index (ids are dense and deterministic).
    pub id: usize,
    /// Human-readable summary of the non-identity axis values
    /// (`"original"` for the all-identity candidate).
    pub label: String,
    /// Source mutations (empty for the original program).
    pub mutations: Vec<Mutation>,
    /// Execution engine for this candidate; `None` inherits whatever the
    /// session's `--backend` selected.
    pub backend: Option<BackendChoice>,
    /// `--vector-width` for this candidate; `None` inherits the session's.
    pub vector_width: Option<u8>,
}

/// Cartesian-product size guard: `k`-ary permutations enumerated for
/// `interchange` (depth ≤ 3 keeps this tiny).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (1..=n).collect();
    // Heap's algorithm, iterative; n ≤ 3 in practice.
    fn heap(k: usize, a: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut idx, &mut out);
    out.sort();
    out
}

/// Builds the axes for `model` under `cfg`. Deterministic: axes appear in
/// (site, pragma) order, with the backend and vector-width axes last.
pub fn axes_for(model: &SourceModel, cfg: &EnumConfig) -> Vec<Axis> {
    let mut axes = Vec::new();
    for (si, site) in model.sites.iter().enumerate() {
        for (pi, p) in site.pragmas.iter().enumerate() {
            match p.directive.as_str() {
                "for" | "parallel for" => {
                    let mut values = vec![AxisValue::identity()];
                    for s in &cfg.schedules {
                        // Skip the variant that restates the original.
                        if p.clause("schedule").and_then(|c| c.args.as_deref()) == Some(*s) {
                            continue;
                        }
                        values.push(AxisValue {
                            label: format!("s{si}.sched={}", s.replace(", ", ",")),
                            mutations: vec![Mutation::SetClause {
                                site: si,
                                pragma: pi,
                                name: "schedule".into(),
                                args: Some((*s).to_string()),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    if p.clause("schedule").is_some() {
                        values.push(AxisValue {
                            label: format!("s{si}.sched=none"),
                            mutations: vec![Mutation::RemoveClause {
                                site: si,
                                pragma: pi,
                                name: "schedule".into(),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    axes.push(Axis {
                        name: format!("s{si}.schedule"),
                        kind: AxisKind::OrderPreserving,
                        values,
                    });
                }
                "tile" => {
                    let dims = p
                        .clause("sizes")
                        .and_then(|c| c.args.as_ref())
                        .map_or(1, |a| a.split(',').count());
                    let mut values = vec![AxisValue::identity()];
                    let mut combo = vec![0usize; dims];
                    loop {
                        let sizes: Vec<String> = combo
                            .iter()
                            .map(|&i| cfg.tile_sizes[i].to_string())
                            .collect();
                        let args = sizes.join(", ");
                        if p.clause("sizes").and_then(|c| c.args.as_deref()) != Some(&args[..]) {
                            values.push(AxisValue {
                                label: format!("s{si}.tile={}", sizes.join("x")),
                                mutations: vec![Mutation::SetClause {
                                    site: si,
                                    pragma: pi,
                                    name: "sizes".into(),
                                    args: Some(args),
                                }],
                                backend: None,
                                vector_width: None,
                            });
                        }
                        // Odometer over tile_sizes^dims.
                        let mut d = 0;
                        loop {
                            if d == dims {
                                break;
                            }
                            combo[d] += 1;
                            if combo[d] < cfg.tile_sizes.len() {
                                break;
                            }
                            combo[d] = 0;
                            d += 1;
                        }
                        if d == dims {
                            break;
                        }
                    }
                    values.push(AxisValue {
                        label: format!("s{si}.tile=off"),
                        mutations: vec![Mutation::RemovePragma {
                            site: si,
                            pragma: pi,
                        }],
                        backend: None,
                        vector_width: None,
                    });
                    axes.push(Axis {
                        name: format!("s{si}.tile"),
                        kind: AxisKind::OrderPreserving,
                        values,
                    });
                }
                "unroll" => {
                    let mut values = vec![AxisValue::identity()];
                    for f in &cfg.unroll_factors {
                        if p.clause("partial").and_then(|c| c.args.as_deref())
                            == Some(&f.to_string()[..])
                        {
                            continue;
                        }
                        values.push(AxisValue {
                            label: format!("s{si}.unroll={f}"),
                            mutations: vec![Mutation::SetClause {
                                site: si,
                                pragma: pi,
                                name: "partial".into(),
                                args: Some(f.to_string()),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    values.push(AxisValue {
                        label: format!("s{si}.unroll=off"),
                        mutations: vec![Mutation::RemovePragma {
                            site: si,
                            pragma: pi,
                        }],
                        backend: None,
                        vector_width: None,
                    });
                    axes.push(Axis {
                        name: format!("s{si}.unroll"),
                        kind: AxisKind::OrderPreserving,
                        values,
                    });
                }
                "interchange" => {
                    let dims = p
                        .clause("permutation")
                        .and_then(|c| c.args.as_ref())
                        .map_or(2, |a| a.split(',').count());
                    let mut values = vec![AxisValue::identity()];
                    for perm in permutations(dims.min(3)) {
                        let args = perm
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ");
                        if p.clause("permutation").and_then(|c| c.args.as_deref())
                            == Some(&args[..])
                        {
                            continue;
                        }
                        values.push(AxisValue {
                            label: format!(
                                "s{si}.perm={}",
                                perm.iter()
                                    .map(|v| v.to_string())
                                    .collect::<Vec<_>>()
                                    .join("")
                            ),
                            mutations: vec![Mutation::SetClause {
                                site: si,
                                pragma: pi,
                                name: "permutation".into(),
                                args: Some(args),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    values.push(AxisValue {
                        label: format!("s{si}.interchange=off"),
                        mutations: vec![Mutation::RemovePragma {
                            site: si,
                            pragma: pi,
                        }],
                        backend: None,
                        vector_width: None,
                    });
                    axes.push(Axis {
                        name: format!("s{si}.interchange"),
                        kind: AxisKind::OrderChanging,
                        values,
                    });
                }
                "simd" | "for simd" | "parallel for simd" => {
                    // `simdlen` is a preferred-width hint the widening pass
                    // clamps to, so it is order-preserving by construction.
                    // Values that sema rejects (simdlen > safelen) are
                    // enumerated anyway — classifying them is the legality
                    // machinery's job, same as every other axis.
                    let mut values = vec![AxisValue::identity()];
                    for &w in &cfg.vector_widths {
                        if p.clause("simdlen").and_then(|c| c.args.as_deref())
                            == Some(&w.to_string()[..])
                        {
                            continue;
                        }
                        values.push(AxisValue {
                            label: format!("s{si}.simdlen={w}"),
                            mutations: vec![Mutation::SetClause {
                                site: si,
                                pragma: pi,
                                name: "simdlen".into(),
                                args: Some(w.to_string()),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    if p.clause("simdlen").is_some() {
                        values.push(AxisValue {
                            label: format!("s{si}.simdlen=none"),
                            mutations: vec![Mutation::RemoveClause {
                                site: si,
                                pragma: pi,
                                name: "simdlen".into(),
                            }],
                            backend: None,
                            vector_width: None,
                        });
                    }
                    if values.len() > 1 {
                        axes.push(Axis {
                            name: format!("s{si}.simdlen"),
                            kind: AxisKind::OrderPreserving,
                            values,
                        });
                    }
                }
                "reverse" | "fuse" => {
                    axes.push(Axis {
                        name: format!("s{si}.{}", p.directive),
                        kind: AxisKind::OrderChanging,
                        values: vec![
                            AxisValue::identity(),
                            AxisValue {
                                label: format!("s{si}.{}=off", p.directive),
                                mutations: vec![Mutation::RemovePragma {
                                    site: si,
                                    pragma: pi,
                                }],
                                backend: None,
                                vector_width: None,
                            },
                        ],
                    });
                }
                _ => {}
            }
        }
        // Insertion axis: try appending an order-changing transformation at
        // the innermost position of the stack. Illegal insertions (wrong
        // nest depth, carried dependences) are the legality analyses' to
        // prune — generating them is the point.
        if cfg.insertions && !site.pragmas.is_empty() {
            let at = site.pragmas.len();
            let has = |d: &str| site.pragmas.iter().any(|p| p.directive == d);
            let mut values = vec![AxisValue::identity()];
            if !has("reverse") {
                values.push(AxisValue {
                    label: format!("s{si}.+reverse"),
                    mutations: vec![Mutation::InsertPragma {
                        site: si,
                        at,
                        pragma: Pragma::new("reverse"),
                    }],
                    backend: None,
                    vector_width: None,
                });
            }
            if !has("interchange") {
                values.push(AxisValue {
                    label: format!("s{si}.+interchange21"),
                    mutations: vec![Mutation::InsertPragma {
                        site: si,
                        at,
                        pragma: Pragma::new("interchange")
                            .with(Clause::with_args("permutation", "2, 1")),
                    }],
                    backend: None,
                    vector_width: None,
                });
            }
            if values.len() > 1 {
                axes.push(Axis {
                    name: format!("s{si}.insert"),
                    kind: AxisKind::OrderChanging,
                    values,
                });
            }
        }
    }
    if cfg.order_preserving_only {
        axes.retain(|a| a.kind == AxisKind::OrderPreserving);
    }
    if cfg.explore_backends {
        axes.push(Axis {
            name: "backend".into(),
            kind: AxisKind::OrderPreserving,
            values: vec![
                AxisValue::identity(),
                AxisValue {
                    label: "backend=vm".into(),
                    mutations: Vec::new(),
                    backend: Some(BackendChoice::Vm),
                    vector_width: None,
                },
            ],
        });
    }
    // Vector-width axis: lane counts the VM's widening pass tries on the
    // program's simd loops. Gated on a simd-annotated pragma actually being
    // present — on any other program every width is a no-op and the axis
    // would only inflate the grid with duplicates. Each value implies the
    // (strict) VM backend: the interpreter is the scalar oracle and has no
    // lanes to widen into.
    let has_simd = model.sites.iter().any(|site| {
        site.pragmas.iter().any(|p| {
            matches!(
                p.directive.as_str(),
                "simd" | "for simd" | "parallel for simd"
            )
        })
    });
    if has_simd && !cfg.vector_widths.is_empty() {
        let mut values = vec![AxisValue::identity()];
        for &w in &cfg.vector_widths {
            values.push(AxisValue {
                label: format!("vw={w}"),
                mutations: Vec::new(),
                backend: Some(BackendChoice::Vm),
                vector_width: Some(w),
            });
        }
        axes.push(Axis {
            name: "vector-width".into(),
            kind: AxisKind::OrderPreserving,
            values,
        });
    }
    axes
}

/// Materializes the candidate for one axis-value selection.
fn build_candidate(axes: &[Axis], sel: &[usize], id: usize) -> Candidate {
    let mut mutations = Vec::new();
    let mut backend = None;
    let mut vector_width = None;
    let mut labels = Vec::new();
    for (a, &v) in axes.iter().zip(sel) {
        let val = &a.values[v];
        mutations.extend(val.mutations.iter().cloned());
        if val.backend.is_some() {
            backend = val.backend;
        }
        if val.vector_width.is_some() {
            vector_width = val.vector_width;
        }
        if v != 0 {
            labels.push(val.label.clone());
        }
    }
    let label = if labels.is_empty() {
        "original".to_string()
    } else {
        labels.join(" ")
    };
    Candidate {
        id,
        label,
        mutations,
        backend,
        vector_width,
    }
}

/// Deterministic grid enumerator (see module docs for the order).
pub struct Enumerator {
    axes: Vec<Axis>,
    phase: Phase,
    emitted: usize,
    cap: usize,
}

enum Phase {
    Identity,
    /// One-factor-at-a-time: (axis index, value index ≥ 1).
    Single(usize, usize),
    /// Mixed-radix odometer over all axes.
    Cross(Vec<usize>),
    Done,
}

/// Starts the deterministic enumeration for `model`.
pub fn enumerate(model: &SourceModel, cfg: &EnumConfig) -> Enumerator {
    Enumerator {
        axes: axes_for(model, cfg),
        phase: Phase::Identity,
        emitted: 0,
        cap: cfg.max_enumerated,
    }
}

impl Enumerator {
    /// The axes being enumerated (for reports).
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    fn step_odometer(&self, sel: &mut [usize]) -> bool {
        for (slot, axis) in sel.iter_mut().zip(&self.axes) {
            *slot += 1;
            if *slot < axis.values.len() {
                return true;
            }
            *slot = 0;
        }
        false
    }
}

impl Iterator for Enumerator {
    type Item = Candidate;

    fn next(&mut self) -> Option<Candidate> {
        if self.emitted >= self.cap {
            return None;
        }
        loop {
            let phase = std::mem::replace(&mut self.phase, Phase::Done);
            let sel: Option<Vec<usize>> = match phase {
                Phase::Identity => {
                    self.phase = if self.axes.is_empty() {
                        Phase::Done
                    } else {
                        Phase::Single(0, 1)
                    };
                    Some(vec![0; self.axes.len()])
                }
                Phase::Single(a, v) => {
                    if a >= self.axes.len() {
                        self.phase = Phase::Cross(vec![0; self.axes.len()]);
                        continue;
                    }
                    if v >= self.axes[a].values.len() {
                        self.phase = Phase::Single(a + 1, 1);
                        continue;
                    }
                    self.phase = Phase::Single(a, v + 1);
                    let mut sel = vec![0; self.axes.len()];
                    sel[a] = v;
                    Some(sel)
                }
                Phase::Cross(prev) => {
                    let mut cur = prev;
                    let mut advanced = self.step_odometer(&mut cur);
                    // Skip combinations already emitted in earlier phases
                    // (≤ 1 non-identity axis).
                    while advanced && cur.iter().filter(|&&v| v != 0).count() <= 1 {
                        advanced = self.step_odometer(&mut cur);
                    }
                    if !advanced {
                        // self.phase is already Done.
                        continue;
                    }
                    self.phase = Phase::Cross(cur.clone());
                    Some(cur)
                }
                Phase::Done => None,
            };
            let sel = sel?;
            let c = build_candidate(&self.axes, &sel, self.emitted);
            self.emitted += 1;
            return Some(c);
        }
    }
}

/// xorshift64* — the same tiny deterministic PRNG the test suites use.
#[derive(Clone, Debug)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (0 is mapped to 1).
    pub fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Seeded random walk over the same axis space as [`Enumerator`] — the
/// randomized mutation generator the differential stress suites drive.
pub struct Sampler {
    axes: Vec<Axis>,
    rng: XorShift,
    emitted: usize,
    cap: usize,
}

/// Starts a seeded random sampler for `model`. The first candidate is still
/// the identity (so the stress corpus always covers the unmutated program);
/// subsequent candidates draw every axis independently, biased 50/50 between
/// identity and a uniformly random non-identity value so typical candidates
/// mutate a handful of axes rather than all of them.
pub fn sample(model: &SourceModel, cfg: &EnumConfig, seed: u64, count: usize) -> Sampler {
    Sampler {
        axes: axes_for(model, cfg),
        rng: XorShift::new(seed),
        emitted: 0,
        cap: count,
    }
}

impl Iterator for Sampler {
    type Item = Candidate;

    fn next(&mut self) -> Option<Candidate> {
        if self.emitted >= self.cap {
            return None;
        }
        let sel: Vec<usize> = if self.emitted == 0 {
            vec![0; self.axes.len()]
        } else {
            self.axes
                .iter()
                .map(|a| {
                    if a.values.len() <= 1 || self.rng.below(2) == 0 {
                        0
                    } else {
                        1 + self.rng.below(a.values.len() - 1)
                    }
                })
                .collect()
        };
        let c = build_candidate(&self.axes, &sel, self.emitted);
        self.emitted += 1;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "long a[64];\nint main(void) {\n  #pragma omp parallel for schedule(static)\n  #pragma omp tile sizes(4)\n  for (int i = 0; i < 64; i += 1)\n    a[i] = i;\n  return 0;\n}\n";

    #[test]
    fn identity_comes_first_and_is_verbatim() {
        let m = SourceModel::parse(SRC);
        let mut e = enumerate(&m, &EnumConfig::default());
        let c0 = e.next().unwrap();
        assert_eq!(c0.label, "original");
        assert_eq!(m.apply(&c0.mutations).unwrap(), SRC);
        assert_eq!(c0.backend, None, "identity inherits the session backend");
    }

    #[test]
    fn enumeration_is_deterministic_and_capped() {
        let m = SourceModel::parse(SRC);
        let cfg = EnumConfig {
            max_enumerated: 40,
            ..EnumConfig::default()
        };
        let a: Vec<String> = enumerate(&m, &cfg).map(|c| c.label).collect();
        let b: Vec<String> = enumerate(&m, &cfg).map(|c| c.label).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        let unique: std::collections::BTreeSet<&String> = a.iter().collect();
        assert_eq!(unique.len(), a.len(), "duplicate candidate labels: {a:?}");
    }

    #[test]
    fn sampler_is_seed_deterministic() {
        let m = SourceModel::parse(SRC);
        let cfg = EnumConfig::default();
        let a: Vec<String> = sample(&m, &cfg, 7, 16).map(|c| c.label).collect();
        let b: Vec<String> = sample(&m, &cfg, 7, 16).map(|c| c.label).collect();
        let c: Vec<String> = sample(&m, &cfg, 8, 16).map(|c| c.label).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a[0], "original");
    }

    #[test]
    fn order_preserving_only_drops_order_changing_axes() {
        let m = SourceModel::parse(SRC);
        let cfg = EnumConfig {
            order_preserving_only: true,
            ..EnumConfig::default()
        };
        for axis in axes_for(&m, &cfg) {
            assert_eq!(axis.kind, AxisKind::OrderPreserving, "{}", axis.name);
        }
    }
}
