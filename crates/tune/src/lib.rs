//! # omplt-tune
//!
//! The directive autotuner's search machinery: instead of hand-picking
//! transformation configurations (tile sizes, unroll factors, schedules) the
//! way the paper does, `ompltc --autotune` *searches* the configuration
//! space — the ROADMAP's autotuner item, in the spirit of MUPPET's
//! `OMPMutation` enumeration and ROSE's `AutoTuningInterface`, and of the
//! search-driver layer Kruse & Finkel's "Loop Optimization Framework"
//! (arXiv:1811.00632) puts above a legality-gated transformation engine.
//!
//! This crate owns the representation-level pieces, all deterministic and
//! dependency-free so the test suites can drive them directly:
//!
//! * [`model`] — source-level directive extraction and re-synthesis
//!   ([`SourceModel`], [`Pragma`], [`Mutation`]);
//! * [`mutate`] — the mutation axes, the deterministic grid [`Enumerator`],
//!   and the seeded random [`Sampler`] that doubles as the differential
//!   stress-corpus generator;
//! * [`cost`] — the [`CostModel`]s (deterministic retired-op counts by
//!   default, opt-in wall time);
//! * [`report`] — the ranked [`TuneReport`] with byte-deterministic text and
//!   JSON renderings.
//!
//! Orchestration — parsing candidates, pruning them through
//! `omplt-analysis` verdicts, executing survivors on the engines — lives in
//! the `omplt` facade (`omplt::tuner`), which wires these pieces to the
//! `CompilerInstance` pipeline; the driver exposes it as
//! `ompltc --autotune[=budget]`.

#![warn(missing_docs)]

pub mod cost;
pub mod model;
pub mod mutate;
pub mod report;

pub use cost::{CostModel, Measurement};
pub use model::{Clause, Mutation, Pragma, Site, SourceModel};
pub use mutate::{
    axes_for, enumerate, sample, Axis, AxisKind, AxisValue, BackendChoice, Candidate, EnumConfig,
    Enumerator, Sampler, XorShift,
};
pub use report::{CandidateOutcome, Status, TuneReport};
