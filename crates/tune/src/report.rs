//! The ranked tuning report (text and JSON renderings).
//!
//! Determinism contract: with the [`CostModel::Ops`](crate::CostModel::Ops)
//! cost model, two runs of the same tuner invocation produce byte-identical
//! text and JSON reports — candidate ids come from the deterministic
//! enumeration order, scores from deterministic op counts, and wall-clock
//! fields are only emitted under the `time` model. The autotune test suite
//! goldens this property.

use crate::cost::{CostModel, Measurement};
use crate::mutate::BackendChoice;
use std::fmt::Write as _;

/// Terminal state of one enumerated candidate.
#[derive(Clone, Debug)]
pub enum Status {
    /// Survived pruning and ran to completion.
    Evaluated(Measurement),
    /// Rejected before execution; carries the rendered diagnostics
    /// (parse/Sema errors or `--analyze` findings) explaining why.
    Pruned(Vec<String>),
    /// Ran, but its observables differ from the baseline program's — a
    /// would-be miscompile caught by the output cross-check. Never ranked.
    Diverged(String),
    /// Compilation or execution failed after pruning passed (e.g. fuel
    /// exhausted by a pathologically slower configuration).
    Failed(String),
    /// Re-synthesized to the same source+backend as an earlier candidate
    /// (mutation combinations can alias); not re-evaluated.
    Duplicate(usize),
}

/// One candidate's outcome in the report.
#[derive(Clone, Debug)]
pub struct CandidateOutcome {
    /// Enumeration id.
    pub id: usize,
    /// Axis-value summary label.
    pub label: String,
    /// Engine that evaluated (or would have evaluated) it.
    pub backend: BackendChoice,
    /// What happened.
    pub status: Status,
}

/// The complete result of one tuner invocation.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// Input name (file path as given to the driver).
    pub input: String,
    /// Cost model that ranked the candidates.
    pub cost_model: CostModel,
    /// Evaluation budget (max candidates executed).
    pub budget: usize,
    /// Sampler seed (`None` = deterministic grid enumeration).
    pub seed: Option<u64>,
    /// The hand-annotated program's own measurement (always evaluated
    /// first, as candidate 0).
    pub baseline: Measurement,
    /// Every enumerated candidate, in enumeration order.
    pub outcomes: Vec<CandidateOutcome>,
}

impl TuneReport {
    /// Evaluated candidates ranked best-first (score, then id — total and
    /// deterministic).
    pub fn ranked(&self) -> Vec<(&CandidateOutcome, u64)> {
        let mut v: Vec<(&CandidateOutcome, u64)> = self
            .outcomes
            .iter()
            .filter_map(|o| match &o.status {
                Status::Evaluated(m) => Some((o, m.score(self.cost_model))),
                _ => None,
            })
            .collect();
        v.sort_by_key(|(o, s)| (*s, o.id));
        v
    }

    /// The best evaluated candidate, if any survived.
    pub fn winner(&self) -> Option<&CandidateOutcome> {
        self.ranked().first().map(|(o, _)| *o)
    }

    /// Pruned candidates, in enumeration order.
    pub fn pruned(&self) -> Vec<&CandidateOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, Status::Pruned(_)))
            .collect()
    }

    /// Count of candidates in each terminal state:
    /// `(evaluated, pruned, diverged, failed, duplicates)`.
    pub fn tally(&self) -> (usize, usize, usize, usize, usize) {
        let mut t = (0, 0, 0, 0, 0);
        for o in &self.outcomes {
            match o.status {
                Status::Evaluated(_) => t.0 += 1,
                Status::Pruned(_) => t.1 += 1,
                Status::Diverged(_) => t.2 += 1,
                Status::Failed(_) => t.3 += 1,
                Status::Duplicate(_) => t.4 += 1,
            }
        }
        t
    }

    /// Human-readable ranked table.
    pub fn render_text(&self) -> String {
        let (ev, pr, dv, fl, du) = self.tally();
        let mut out = String::new();
        let _ = writeln!(out, "== autotune report: {} ==", self.input);
        let _ = writeln!(
            out,
            "cost model: {} (lower is better) | budget: {} | enumeration: {}",
            self.cost_model.name(),
            self.budget,
            match self.seed {
                Some(s) => format!("seeded random (seed {s})"),
                None => "deterministic grid".to_string(),
            }
        );
        let _ = writeln!(
            out,
            "candidates: {} evaluated, {pr} pruned, {dv} diverged, {fl} failed, {du} duplicate",
            ev
        );
        let _ = writeln!(
            out,
            "baseline (hand-annotated): score {}",
            self.baseline.score(self.cost_model)
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4}  {:>4}  {:>12}  {:<7}  config",
            "rank", "id", "score", "backend"
        );
        for (rank, (o, score)) in self.ranked().iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:>4}  {:>12}  {:<7}  {}",
                rank + 1,
                o.id,
                score,
                o.backend.name(),
                o.label
            );
        }
        let pruned = self.pruned();
        if !pruned.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "pruned (illegal) candidates:");
            for o in pruned {
                let Status::Pruned(diags) = &o.status else {
                    unreachable!()
                };
                let _ = writeln!(out, "  #{} {}", o.id, o.label);
                for d in diags {
                    let _ = writeln!(out, "      {d}");
                }
            }
        }
        for o in &self.outcomes {
            match &o.status {
                Status::Diverged(why) => {
                    let _ = writeln!(out, "DIVERGED #{} {}: {why}", o.id, o.label);
                }
                Status::Failed(why) => {
                    let _ = writeln!(out, "failed #{} {}: {why}", o.id, o.label);
                }
                _ => {}
            }
        }
        out
    }

    /// Machine-readable rendering (stable key order, candidates in
    /// enumeration order plus a ranked index).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"input\":\"{}\"", esc(&self.input));
        let _ = write!(out, ",\"cost_model\":\"{}\"", self.cost_model.name());
        let _ = write!(out, ",\"budget\":{}", self.budget);
        match self.seed {
            Some(s) => {
                let _ = write!(out, ",\"seed\":{s}");
            }
            None => out.push_str(",\"seed\":null"),
        }
        let _ = write!(
            out,
            ",\"baseline\":{{\"score\":{},\"exit_code\":{}}}",
            self.baseline.score(self.cost_model),
            self.baseline.exit_code
        );
        let (ev, pr, dv, fl, du) = self.tally();
        let _ = write!(
            out,
            ",\"tally\":{{\"evaluated\":{ev},\"pruned\":{pr},\"diverged\":{dv},\"failed\":{fl},\"duplicate\":{du}}}"
        );
        out.push_str(",\"candidates\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"label\":\"{}\",\"backend\":\"{}\"",
                o.id,
                esc(&o.label),
                o.backend.name()
            );
            match &o.status {
                Status::Evaluated(m) => {
                    let _ = write!(
                        out,
                        ",\"status\":\"evaluated\",\"score\":{},\"ops\":{},\"exit_code\":{}",
                        m.score(self.cost_model),
                        m.ops_retired,
                        m.exit_code
                    );
                    if self.cost_model == CostModel::Time {
                        let _ = write!(out, ",\"wall_us\":{}", m.wall_us);
                    }
                }
                Status::Pruned(diags) => {
                    out.push_str(",\"status\":\"pruned\",\"diagnostics\":[");
                    for (j, d) in diags.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\"", esc(d));
                    }
                    out.push(']');
                }
                Status::Diverged(why) => {
                    let _ = write!(out, ",\"status\":\"diverged\",\"reason\":\"{}\"", esc(why));
                }
                Status::Failed(why) => {
                    let _ = write!(out, ",\"status\":\"failed\",\"reason\":\"{}\"", esc(why));
                }
                Status::Duplicate(of) => {
                    let _ = write!(out, ",\"status\":\"duplicate\",\"of\":{of}");
                }
            }
            out.push('}');
        }
        out.push(']');
        out.push_str(",\"ranking\":[");
        for (i, (o, _)) in self.ranked().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", o.id);
        }
        out.push(']');
        match self.winner() {
            Some(w) => {
                let _ = write!(
                    out,
                    ",\"winner\":{{\"id\":{},\"label\":\"{}\",\"backend\":\"{}\"}}",
                    w.id,
                    esc(&w.label),
                    w.backend.name()
                );
            }
            None => out.push_str(",\"winner\":null"),
        }
        out.push_str("}\n");
        out
    }
}

/// Minimal JSON string escaping (same subset the driver uses).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TuneReport {
        TuneReport {
            input: "t.c".into(),
            cost_model: CostModel::Ops,
            budget: 8,
            seed: None,
            baseline: Measurement {
                ops_retired: 100,
                wall_us: 5,
                exit_code: 0,
            },
            outcomes: vec![
                CandidateOutcome {
                    id: 0,
                    label: "original".into(),
                    backend: BackendChoice::Interp,
                    status: Status::Evaluated(Measurement {
                        ops_retired: 100,
                        wall_us: 5,
                        exit_code: 0,
                    }),
                },
                CandidateOutcome {
                    id: 1,
                    label: "s0.unroll=4".into(),
                    backend: BackendChoice::Interp,
                    status: Status::Evaluated(Measurement {
                        ops_retired: 80,
                        wall_us: 9,
                        exit_code: 0,
                    }),
                },
                CandidateOutcome {
                    id: 2,
                    label: "s0.+reverse".into(),
                    backend: BackendChoice::Interp,
                    status: Status::Pruned(vec!["error: loop-carried dependence".into()]),
                },
            ],
        }
    }

    #[test]
    fn ranking_is_total_and_winner_is_best() {
        let r = sample_report();
        let ranked = r.ranked();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].0.id, 1);
        assert_eq!(r.winner().unwrap().id, 1);
        assert_eq!(r.pruned().len(), 1);
    }

    #[test]
    fn ops_model_json_has_no_wall_times() {
        let r = sample_report();
        let json = r.to_json();
        assert!(!json.contains("wall_us"), "{json}");
        assert!(json.contains("\"winner\":{\"id\":1"), "{json}");
        assert!(json.contains("\"status\":\"pruned\""), "{json}");
        // Deterministic rendering: same input, same bytes.
        assert_eq!(json, sample_report().to_json());
        assert_eq!(r.render_text(), sample_report().render_text());
    }
}
