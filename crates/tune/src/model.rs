//! Source-level directive model: extraction, mutation, and re-synthesis of
//! `#pragma omp` lines.
//!
//! The tuner mutates programs at the *source* level (the way MUPPET mutates
//! OpenMP directives), not by editing the AST: every candidate is a complete
//! C source text that goes through the full parse → Sema → analysis → codegen
//! pipeline, so a mutation can never bypass Sema's checking or the legality
//! analyses. This module provides the round trip: [`SourceModel::parse`]
//! finds the directive stacks, [`SourceModel::apply`] re-synthesizes the
//! program with a set of [`Mutation`]s applied.

use std::fmt::Write as _;

/// One clause on a pragma line, kept textually (`schedule(static, 4)` →
/// name `schedule`, args `static, 4`). Argument text is preserved verbatim
/// so clauses the tuner does not understand (e.g. `reduction(+: sum)`)
/// survive the round trip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause {
    /// Clause name as written.
    pub name: String,
    /// Raw text between the clause's parentheses, `None` for bare clauses
    /// like `nowait` or `full`.
    pub args: Option<String>,
}

impl Clause {
    /// A clause with parenthesized arguments.
    pub fn with_args(name: &str, args: impl Into<String>) -> Clause {
        Clause {
            name: name.to_string(),
            args: Some(args.into()),
        }
    }

    /// A bare clause.
    pub fn bare(name: &str) -> Clause {
        Clause {
            name: name.to_string(),
            args: None,
        }
    }
}

/// One `#pragma omp …` line, structurally: directive name (possibly
/// multi-word, e.g. `parallel for`) plus clauses in source order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// Directive name as written (`for`, `parallel for`, `tile`, …).
    pub directive: String,
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

impl Pragma {
    /// A clause-less pragma.
    pub fn new(directive: &str) -> Pragma {
        Pragma {
            directive: directive.to_string(),
            clauses: Vec::new(),
        }
    }

    /// Builder: appends a clause.
    pub fn with(mut self, clause: Clause) -> Pragma {
        self.clauses.push(clause);
        self
    }

    /// Parses the text of one pragma line. Returns `None` when the line is
    /// not an OpenMP pragma or does not scan (unbalanced parentheses —
    /// such lines are left untouched by the model).
    pub fn parse(line: &str) -> Option<Pragma> {
        let rest = line.trim().strip_prefix("#pragma")?.trim_start();
        let rest = rest.strip_prefix("omp")?;
        // Require a word boundary after `omp` (reject `#pragma ompx…`).
        if !rest.is_empty() && !rest.starts_with(char::is_whitespace) {
            return None;
        }
        let mut toks = Tokenizer { rest: rest.trim() };
        let first = toks.ident()?;
        // The only multi-word directive name in the subset.
        let directive = if first == "parallel" && toks.peek_ident() == Some("for") {
            toks.ident();
            "parallel for".to_string()
        } else {
            first
        };
        let mut clauses = Vec::new();
        while let Some(name) = toks.ident() {
            let args = toks.paren_group()?;
            clauses.push(Clause { name, args });
        }
        if !toks.rest.is_empty() {
            return None; // trailing tokens we cannot model
        }
        Some(Pragma { directive, clauses })
    }

    /// Renders the pragma back to a source line (without trailing newline).
    pub fn render(&self, indent: &str) -> String {
        let mut out = format!("{indent}#pragma omp {}", self.directive);
        for c in &self.clauses {
            match &c.args {
                Some(a) => write!(out, " {}({a})", c.name).unwrap(),
                None => write!(out, " {}", c.name).unwrap(),
            }
        }
        out
    }

    /// First clause with the given name.
    pub fn clause(&self, name: &str) -> Option<&Clause> {
        self.clauses.iter().find(|c| c.name == name)
    }

    /// Replaces the first clause named `name` (or appends one).
    pub fn set_clause(&mut self, name: &str, args: Option<String>) {
        match self.clauses.iter_mut().find(|c| c.name == name) {
            Some(c) => c.args = args,
            None => self.clauses.push(Clause {
                name: name.to_string(),
                args,
            }),
        }
    }

    /// Removes every clause named `name`; reports whether any was present.
    pub fn remove_clause(&mut self, name: &str) -> bool {
        let before = self.clauses.len();
        self.clauses.retain(|c| c.name != name);
        self.clauses.len() != before
    }
}

/// Minimal scanner over the tail of a pragma line.
struct Tokenizer<'a> {
    rest: &'a str,
}

impl<'a> Tokenizer<'a> {
    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek_ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        (end > 0).then(|| &self.rest[..end])
    }

    fn ident(&mut self) -> Option<String> {
        let id = self.peek_ident()?.to_string();
        self.rest = &self.rest[id.len()..];
        Some(id)
    }

    /// Consumes an optional `( … )` group (one level of nesting allowed),
    /// returning `Some(None)` when the next token is not a group and
    /// `None` when parentheses do not balance.
    #[allow(clippy::option_option)]
    fn paren_group(&mut self) -> Option<Option<String>> {
        self.skip_ws();
        if !self.rest.starts_with('(') {
            return Some(None);
        }
        let mut depth = 0usize;
        for (i, c) in self.rest.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = self.rest[1..i].trim().to_string();
                        self.rest = &self.rest[i + 1..];
                        return Some(Some(inner));
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// A maximal run of consecutive pragma lines — one directive *stack*
/// applying to the statement that follows it.
#[derive(Clone, Debug)]
pub struct Site {
    /// The stack, outermost directive first (source order).
    pub pragmas: Vec<Pragma>,
    /// Indentation copied from the first pragma line of the stack.
    pub indent: String,
    /// Line range `[start, end)` the stack occupies in the original source.
    pub line_start: usize,
    /// One past the last pragma line.
    pub line_end: usize,
}

/// A single edit to a program's directive configuration. Site and pragma
/// indices refer to the [`SourceModel`] the mutation was enumerated from.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// Sets (or adds) a clause on an existing pragma.
    SetClause {
        /// Site index.
        site: usize,
        /// Pragma index within the site's stack.
        pragma: usize,
        /// Clause name.
        name: String,
        /// New argument text (`None` = bare clause).
        args: Option<String>,
    },
    /// Removes a clause from an existing pragma (no-op if absent).
    RemoveClause {
        /// Site index.
        site: usize,
        /// Pragma index within the site's stack.
        pragma: usize,
        /// Clause name.
        name: String,
    },
    /// Inserts a new pragma into a site's stack.
    InsertPragma {
        /// Site index.
        site: usize,
        /// Insertion position within the stack (`stack.len()` = innermost).
        at: usize,
        /// The pragma to insert.
        pragma: Pragma,
    },
    /// Removes a pragma from a site's stack.
    RemovePragma {
        /// Site index.
        site: usize,
        /// Pragma index within the site's stack.
        pragma: usize,
    },
}

/// A parsed program: the original lines plus every directive stack found.
#[derive(Clone, Debug)]
pub struct SourceModel {
    lines: Vec<String>,
    /// Directive stacks in source order.
    pub sites: Vec<Site>,
}

impl SourceModel {
    /// Scans `source` for `#pragma omp` stacks. Lines that look like OpenMP
    /// pragmas but do not scan are treated as opaque text (the real parser
    /// will diagnose them).
    pub fn parse(source: &str) -> SourceModel {
        let lines: Vec<String> = source.lines().map(str::to_string).collect();
        let mut sites = Vec::new();
        let mut i = 0;
        while i < lines.len() {
            match Pragma::parse(&lines[i]) {
                None => i += 1,
                Some(first) => {
                    let indent: String =
                        lines[i].chars().take_while(|c| c.is_whitespace()).collect();
                    let start = i;
                    let mut pragmas = vec![first];
                    i += 1;
                    while i < lines.len() {
                        match Pragma::parse(&lines[i]) {
                            Some(p) => {
                                pragmas.push(p);
                                i += 1;
                            }
                            None => break,
                        }
                    }
                    sites.push(Site {
                        pragmas,
                        indent,
                        line_start: start,
                        line_end: i,
                    });
                }
            }
        }
        SourceModel { lines, sites }
    }

    /// Number of pragma lines across all sites.
    pub fn num_pragmas(&self) -> usize {
        self.sites.iter().map(|s| s.pragmas.len()).sum()
    }

    /// Re-synthesizes the program with `mutations` applied. An empty
    /// mutation list returns the original text verbatim. Returns an error
    /// for out-of-range site/pragma indices (an enumerator bug, not a user
    /// error).
    pub fn apply(&self, mutations: &[Mutation]) -> Result<String, String> {
        if mutations.is_empty() {
            let mut out = self.lines.join("\n");
            out.push('\n');
            return Ok(out);
        }
        let mut sites = self.sites.clone();
        fn site_of(sites: &mut [Site], idx: usize) -> Result<&mut Site, String> {
            let n = sites.len();
            sites
                .get_mut(idx)
                .ok_or_else(move || format!("mutation references site {idx}, program has {n}"))
        }
        for m in mutations {
            match m {
                Mutation::SetClause {
                    site,
                    pragma,
                    name,
                    args,
                } => {
                    let s = site_of(&mut sites, *site)?;
                    let p = s
                        .pragmas
                        .get_mut(*pragma)
                        .ok_or_else(|| format!("mutation references pragma {pragma}"))?;
                    p.set_clause(name, args.clone());
                }
                Mutation::RemoveClause { site, pragma, name } => {
                    let s = site_of(&mut sites, *site)?;
                    let p = s
                        .pragmas
                        .get_mut(*pragma)
                        .ok_or_else(|| format!("mutation references pragma {pragma}"))?;
                    p.remove_clause(name);
                }
                Mutation::InsertPragma { site, at, pragma } => {
                    let s = site_of(&mut sites, *site)?;
                    let at = (*at).min(s.pragmas.len());
                    s.pragmas.insert(at, pragma.clone());
                }
                Mutation::RemovePragma { site, pragma } => {
                    let s = site_of(&mut sites, *site)?;
                    if *pragma < s.pragmas.len() {
                        s.pragmas.remove(*pragma);
                    }
                }
            }
        }
        Ok(self.render_with(&sites))
    }

    /// The program with every directive stack removed — the unannotated
    /// baseline the property suite compares order-preserving mutations
    /// against.
    pub fn strip_pragmas(&self) -> String {
        let empty: Vec<Site> = self
            .sites
            .iter()
            .map(|s| Site {
                pragmas: Vec::new(),
                ..s.clone()
            })
            .collect();
        self.render_with(&empty)
    }

    fn render_with(&self, sites: &[Site]) -> String {
        let mut out = String::new();
        let mut i = 0;
        let mut next_site = 0;
        while i < self.lines.len() {
            if next_site < sites.len() && sites[next_site].line_start == i {
                let s = &sites[next_site];
                for p in &s.pragmas {
                    out.push_str(&p.render(&s.indent));
                    out.push('\n');
                }
                i = s.line_end;
                next_site += 1;
            } else {
                out.push_str(&self.lines[i]);
                out.push('\n');
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_round_trips() {
        let p = Pragma::parse("  #pragma omp parallel for reduction(+: sum) schedule(static, 4)")
            .unwrap();
        assert_eq!(p.directive, "parallel for");
        assert_eq!(
            p.clause("schedule").unwrap().args.as_deref(),
            Some("static, 4")
        );
        assert_eq!(
            p.render("  "),
            "  #pragma omp parallel for reduction(+: sum) schedule(static, 4)"
        );
    }

    #[test]
    fn non_pragmas_are_opaque() {
        assert!(Pragma::parse("int main(void) {").is_none());
        assert!(Pragma::parse("#pragma once").is_none());
        assert!(Pragma::parse("#pragma omp tile sizes(4").is_none());
    }

    #[test]
    fn model_identity_is_verbatim() {
        let src = "int main(void) {\n  #pragma omp parallel for\n  #pragma omp tile sizes(4, 4)\n  for (;;) ;\n}\n";
        let m = SourceModel::parse(src);
        assert_eq!(m.sites.len(), 1);
        assert_eq!(m.sites[0].pragmas.len(), 2);
        assert_eq!(m.apply(&[]).unwrap(), src);
    }

    #[test]
    fn mutations_edit_the_stack() {
        let src = "  #pragma omp for\n  for (;;) ;\n";
        let m = SourceModel::parse(src);
        let out = m
            .apply(&[Mutation::SetClause {
                site: 0,
                pragma: 0,
                name: "schedule".into(),
                args: Some("dynamic, 2".into()),
            }])
            .unwrap();
        assert_eq!(
            out,
            "  #pragma omp for schedule(dynamic, 2)\n  for (;;) ;\n"
        );
        let stripped = m.strip_pragmas();
        assert_eq!(stripped, "  for (;;) ;\n");
    }
}
