//! Candidate cost models.
//!
//! The default model is **retired-op count**: the number of IR/bytecode
//! operations the selected engine executed, as reported by the pipeline's
//! own `{interp,vm}.ops.retired` counters. Op counts are a pure function of
//! the program and its directive configuration (the drift guard in
//! `ci/check_counter_drift.sh` pins exactly this property), so rankings —
//! and therefore reports — are reproducible byte-for-byte, which is what
//! lets the autotune test suite golden them. Wall time is available as an
//! opt-in model for real measurements; it is deliberately excluded from the
//! deterministic report fields.

/// Which quantity ranks candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostModel {
    /// Retired-op count (deterministic; the default).
    #[default]
    Ops,
    /// Wall-clock microseconds of the run (non-deterministic; real
    /// measurements only).
    Time,
}

impl CostModel {
    /// Parses a `--tune-cost=` value.
    pub fn parse(s: &str) -> Option<CostModel> {
        match s {
            "ops" => Some(CostModel::Ops),
            "time" => Some(CostModel::Time),
            _ => None,
        }
    }

    /// Flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            CostModel::Ops => "ops",
            CostModel::Time => "time",
        }
    }
}

/// What evaluating one candidate measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Measurement {
    /// Ops the engine retired during the run.
    pub ops_retired: u64,
    /// Wall time of the run, microseconds.
    pub wall_us: u64,
    /// The program's exit code.
    pub exit_code: i64,
}

impl Measurement {
    /// The candidate's score under `model` — lower is better.
    pub fn score(&self, model: CostModel) -> u64 {
        match model {
            CostModel::Ops => self.ops_retired,
            CostModel::Time => self.wall_us,
        }
    }
}
