//! Constant folding + dead-code elimination over whole functions,
//! complementing the `IrBuilder`'s on-the-fly folding: transformations
//! (unrolling in particular) substitute constants for induction variables
//! *after* instructions were built, so a post-pass re-folds them.

use omplt_ir::{eval_icmp, fold_bin, Function, Inst, InstId, Value};
use std::collections::HashMap;

/// Folds constants and removes dead instructions to a fixpoint.
/// Returns true if anything changed.
pub fn constant_fold(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut local = fold_once(f);
        local |= dce_once(f);
        if !local {
            return changed;
        }
        changed = true;
    }
}

fn fold_once(f: &mut Function) -> bool {
    // Pass 1: decide replacements.
    let mut replacements: HashMap<InstId, Value> = HashMap::new();
    for bi in 0..f.blocks.len() {
        for &iid in &f.blocks[bi].insts {
            let inst = f.inst(iid);
            let folded = match inst {
                Inst::Bin { op, lhs, rhs } => {
                    let ty = f.value_type(*lhs);
                    fold_bin(*op, *lhs, *rhs, ty)
                }
                Inst::Cmp { pred, lhs, rhs } if !pred.is_float() => {
                    match (lhs.as_const_int(), rhs.as_const_int()) {
                        (Some(a), Some(b)) => {
                            Some(Value::bool(eval_icmp(*pred, a, b, f.value_type(*lhs))))
                        }
                        _ => None,
                    }
                }
                Inst::Select { cond, t, f: fv } => match cond.as_const_int() {
                    Some(0) => Some(*fv),
                    Some(_) => Some(*t),
                    None => None,
                },
                Inst::Cast { op, val, to } => match (op, val.as_const_int()) {
                    (omplt_ir::CastOp::Trunc, Some(c)) | (omplt_ir::CastOp::SExt, Some(c)) => {
                        Some(Value::int(*to, c))
                    }
                    (omplt_ir::CastOp::ZExt, Some(c)) => {
                        Some(Value::int(*to, f.value_type(*val).wrap_unsigned(c) as i64))
                    }
                    _ => None,
                },
                // Single-incoming phis collapse to their value.
                Inst::Phi { incoming, .. } if incoming.len() == 1 => Some(incoming[0].1),
                _ => None,
            };
            if let Some(v) = folded {
                // Avoid self-replacement cycles.
                if v != Value::Inst(iid) {
                    replacements.insert(iid, v);
                }
            }
        }
    }
    if replacements.is_empty() {
        return false;
    }
    // Resolve chains (a→b→const).
    let resolve = |mut v: Value| {
        let mut hops = 0;
        while let Value::Inst(id) = v {
            match replacements.get(&id) {
                Some(&next) if hops < 64 => {
                    v = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        v
    };
    // Pass 2: rewrite all uses and drop the folded instructions.
    for bi in 0..f.blocks.len() {
        let insts = f.blocks[bi].insts.clone();
        for iid in insts {
            f.inst_mut(iid).map_operands(resolve);
        }
        if let Some(t) = f.blocks[bi].term.as_mut() {
            t.map_operands(resolve);
        }
        f.blocks[bi].insts.retain(|i| !replacements.contains_key(i));
    }
    true
}

/// Removes instructions whose results are unused and that have no side
/// effects. Returns true if anything was removed.
fn dce_once(f: &mut Function) -> bool {
    let mut used = vec![false; f.insts.len()];
    for b in &f.blocks {
        for &iid in &b.insts {
            for op in f.inst(iid).operands() {
                if let Value::Inst(id) = op {
                    used[id.0 as usize] = true;
                }
            }
        }
        if let Some(t) = &b.term {
            let mut mark = |v: Value| {
                if let Value::Inst(id) = v {
                    used[id.0 as usize] = true;
                }
                v
            };
            // map_operands requires &mut; emulate with a clone
            let mut t2 = t.clone();
            t2.map_operands(&mut mark);
        }
    }
    let mut removed = false;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|&iid| {
            used[iid.0 as usize]
                || matches!(
                    f.insts[iid.0 as usize],
                    Inst::Store { .. } | Inst::Call { .. }
                )
        });
        removed |= b.insts.len() != before;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, BinOpKind, IrBuilder, IrType};

    #[test]
    fn folds_chains_after_substitution() {
        let mut f = Function::new("t", vec![], IrType::I64);
        {
            let mut b = IrBuilder::new(&mut f);
            // Build unfoldable insts via raw pushes (simulating post-unroll
            // constant substitution).
            let e = b.insert_block();
            let v1 = b.func_mut().push_inst(
                e,
                Inst::Bin {
                    op: BinOpKind::Add,
                    lhs: Value::i64(2),
                    rhs: Value::i64(3),
                },
            );
            let v2 = b.func_mut().push_inst(
                e,
                Inst::Bin {
                    op: BinOpKind::Mul,
                    lhs: v1,
                    rhs: Value::i64(4),
                },
            );
            b.ret(Some(v2));
        }
        assert!(constant_fold(&mut f));
        assert_eq!(f.num_insts(), 0);
        assert!(matches!(
            f.block(f.entry()).term,
            Some(omplt_ir::Terminator::Ret(Some(Value::ConstInt {
                val: 20,
                ..
            })))
        ));
        assert_verified(&f);
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut f = Function::new("t", vec![], IrType::Void);
        {
            let mut b = IrBuilder::new(&mut f);
            let p = b.alloca(IrType::I64, 1, "x");
            b.store(Value::i64(1), p);
            // dead arithmetic
            let e = b.insert_block();
            b.func_mut().push_inst(
                e,
                Inst::Bin {
                    op: BinOpKind::Add,
                    lhs: Value::i64(1),
                    rhs: Value::i64(1),
                },
            );
            b.ret(None);
        }
        constant_fold(&mut f);
        // alloca + store survive; dead add is gone
        assert_eq!(f.block(f.entry()).insts.len(), 2);
    }

    #[test]
    fn single_incoming_phi_collapses() {
        let mut f = Function::new("t", vec![], IrType::I64);
        let next = f.add_block("next");
        {
            let mut b = IrBuilder::new(&mut f);
            let e = b.insert_block();
            b.br(next);
            b.set_insert_point(next);
            let (v, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, e, Value::i64(9));
            b.ret(Some(v));
        }
        constant_fold(&mut f);
        assert!(matches!(
            f.block(next).term,
            Some(omplt_ir::Terminator::Ret(Some(Value::ConstInt {
                val: 9,
                ..
            })))
        ));
    }

    #[test]
    fn idempotent_when_nothing_to_do() {
        let mut f = Function::new("t", vec![IrType::I64], IrType::I64);
        {
            let mut b = IrBuilder::new(&mut f);
            let v = b.add(Value::Arg(0), Value::i64(1));
            b.ret(Some(v));
        }
        assert!(!constant_fold(&mut f));
    }
}
