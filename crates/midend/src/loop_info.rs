//! Natural-loop detection from back edges, plus recovery of the canonical
//! skeleton roles (header/cond/body/latch/exit) that `create_canonical_loop`
//! guarantees — which is exactly what lets the `LoopUnroll` pass work
//! "without requiring analysis by ScalarEvolution" (paper §3.2).

use crate::domtree::DomTree;
use omplt_ir::{BlockId, CmpPred, Function, Inst, InstId, LoopMetadata, Terminator, Value};

/// A natural loop: a back edge `latch → header` plus its body.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header.
    pub header: BlockId,
    /// The (single) latch. Loops with multiple latches are not produced by
    /// our front-end and are ignored by the passes.
    pub latch: BlockId,
    /// All blocks of the loop (header and latch included).
    pub blocks: Vec<BlockId>,
}

/// All natural loops of a function.
pub struct LoopInfo {
    /// Detected loops (innermost-last order is *not* guaranteed).
    pub loops: Vec<NaturalLoop>,
}

impl LoopInfo {
    /// Finds the natural loops of `f`.
    pub fn compute(f: &Function, dt: &DomTree) -> LoopInfo {
        let preds = f.predecessors();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            if !dt.is_reachable(from) {
                continue;
            }
            let Some(t) = &b.term else { continue };
            for header in t.successors() {
                if dt.dominates(header, from) {
                    // Back edge from → header. Collect the body: everything
                    // that reaches `from` without going through `header`.
                    let mut blocks = vec![header];
                    let mut seen = vec![false; f.blocks.len()];
                    seen[header.0 as usize] = true;
                    let mut stack = vec![from];
                    while let Some(x) = stack.pop() {
                        if seen[x.0 as usize] {
                            continue;
                        }
                        seen[x.0 as usize] = true;
                        blocks.push(x);
                        for &p in &preds[x.0 as usize] {
                            stack.push(p);
                        }
                    }
                    loops.push(NaturalLoop {
                        header,
                        latch: from,
                        blocks,
                    });
                }
            }
        }
        LoopInfo { loops }
    }

    /// Loops whose latch carries the given metadata predicate.
    pub fn with_metadata<'a>(
        &'a self,
        f: &'a Function,
        pred: impl Fn(&LoopMetadata) -> bool + 'a,
    ) -> impl Iterator<Item = &'a NaturalLoop> + 'a {
        self.loops.iter().filter(move |l| {
            f.block(l.latch)
                .term
                .as_ref()
                .and_then(|t| t.loop_md())
                .is_some_and(&pred)
        })
    }
}

/// The canonical-skeleton roles of a loop, recovered structurally.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonLoop {
    /// Skeleton blocks (see `omplt-ompirb`).
    pub header: BlockId,
    /// Condition block.
    pub cond: BlockId,
    /// Body-region entry.
    pub body: BlockId,
    /// Latch.
    pub latch: BlockId,
    /// Exit block.
    pub exit: BlockId,
    /// The IV phi.
    pub iv_phi: InstId,
    /// Trip count value compared in `cond`.
    pub trip_count: Value,
}

/// Tries to recognize the canonical skeleton rooted at `loop_`. Returns
/// `None` for loops that were not produced by `create_canonical_loop` (or
/// were restructured beyond recognition).
pub fn match_skeleton(f: &Function, loop_: &NaturalLoop) -> Option<SkeletonLoop> {
    let header = loop_.header;
    let latch = loop_.latch;
    // header: first inst is the IV phi; terminator is Br(cond) — or, after
    // SimplifyCfg merged header+cond, the header itself holds the compare
    // and conditional branch.
    let iv_phi = *f.block(header).insts.first()?;
    let Inst::Phi { incoming, .. } = f.inst(iv_phi) else {
        return None;
    };
    if incoming.len() != 2 || !incoming.iter().any(|(b, _)| *b == latch) {
        return None;
    }
    let cond = match f.block(header).term.as_ref()? {
        Terminator::Br { target, .. } => *target,
        Terminator::CondBr { .. } => header,
        _ => return None,
    };
    // cond: an `icmp ult iv, tc` feeding a CondBr(body, exit). In the
    // merged form the compare follows the phi(s).
    let cmp_id = *f
        .block(cond)
        .insts
        .iter()
        .find(|&&i| !matches!(f.inst(i), Inst::Phi { .. }))?;
    let Inst::Cmp {
        pred: CmpPred::Ult,
        lhs,
        rhs,
    } = f.inst(cmp_id)
    else {
        return None;
    };
    if *lhs != Value::Inst(iv_phi) {
        return None;
    }
    let trip_count = *rhs;
    let (body, exit) = match f.block(cond).term.as_ref()? {
        Terminator::CondBr {
            then_bb, else_bb, ..
        } => (*then_bb, *else_bb),
        _ => return None,
    };
    Some(SkeletonLoop {
        header,
        cond,
        body,
        latch,
        exit,
        iv_phi,
        trip_count,
    })
}

/// The body region of a recognized skeleton: blocks reachable from `body`
/// without passing through `latch`.
pub fn skeleton_body_region(f: &Function, sk: &SkeletonLoop) -> Vec<BlockId> {
    let mut seen = vec![false; f.blocks.len()];
    let mut out = Vec::new();
    let mut stack = vec![sk.body];
    while let Some(bb) = stack.pop() {
        if seen[bb.0 as usize] || bb == sk.latch {
            continue;
        }
        seen[bb.0 as usize] = true;
        out.push(bb);
        for s in f.successors(bb) {
            stack.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{IrBuilder, IrType};

    fn canonical(f: &mut Function) -> omplt_ompirb_shim::Cli {
        omplt_ompirb_shim::build(f)
    }

    /// Minimal local re-implementation of the canonical skeleton so the
    /// midend crate does not depend on `omplt-ompirb` (which would be a
    /// layering inversion); the structure matches `create_canonical_loop`.
    mod omplt_ompirb_shim {
        use super::*;

        pub struct Cli {
            pub header: BlockId,
            pub latch: BlockId,
            pub iv: InstId,
        }

        pub fn build(f: &mut Function) -> Cli {
            let mut b = IrBuilder::new(f);
            let preheader = b.create_block("preheader");
            let header = b.create_block("header");
            let cond = b.create_block("cond");
            let body = b.create_block("body");
            let latch = b.create_block("latch");
            let exit = b.create_block("exit");
            let after = b.create_block("after");
            b.br(preheader);
            b.set_insert_point(preheader);
            b.br(header);
            b.set_insert_point(header);
            let (iv, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, preheader, Value::i64(0));
            b.br(cond);
            b.set_insert_point(cond);
            let c = b.cmp(CmpPred::Ult, iv, Value::Arg(0));
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            b.br(latch);
            b.set_insert_point(latch);
            let next = b.add(iv, Value::i64(1));
            b.add_phi_incoming(phi, latch, next);
            b.br(header);
            b.set_insert_point(exit);
            b.br(after);
            b.set_insert_point(after);
            b.ret(None);
            Cli {
                header,
                latch,
                iv: phi,
            }
        }
    }

    #[test]
    fn detects_canonical_loop() {
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = canonical(&mut f);
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, cli.header);
        assert_eq!(l.latch, cli.latch);
        assert!(
            l.blocks.len() >= 4,
            "header, cond, body, latch: {:?}",
            l.blocks
        );
    }

    #[test]
    fn skeleton_recovery() {
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        let cli = canonical(&mut f);
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        let sk = match_skeleton(&f, &li.loops[0]).expect("canonical loop must be recognized");
        assert_eq!(sk.iv_phi, cli.iv);
        assert_eq!(sk.trip_count, Value::Arg(0));
        let region = skeleton_body_region(&f, &sk);
        assert_eq!(region.len(), 1);
    }

    #[test]
    fn irreducible_shapes_are_rejected_gracefully() {
        // while-style loop without the cond/latch split: no skeleton match,
        // but LoopInfo still finds the natural loop.
        let mut f = Function::new("w", vec![IrType::I64], IrType::Void);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        {
            let mut b = IrBuilder::new(&mut f);
            b.br(header);
            b.set_insert_point(header);
            let c = b.cmp(CmpPred::Ult, Value::Arg(0), Value::i64(4));
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            b.br(header);
            b.set_insert_point(exit);
            b.ret(None);
        }
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        assert_eq!(li.loops.len(), 1);
        assert!(match_skeleton(&f, &li.loops[0]).is_none());
    }

    #[test]
    fn nested_loops_found_separately() {
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        // outer canonical loop whose body contains another canonical loop —
        // easier built with the ompirb crate in integration tests; here we
        // check two sequential loops instead.
        let _a = canonical(&mut f);
        // second loop appended after: reuse the shim on a fresh function is
        // messy, so just assert single-loop behavior here; nesting is
        // covered by integration tests.
        let dt = DomTree::compute(&f);
        let li = LoopInfo::compute(&f, &dt);
        assert_eq!(li.loops.len(), 1);
    }
}
