//! Canonical-loop skeleton verifier.
//!
//! `omplt-ir`'s structural verifier checks generic well-formedness
//! (terminators, phi coherence, operand ranges). This pass layers the
//! paper's *loop-shape* invariants on top: every loop whose latch branch
//! carries `is_canonical` metadata — i.e. every loop minted by
//! `create_canonical_loop` — must still look like the canonical skeleton
//! (header phi from 0, `icmp ult iv, tc` condition feeding a conditional
//! branch into body/exit, latch incrementing by 1), and its trip count
//! must be defined at a point dominating the compare that consumes it.
//!
//! Wired into [`crate::pass_manager::PassManager`] so `--verify-each`
//! re-checks the invariants between every mid-end pass.

use omplt_ir::{verify_function, BlockId, Function, InstId, Module, Value, VerifyError};

use crate::domtree::DomTree;
use crate::loop_info::{match_skeleton, LoopInfo};

/// Finds the block owning `inst`, if any.
fn owner_block(f: &Function, inst: InstId) -> Option<BlockId> {
    f.blocks
        .iter()
        .position(|b| b.insts.contains(&inst))
        .map(|i| BlockId(i as u32))
}

/// Checks the canonical-skeleton invariants of every loop marked
/// `is_canonical`. A marked loop that no longer matches the skeleton is an
/// error — a transformation restructured it without clearing the metadata.
pub fn verify_loop_skeletons(f: &Function) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    let dt = DomTree::compute(f);
    let li = LoopInfo::compute(f, &dt);
    for nl in li.with_metadata(f, |md| md.is_canonical) {
        let where_ = format!(
            "canonical loop at {}.{}",
            f.block(nl.header).name,
            nl.header.0
        );
        let Some(sk) = match_skeleton(f, nl) else {
            errs.push(VerifyError(format!(
                "{where_}: marked `is_canonical` but no longer matches the \
                 canonical skeleton (header phi / icmp ult / cond-br shape)"
            )));
            continue;
        };
        if sk.body == sk.exit {
            errs.push(VerifyError(format!(
                "{where_}: condition branch must distinguish body from exit"
            )));
        }
        // The taken edge of `icmp ult iv, tc` must stay inside the loop and
        // the fall-through edge must leave it — swapped edges invert the
        // guard and execute the body exactly when it must not run.
        if !nl.blocks.contains(&sk.body) {
            errs.push(VerifyError(format!(
                "{where_}: condition true edge must enter the loop body, \
                 but {}.{} is outside the loop",
                f.block(sk.body).name,
                sk.body.0
            )));
        }
        if nl.blocks.contains(&sk.exit) {
            errs.push(VerifyError(format!(
                "{where_}: condition false edge must leave the loop, \
                 but {}.{} is inside it",
                f.block(sk.exit).name,
                sk.exit.0
            )));
        }
        // (Entering at IV = 0 is only guaranteed at creation time —
        // `CanonicalLoopInfo::check` enforces it in `omplt-ompirb`; the
        // partial-unroll remainder loop legitimately restarts mid-range.)
        // The trip count must dominate the compare that consumes it; a
        // transformation that sank or cloned the bound computation into the
        // loop would execute it per-iteration (or worse, use a stale copy).
        if let Value::Inst(tc) = sk.trip_count {
            match owner_block(f, tc) {
                Some(def_bb) => {
                    if !dt.dominates(def_bb, sk.cond) {
                        errs.push(VerifyError(format!(
                            "{where_}: trip count %{} defined in {}.{} does not \
                             dominate the loop condition {}.{}",
                            tc.0,
                            f.block(def_bb).name,
                            def_bb.0,
                            f.block(sk.cond).name,
                            sk.cond.0
                        )));
                    }
                }
                None => errs.push(VerifyError(format!(
                    "{where_}: trip count %{} is not attached to any block",
                    tc.0
                ))),
            }
        }
    }
    errs
}

/// Full per-function verification: structural rules plus skeleton
/// invariants. This is what `--verify-each` runs between passes.
pub fn verify_function_full(f: &Function) -> Vec<VerifyError> {
    let mut errs = verify_function(f);
    errs.extend(verify_loop_skeletons(f));
    errs
}

/// Module-level wrapper prefixing each error with the offending function.
pub fn verify_module_full(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for f in &m.functions {
        for e in verify_function_full(f) {
            errs.push(VerifyError(format!("@{}: {}", f.name, e.0)));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{CmpPred, Inst, IrBuilder, IrType, Terminator};
    use omplt_ompirb::create_canonical_loop_skeleton;

    fn skeleton_fn() -> (Function, omplt_ompirb::CanonicalLoopInfo) {
        let mut f = Function::new("t", vec![], IrType::Void);
        let cli = {
            let mut b = IrBuilder::new(&mut f);
            let cli = create_canonical_loop_skeleton(&mut b, Value::i64(8), "test", true);
            b.set_insert_point(cli.body);
            b.br(cli.latch);
            b.set_insert_point(cli.after);
            b.ret(None);
            cli
        };
        (f, cli)
    }

    #[test]
    fn accepts_pristine_skeleton() {
        let (f, _) = skeleton_fn();
        assert_eq!(verify_function_full(&f), vec![]);
    }

    #[test]
    fn rejects_swapped_condition_edges() {
        let (mut f, cli) = skeleton_fn();
        // Deliberately corrupt the skeleton: swap the body/exit edges of the
        // loop condition so the `icmp ult` guards the wrong way.
        let term = f.block_mut(cli.cond).term.take();
        if let Some(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
            loop_md,
        }) = term
        {
            f.block_mut(cli.cond).term = Some(Terminator::CondBr {
                cond,
                then_bb: else_bb,
                else_bb: then_bb,
                loop_md,
            });
        } else {
            panic!("cond block must end in CondBr");
        }
        let errs = verify_loop_skeletons(&f);
        assert!(
            errs.iter()
                .any(|e| e.0.contains("true edge") || e.0.contains("false edge")),
            "swapped edges must be flagged: {errs:?}"
        );
    }

    #[test]
    fn rejects_wrong_compare_predicate() {
        let (mut f, cli) = skeleton_fn();
        let cmp_id = f.block(cli.cond).insts[0];
        if let Inst::Cmp { pred, .. } = f.inst_mut(cmp_id) {
            *pred = CmpPred::Sgt;
        }
        let errs = verify_loop_skeletons(&f);
        assert!(!errs.is_empty(), "non-ult compare must be rejected");
    }

    #[test]
    fn rejects_trip_count_defined_inside_loop() {
        let (mut f, cli) = skeleton_fn();
        // Move the trip count into the body: compute it per-iteration and
        // rewrite the compare to use the sunk value.
        let sunk = f.push_inst(
            cli.body,
            Inst::Bin {
                op: omplt_ir::BinOpKind::Add,
                lhs: Value::i64(4),
                rhs: Value::i64(4),
            },
        );
        // keep inst order: push_inst appends after the existing Br-less insts
        let cmp_id = f.block(cli.cond).insts[0];
        if let Inst::Cmp { rhs, .. } = f.inst_mut(cmp_id) {
            *rhs = sunk;
        }
        let errs = verify_loop_skeletons(&f);
        assert!(
            errs.iter().any(|e| e.0.contains("dominate")),
            "sunk trip count must violate dominance: {errs:?}"
        );
    }
}
