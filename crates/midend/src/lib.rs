//! # omplt-midend
//!
//! The mid-end the shadow-AST design relies on (paper §2.2): partial
//! unrolling only *annotates* the inner loop with unroll metadata — "no
//! duplication takes place until" the `LoopUnroll` pass runs here.
//!
//! Provides classic scalar/CFG infrastructure (dominator tree, natural-loop
//! detection, CFG simplification, constant folding + DCE) and the
//! [`mod@loop_unroll`] pass, which consumes `llvm.loop.unroll.{full,count,enable}`
//! metadata, performs full unrolling for constant trip counts, and partial
//! unrolling with a **remainder loop** in the shape of the paper's
//! "Partial unrolling with remainder loop" figure.

pub mod constfold;
pub mod domtree;
pub mod loop_info;
pub mod loop_unroll;
pub mod pass_manager;
pub mod simplify_cfg;
pub mod verify;

pub use constfold::constant_fold;
pub use domtree::DomTree;
pub use loop_info::{match_skeleton, skeleton_body_region, LoopInfo, NaturalLoop, SkeletonLoop};
pub use loop_unroll::{loop_unroll, UnrollStats};
pub use pass_manager::{run_default_pipeline, run_default_pipeline_verified, Pass, PassManager};
pub use simplify_cfg::simplify_cfg;
pub use verify::{verify_function_full, verify_loop_skeletons, verify_module_full};
