//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use omplt_ir::{BlockId, Function};

/// Immediate-dominator tree for a function's reachable blocks.
pub struct DomTree {
    /// `idom[b] == Some(d)` — `d` immediately dominates `b`; entry maps to
    /// itself; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> DomTree {
        let n = f.blocks.len();
        let rpo = f.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = f.entry();
        idom[entry.0 as usize] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if idom[p.0 as usize].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    /// The immediate dominator (entry maps to itself; `None` if
    /// unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.0 as usize).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom(b).is_some()
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("processed block must have idom");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("processed block must have idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{IrType, Terminator, Value};

    /// Diamond: entry → {a, b} → join
    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut f = Function::new("d", vec![], IrType::Void);
        let a = f.add_block("a");
        let b = f.add_block("b");
        let join = f.add_block("join");
        let e = f.entry();
        f.block_mut(e).term = Some(Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: a,
            else_bb: b,
            loop_md: None,
        });
        f.block_mut(a).term = Some(Terminator::Br {
            target: join,
            loop_md: None,
        });
        f.block_mut(b).term = Some(Terminator::Br {
            target: join,
            loop_md: None,
        });
        f.block_mut(join).term = Some(Terminator::Ret(None));
        (f, a, b, join)
    }

    #[test]
    fn diamond_dominators() {
        let (f, a, b, join) = diamond();
        let dt = DomTree::compute(&f);
        let e = f.entry();
        assert_eq!(dt.idom(a), Some(e));
        assert_eq!(dt.idom(b), Some(e));
        assert_eq!(dt.idom(join), Some(e), "neither branch dominates the join");
        assert!(dt.dominates(e, join));
        assert!(!dt.dominates(a, join));
        assert!(dt.dominates(join, join));
    }

    #[test]
    fn loop_header_dominates_latch() {
        // entry → header; header → body | exit; body → header (latch)
        let mut f = Function::new("l", vec![], IrType::Void);
        let header = f.add_block("header");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let e = f.entry();
        f.block_mut(e).term = Some(Terminator::Br {
            target: header,
            loop_md: None,
        });
        f.block_mut(header).term = Some(Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: body,
            else_bb: exit,
            loop_md: None,
        });
        f.block_mut(body).term = Some(Terminator::Br {
            target: header,
            loop_md: None,
        });
        f.block_mut(exit).term = Some(Terminator::Ret(None));
        let dt = DomTree::compute(&f);
        assert!(dt.dominates(header, body));
        assert!(dt.dominates(header, exit));
        assert_eq!(dt.idom(header), Some(e));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = Function::new("u", vec![], IrType::Void);
        let dead = f.add_block("dead");
        f.block_mut(f.entry()).term = Some(Terminator::Ret(None));
        f.block_mut(dead).term = Some(Terminator::Ret(None));
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(dt.is_reachable(f.entry()));
    }
}
