//! The `LoopUnroll` pass — the mid-end half of the paper's deferred-unroll
//! design (§2.1/§2.2): the front-end only attaches `llvm.loop.unroll.*`
//! metadata ("no duplication takes place until that point"); this pass
//! performs the duplication:
//!
//! * **full** (constant trip count): the loop is replaced by `tc` copies of
//!   the body with the IV substituted by constants;
//! * **count(k)**: partial unroll producing a main loop of `tc / k` groups
//!   of `k` body copies plus a **remainder loop** reusing the original loop
//!   blocks — the exact shape of the paper's "Partial unrolling with
//!   remainder loop" figure; "LoopUnroll will also handle the case when the
//!   iteration count is not a multiple of the unroll factor";
//! * **enable**: a documented profitability heuristic picks full, a factor,
//!   or nothing (the paper: "the LoopUnroll pass can apply profitability
//!   heuristics to determine an appropriate factor").
//!
//! Only loops in the canonical skeleton shape are transformed (recovered by
//! [`crate::loop_info::match_skeleton`]); anything else keeps its metadata
//! and a statistic records the skip.

use crate::domtree::DomTree;
use crate::loop_info::{match_skeleton, skeleton_body_region, LoopInfo, SkeletonLoop};
use omplt_ir::{
    BlockId, CmpPred, Function, Inst, InstId, IrBuilder, LoopMetadata, Terminator, UnrollHint,
    Value,
};
use std::collections::HashMap;

/// What the pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UnrollStats {
    /// Loops fully unrolled.
    pub full: usize,
    /// Loops partially unrolled (with remainder loop).
    pub partial: usize,
    /// Loops the heuristic chose not to unroll.
    pub declined: usize,
    /// Loops with metadata that could not be matched/transformed.
    pub skipped: usize,
}

/// Cost-model limits (documented in DESIGN.md §7).
const FULL_UNROLL_MAX_GROWTH: u64 = 8_192;
const HEURISTIC_FULL_MAX_TC: i64 = 64;
const HEURISTIC_SMALL_BODY: usize = 16;
const HEURISTIC_MEDIUM_BODY: usize = 64;

/// Runs the unroll pass over `f` until no actionable metadata remains.
pub fn loop_unroll(f: &mut Function) -> UnrollStats {
    let mut stats = UnrollStats::default();
    // One loop per iteration: every transformation invalidates the CFG
    // analyses, so recompute. Terminates because each step removes or
    // disables one metadata annotation.
    loop {
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        let target = li.loops.iter().find_map(|l| {
            let md = f.block(l.latch).term.as_ref()?.loop_md()?;
            match md.unroll {
                Some(UnrollHint::Full) | Some(UnrollHint::Count(_)) | Some(UnrollHint::Enable) => {
                    Some((l.clone(), md.unroll.unwrap()))
                }
                _ => None,
            }
        });
        let Some((l, hint)) = target else {
            return stats;
        };

        let Some(sk) = match_skeleton(f, &l) else {
            disable(f, l.latch);
            stats.skipped += 1;
            continue;
        };
        let region = skeleton_body_region(f, &sk);
        if region_has_phis(f, &region) {
            disable(f, l.latch);
            stats.skipped += 1;
            continue;
        }
        let body_size: usize = region.iter().map(|&b| f.block(b).insts.len()).sum();

        match hint {
            UnrollHint::Full => {
                let Some(tc) = sk.trip_count.as_const_int() else {
                    // Non-constant trip count: full unrolling is impossible;
                    // the front-end guarantees `unroll full` only on
                    // countable loops, but degrade gracefully.
                    disable(f, l.latch);
                    stats.skipped += 1;
                    continue;
                };
                if (tc.max(0) as u64).saturating_mul(body_size.max(1) as u64)
                    > FULL_UNROLL_MAX_GROWTH
                {
                    // Too large to fully materialize: fall back to a factor.
                    partial_unroll(f, &sk, &region, 4);
                    stats.partial += 1;
                    continue;
                }
                full_unroll(f, &sk, &region, tc.max(0) as u64);
                stats.full += 1;
            }
            UnrollHint::Count(k) if k <= 1 => {
                disable(f, l.latch);
                stats.declined += 1;
            }
            UnrollHint::Count(k) => {
                partial_unroll(f, &sk, &region, k);
                stats.partial += 1;
            }
            UnrollHint::Enable => {
                // Profitability heuristic.
                let tc = sk.trip_count.as_const_int();
                match tc {
                    Some(n)
                        if n <= HEURISTIC_FULL_MAX_TC
                            && (n.max(0) as u64) * body_size.max(1) as u64
                                <= FULL_UNROLL_MAX_GROWTH =>
                    {
                        full_unroll(f, &sk, &region, n.max(0) as u64);
                        stats.full += 1;
                    }
                    _ if body_size <= HEURISTIC_SMALL_BODY => {
                        partial_unroll(f, &sk, &region, 4);
                        stats.partial += 1;
                    }
                    _ if body_size <= HEURISTIC_MEDIUM_BODY => {
                        partial_unroll(f, &sk, &region, 2);
                        stats.partial += 1;
                    }
                    _ => {
                        disable(f, l.latch);
                        stats.declined += 1;
                    }
                }
            }
            UnrollHint::Disable => unreachable!("filtered above"),
        }
    }
}

fn disable(f: &mut Function, latch: BlockId) {
    if let Some(t) = f.block_mut(latch).term.as_mut() {
        if let Some(slot) = t.loop_md_mut() {
            *slot = Some(slot.unwrap_or_default().disabled());
        }
    }
}

fn region_has_phis(f: &Function, region: &[BlockId]) -> bool {
    region.iter().any(|&bb| {
        f.block(bb)
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Phi { .. }))
    })
}

/// The region's blocks in function reverse-postorder (defs before uses).
fn region_in_rpo(f: &Function, region: &[BlockId]) -> Vec<BlockId> {
    let set: Vec<bool> = {
        let mut v = vec![false; f.blocks.len()];
        for &b in region {
            v[b.0 as usize] = true;
        }
        v
    };
    f.reverse_postorder()
        .into_iter()
        .filter(|b| set[b.0 as usize])
        .collect()
}

/// Clones `region`, remapping values through `vmap` (seeded with the IV
/// substitution) and intra-region branch targets. Branches to `old_exit_to`
/// are retargeted to `new_exit_to`. Returns the clone's entry block.
fn clone_region(
    f: &mut Function,
    region_rpo: &[BlockId],
    entry: BlockId,
    seed: &[(InstId, Value)],
    old_exit_to: BlockId,
    new_exit_to: BlockId,
    tag: &str,
) -> BlockId {
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for &bb in region_rpo {
        let name = format!("{}.{tag}", f.block(bb).name);
        bmap.insert(bb, f.add_block(name));
    }
    let mut vmap: HashMap<InstId, Value> = seed.iter().copied().collect();
    for &bb in region_rpo {
        let new_bb = bmap[&bb];
        let insts = f.block(bb).insts.clone();
        for iid in insts {
            let mut inst = f.inst(iid).clone();
            inst.map_operands(|v| match v {
                Value::Inst(id) => vmap.get(&id).copied().unwrap_or(v),
                _ => v,
            });
            let nv = f.push_inst(new_bb, inst);
            vmap.insert(iid, nv);
        }
        let mut term = f
            .block(bb)
            .term
            .clone()
            .expect("region blocks must be terminated");
        term.map_operands(|v| match v {
            Value::Inst(id) => vmap.get(&id).copied().unwrap_or(v),
            _ => v,
        });
        term.map_blocks(|t| {
            if t == old_exit_to {
                new_exit_to
            } else {
                bmap.get(&t).copied().unwrap_or(t)
            }
        });
        f.block_mut(new_bb).term = Some(term);
    }
    bmap[&entry]
}

/// The preheader of a skeleton loop: the IV phi's non-latch incoming block.
fn preheader_of(f: &Function, sk: &SkeletonLoop) -> BlockId {
    match f.inst(sk.iv_phi) {
        Inst::Phi { incoming, .. } => incoming
            .iter()
            .find(|(b, _)| *b != sk.latch)
            .map(|(b, _)| *b)
            .expect("skeleton phi must have a preheader edge"),
        _ => unreachable!("iv_phi is a phi"),
    }
}

/// Replaces the loop with `tc` sequential body copies (IV = 0..tc-1).
fn full_unroll(f: &mut Function, sk: &SkeletonLoop, region: &[BlockId], tc: u64) {
    let region_rpo = region_in_rpo(f, region);
    let preheader = preheader_of(f, sk);
    let ty = f.value_type(sk.trip_count);

    // Clone back-to-front so each copy can point at its successor.
    let mut next_entry = sk.exit;
    for k in (0..tc).rev() {
        let seed = [(sk.iv_phi, Value::int(ty, k as i64))];
        next_entry = clone_region(
            f,
            &region_rpo,
            sk.body,
            &seed,
            sk.latch,
            next_entry,
            &format!("unroll{k}"),
        );
    }
    // The preheader now jumps straight into the first copy (or the exit for
    // a zero-trip loop); header/cond/body/latch become unreachable.
    if let Some(t) = f.block_mut(preheader).term.as_mut() {
        t.map_blocks(|b| if b == sk.header { next_entry } else { b });
    }
}

/// Partial unroll by factor `k` with a remainder loop:
///
/// ```text
/// preheader:  main_tc = tc / k;  rem_start = main_tc * k;  br main_header
/// main_header: g = phi [0, preheader], [g+1, main_latch]
///              base = g * k;  iv_0 = base;  iv_1 = base + 1; …
///              br main_cond
/// main_cond:   br (g <u main_tc), copy_0, main_exit
/// copy_j:      <body with iv := iv_j>            (j = 0 … k-1)
/// main_latch:  g = g + 1; br main_header         (unroll.disable)
/// main_exit:   br old_header                      (remainder loop)
/// old loop:    unchanged, but IV starts at rem_start; metadata disabled
/// ```
fn partial_unroll(f: &mut Function, sk: &SkeletonLoop, region: &[BlockId], k: u64) {
    let region_rpo = region_in_rpo(f, region);
    let preheader = preheader_of(f, sk);
    let ty = f.value_type(sk.trip_count);
    let k_const = Value::int(ty, k as i64);

    // Preheader computations.
    let (main_tc, rem_start) = {
        let mut b = IrBuilder::new(f);
        b.set_insert_point(preheader);
        let main_tc = b.udiv(sk.trip_count, k_const);
        let rem_start = b.mul(main_tc, k_const);
        (main_tc, rem_start)
    };

    // Main-loop skeleton.
    let (mheader, mcond, mlatch, mexit, g_phi, ivs) = {
        let mut b = IrBuilder::new(f);
        let mheader = b.create_block("main.header");
        let mcond = b.create_block("main.cond");
        let mlatch = b.create_block("main.latch");
        let mexit = b.create_block("main.exit");

        b.set_insert_point(mheader);
        let (g, g_phi) = b.phi(ty);
        b.add_phi_incoming(g_phi, preheader, Value::int(ty, 0));
        let base = b.mul(g, k_const);
        let ivs: Vec<Value> = (0..k)
            .map(|j| b.add(base, Value::int(ty, j as i64)))
            .collect();
        b.br(mcond);

        b.set_insert_point(mcond);
        let c = b.cmp(CmpPred::Ult, g, main_tc);
        // placeholder targets patched below (copy_0 unknown yet)
        b.cond_br(c, mexit, mexit);

        b.set_insert_point(mlatch);
        let g1 = b.add(g, Value::int(ty, 1));
        b.add_phi_incoming(g_phi, mlatch, g1);
        b.br_with_md(mheader, LoopMetadata::unroll(UnrollHint::Disable));

        b.set_insert_point(mexit);
        b.br(sk.header);
        (mheader, mcond, mlatch, mexit, g_phi, ivs)
    };
    let _ = g_phi;

    // Body copies, chained back-to-front into the main latch.
    let mut next_entry = mlatch;
    for j in (0..k).rev() {
        let seed = [(sk.iv_phi, ivs[j as usize])];
        next_entry = clone_region(
            f,
            &region_rpo,
            sk.body,
            &seed,
            sk.latch,
            next_entry,
            &format!("copy{j}"),
        );
    }
    // Patch the main cond's true edge to the first copy.
    if let Some(Terminator::CondBr { then_bb, .. }) = f.block_mut(mcond).term.as_mut() {
        *then_bb = next_entry;
    }

    // Redirect the preheader into the main loop.
    if let Some(t) = f.block_mut(preheader).term.as_mut() {
        t.map_blocks(|b| if b == sk.header { mheader } else { b });
    }

    // Remainder: the original loop, entered from main_exit with
    // IV = rem_start.
    if let Inst::Phi { incoming, .. } = f.inst_mut(sk.iv_phi) {
        for (from, val) in incoming.iter_mut() {
            if *from == preheader {
                *from = mexit;
                *val = rem_start;
            }
        }
    }
    disable(f, sk.latch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, IrType, Module};

    /// Builds `for (iv in 0..tc) sink(iv)` with the given metadata; returns
    /// the module. The loop is built in the canonical skeleton shape.
    fn loop_module(tc: Value, hint: UnrollHint) -> Module {
        let mut m = Module::new();
        let sink = m.intern("print_i64");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let preheader = b.create_block("preheader");
            let header = b.create_block("header");
            let cond = b.create_block("cond");
            let body = b.create_block("body");
            let latch = b.create_block("latch");
            let exit = b.create_block("exit");
            let after = b.create_block("after");
            b.br(preheader);
            b.set_insert_point(preheader);
            b.br(header);
            b.set_insert_point(header);
            let (iv, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, preheader, Value::i64(0));
            b.br(cond);
            b.set_insert_point(cond);
            let c = b.cmp(CmpPred::Ult, iv, tc);
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            b.call(sink, vec![iv], IrType::Void);
            b.br(latch);
            b.set_insert_point(latch);
            let next = b.add(iv, Value::i64(1));
            b.add_phi_incoming(phi, latch, next);
            b.br_with_md(header, LoopMetadata::unroll(hint));
            b.set_insert_point(exit);
            b.br(after);
            b.set_insert_point(after);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        m
    }

    fn run_collect(m: &Module) -> String {
        use omplt_interp_for_tests::*;
        interp_run(m)
    }

    /// Thin indirection so the midend unit tests can execute IR without a
    /// hard dependency in the library (dev-dependency only).
    mod omplt_interp_for_tests {
        use omplt_ir::Module;

        pub fn interp_run(m: &Module) -> String {
            let it = omplt_interp::Interpreter::new(m, omplt_interp::RuntimeConfig::default());
            it.run_main().expect("execution failed").stdout
        }
    }

    fn expected(tc: u64) -> String {
        (0..tc).map(|i| format!("{i}\n")).collect()
    }

    #[test]
    fn full_unroll_replaces_loop_and_preserves_semantics() {
        let mut m = loop_module(Value::i64(5), UnrollHint::Full);
        let before = run_collect(&m);
        let stats = loop_unroll(m.function_mut("main").unwrap());
        assert_eq!(stats.full, 1);
        let f = m.function("main").unwrap();
        assert_verified(f);
        assert_eq!(run_collect(&m), before);
        assert_eq!(run_collect(&m), expected(5));
        // No loop remains.
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert!(li.loops.is_empty(), "full unroll must leave no back edge");
    }

    #[test]
    fn full_unroll_zero_trip_count() {
        let mut m = loop_module(Value::i64(0), UnrollHint::Full);
        let stats = loop_unroll(m.function_mut("main").unwrap());
        assert_eq!(stats.full, 1);
        assert_eq!(run_collect(&m), "");
    }

    #[test]
    fn partial_unroll_preserves_semantics_with_remainder() {
        // 10 iterations, factor 4: main loop 2 groups, remainder 2.
        for tc in [0u64, 1, 3, 4, 10, 17] {
            let mut m = loop_module(Value::i64(tc as i64), UnrollHint::Count(4));
            let stats = loop_unroll(m.function_mut("main").unwrap());
            assert_eq!(stats.partial, 1, "tc={tc}");
            assert_verified(m.function("main").unwrap());
            assert_eq!(run_collect(&m), expected(tc), "tc={tc}");
        }
    }

    #[test]
    fn partial_unroll_has_two_loops_after() {
        // main loop + remainder loop (the paper's lst:remainder shape)
        let mut m = loop_module(Value::i64(10), UnrollHint::Count(4));
        loop_unroll(m.function_mut("main").unwrap());
        let f = m.function("main").unwrap();
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert_eq!(li.loops.len(), 2, "expected main + remainder loop");
    }

    #[test]
    fn runtime_trip_count_partial_unroll() {
        // trip count is a function argument: still unrollable partially.
        let mut m = Module::new();
        let sink = m.intern("print_i64");
        let mut f = Function::new("kernel", vec![IrType::I64], IrType::Void);
        {
            let mut b = IrBuilder::new(&mut f);
            let preheader = b.create_block("preheader");
            let header = b.create_block("header");
            let cond = b.create_block("cond");
            let body = b.create_block("body");
            let latch = b.create_block("latch");
            let exit = b.create_block("exit");
            b.br(preheader);
            b.set_insert_point(preheader);
            b.br(header);
            b.set_insert_point(header);
            let (iv, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, preheader, Value::i64(0));
            b.br(cond);
            b.set_insert_point(cond);
            let c = b.cmp(CmpPred::Ult, iv, Value::Arg(0));
            b.cond_br(c, body, exit);
            b.set_insert_point(body);
            b.call(sink, vec![iv], IrType::Void);
            b.br(latch);
            b.set_insert_point(latch);
            let next = b.add(iv, Value::i64(1));
            b.add_phi_incoming(phi, latch, next);
            b.br_with_md(header, LoopMetadata::unroll(UnrollHint::Count(3)));
            b.set_insert_point(exit);
            b.ret(None);
        }
        m.add_function(f);
        let stats = loop_unroll(m.function_mut("kernel").unwrap());
        assert_eq!(stats.partial, 1);
        assert_verified(m.function("kernel").unwrap());
        for n in [0i64, 1, 3, 7, 11] {
            let it = omplt_interp::Interpreter::new(&m, omplt_interp::RuntimeConfig::default());
            let ctx = omplt_interp::ThreadCtx::initial();
            it.call_by_name("kernel", vec![omplt_interp::RtVal::I(n)], &ctx)
                .unwrap();
            let out = std::mem::take(&mut *it.out.lock().unwrap());
            assert_eq!(out, expected(n as u64), "n={n}");
        }
    }

    #[test]
    fn heuristic_full_unrolls_small_constant_loops() {
        let mut m = loop_module(Value::i64(8), UnrollHint::Enable);
        let stats = loop_unroll(m.function_mut("main").unwrap());
        assert_eq!(stats.full, 1);
        assert_eq!(run_collect(&m), expected(8));
    }

    #[test]
    fn heuristic_picks_factor_for_runtime_tc() {
        // Runtime trip count & small body → factor 4.
        let mut m = loop_module(Value::i64(100), UnrollHint::Enable);
        // force the runtime-tc path by making the tc large (above the
        // full-unroll threshold? 100 > 64 → partial path)
        let stats = loop_unroll(m.function_mut("main").unwrap());
        assert_eq!(stats.partial, 1);
        assert_eq!(run_collect(&m), expected(100));
    }

    #[test]
    fn disable_metadata_is_respected() {
        let mut m = loop_module(Value::i64(5), UnrollHint::Disable);
        let stats = loop_unroll(m.function_mut("main").unwrap());
        assert_eq!(stats, UnrollStats::default());
        assert_eq!(run_collect(&m), expected(5));
    }
}
