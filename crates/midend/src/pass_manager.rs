//! A simple function-pass pipeline.

use crate::constfold::constant_fold;
use crate::loop_unroll::{loop_unroll, UnrollStats};
use crate::simplify_cfg::simplify_cfg;
use omplt_ir::{Function, Module};

/// Named function passes.
pub enum Pass {
    /// CFG cleanup.
    SimplifyCfg,
    /// Constant folding + DCE.
    ConstFold,
    /// The metadata-driven unroller.
    LoopUnroll,
}

/// Runs passes over every function of a module.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Pass>,
    /// Accumulated unroll statistics (for remarks/tests).
    pub unroll_stats: UnrollStats,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a pass.
    pub fn add(mut self, p: Pass) -> Self {
        self.passes.push(p);
        self
    }

    /// Runs the pipeline on one function.
    pub fn run_on_function(&mut self, f: &mut Function) {
        for p in &self.passes {
            match p {
                Pass::SimplifyCfg => {
                    simplify_cfg(f);
                }
                Pass::ConstFold => {
                    constant_fold(f);
                }
                Pass::LoopUnroll => {
                    let s = loop_unroll(f);
                    self.unroll_stats.full += s.full;
                    self.unroll_stats.partial += s.partial;
                    self.unroll_stats.declined += s.declined;
                    self.unroll_stats.skipped += s.skipped;
                }
            }
        }
    }

    /// Runs the pipeline on every function.
    pub fn run(&mut self, m: &mut Module) {
        for f in &mut m.functions {
            self.run_on_function(f);
        }
    }
}

/// The default `-O` pipeline used by the driver. `LoopUnroll` runs before
/// `SimplifyCfg`: block merging would otherwise collapse the canonical
/// skeleton (header+cond) that the unroller recognizes structurally.
/// Constant folding runs first so tile/collapse trip counts become
/// constants the full-unroll path can see.
pub fn run_default_pipeline(m: &mut Module) -> UnrollStats {
    let mut pm = PassManager::new()
        .add(Pass::ConstFold)
        .add(Pass::LoopUnroll)
        .add(Pass::ConstFold)
        .add(Pass::SimplifyCfg)
        .add(Pass::ConstFold);
    pm.run(m);
    pm.unroll_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, IrBuilder, IrType, Value};

    #[test]
    fn default_pipeline_is_safe_on_trivial_functions() {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        let stats = run_default_pipeline(&mut m);
        assert_eq!(stats, UnrollStats::default());
        assert_verified(m.function("main").unwrap());
    }

    #[test]
    fn pipeline_runs_all_functions() {
        let mut m = Module::new();
        for name in ["a", "b"] {
            let mut f = Function::new(name, vec![], IrType::Void);
            {
                let mut b = IrBuilder::new(&mut f);
                // dead arithmetic the pipeline should clean
                let e = b.insert_block();
                b.func_mut().push_inst(
                    e,
                    omplt_ir::Inst::Bin {
                        op: omplt_ir::BinOpKind::Add,
                        lhs: Value::i64(1),
                        rhs: Value::i64(2),
                    },
                );
                b.ret(None);
            }
            m.add_function(f);
        }
        run_default_pipeline(&mut m);
        for name in ["a", "b"] {
            assert_eq!(m.function(name).unwrap().num_insts(), 0);
        }
    }
}
