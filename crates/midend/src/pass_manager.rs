//! A simple function-pass pipeline.

use crate::constfold::constant_fold;
use crate::loop_unroll::{loop_unroll, UnrollStats};
use crate::simplify_cfg::simplify_cfg;
use crate::verify::verify_function_full;
use omplt_ir::{Function, Module, VerifyError};

/// Named function passes.
pub enum Pass {
    /// CFG cleanup.
    SimplifyCfg,
    /// Constant folding + DCE.
    ConstFold,
    /// The metadata-driven unroller.
    LoopUnroll,
}

impl Pass {
    fn name(&self) -> &'static str {
        match self {
            Pass::SimplifyCfg => "simplify-cfg",
            Pass::ConstFold => "const-fold",
            Pass::LoopUnroll => "loop-unroll",
        }
    }
}

/// Runs passes over every function of a module.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Pass>,
    /// Accumulated unroll statistics (for remarks/tests).
    pub unroll_stats: UnrollStats,
    /// When set (`--verify-each`), the structural + canonical-skeleton
    /// verifier runs after every pass; findings accumulate in
    /// [`PassManager::verify_errors`] tagged with the offending pass.
    pub verify_each: bool,
    /// Errors collected by the between-pass verifier.
    pub verify_errors: Vec<VerifyError>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a pass.
    pub fn add_pass(mut self, p: Pass) -> Self {
        self.passes.push(p);
        self
    }

    /// Enables between-pass verification (`--verify-each`).
    pub fn verify_each(mut self, on: bool) -> Self {
        self.verify_each = on;
        self
    }

    /// Runs the pipeline on one function.
    pub fn run_on_function(&mut self, f: &mut Function) {
        for p in &self.passes {
            {
                let _span = omplt_trace::span_detail("midend.pass", p.name());
                omplt_trace::count(&format!("midend.pass.{}.runs", p.name()), 1);
                match p {
                    Pass::SimplifyCfg => {
                        simplify_cfg(f);
                    }
                    Pass::ConstFold => {
                        constant_fold(f);
                    }
                    Pass::LoopUnroll => {
                        let s = loop_unroll(f);
                        self.unroll_stats.full += s.full;
                        self.unroll_stats.partial += s.partial;
                        self.unroll_stats.declined += s.declined;
                        self.unroll_stats.skipped += s.skipped;
                    }
                }
            }
            if self.verify_each {
                let _span = omplt_trace::span_detail("midend.verify-each", p.name());
                omplt_trace::count("midend.verify_each.checks", 1);
                for e in verify_function_full(f) {
                    self.verify_errors.push(VerifyError(format!(
                        "after {} on @{}: {}",
                        p.name(),
                        f.name,
                        e.0
                    )));
                }
            }
        }
    }

    /// Runs the pipeline on every function.
    pub fn run(&mut self, m: &mut Module) {
        // Fault site: COUNT selects which function's pipeline panics.
        for f in &mut m.functions {
            omplt_fault::panic_if_armed("midend.panic");
            self.run_on_function(f);
        }
    }
}

/// The default `-O` pipeline used by the driver. `LoopUnroll` runs before
/// `SimplifyCfg`: block merging would otherwise collapse the canonical
/// skeleton (header+cond) that the unroller recognizes structurally.
/// Constant folding runs first so tile/collapse trip counts become
/// constants the full-unroll path can see.
pub fn run_default_pipeline(m: &mut Module) -> UnrollStats {
    let mut pm = PassManager::new()
        .add_pass(Pass::ConstFold)
        .add_pass(Pass::LoopUnroll)
        .add_pass(Pass::ConstFold)
        .add_pass(Pass::SimplifyCfg)
        .add_pass(Pass::ConstFold);
    pm.run(m);
    pm.unroll_stats
}

/// The default pipeline with `--verify-each` semantics: the full verifier
/// (structural rules + canonical-skeleton invariants) runs after every
/// pass, and any findings come back alongside the stats.
pub fn run_default_pipeline_verified(m: &mut Module) -> (UnrollStats, Vec<VerifyError>) {
    let mut pm = PassManager::new()
        .add_pass(Pass::ConstFold)
        .add_pass(Pass::LoopUnroll)
        .add_pass(Pass::ConstFold)
        .add_pass(Pass::SimplifyCfg)
        .add_pass(Pass::ConstFold)
        .verify_each(true);
    pm.run(m);
    (pm.unroll_stats, pm.verify_errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, IrBuilder, IrType, Value};

    #[test]
    fn default_pipeline_is_safe_on_trivial_functions() {
        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        let stats = run_default_pipeline(&mut m);
        assert_eq!(stats, UnrollStats::default());
        assert_verified(m.function("main").unwrap());
    }

    #[test]
    fn verify_each_catches_corrupted_skeleton() {
        use omplt_ir::{CmpPred, Inst, Terminator};
        use omplt_ompirb::create_canonical_loop_skeleton;

        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::Void);
        let cli = {
            let mut b = IrBuilder::new(&mut f);
            let cli = create_canonical_loop_skeleton(&mut b, Value::i64(100), "k", true);
            b.set_insert_point(cli.body);
            b.br(cli.latch);
            b.set_insert_point(cli.after);
            b.ret(None);
            cli
        };
        // Corrupt the canonical skeleton: flip the loop condition's compare
        // predicate so the `is_canonical` loop no longer matches the shape.
        let cmp_id = f.block(cli.cond).insts[0];
        if let Inst::Cmp { pred, .. } = f.inst_mut(cmp_id) {
            *pred = CmpPred::Sgt;
        } else {
            panic!("cond block must start with the compare");
        }
        // Sanity: the loop back edge stays intact so the loop is still found.
        assert!(matches!(
            f.block(cli.latch).term,
            Some(Terminator::Br { target, .. }) if target == cli.header
        ));
        m.add_function(f);

        let (_, errs) = run_default_pipeline_verified(&mut m);
        assert!(
            errs.iter().any(|e| e.0.contains("no longer matches")),
            "verify-each must flag the corrupted skeleton: {errs:?}"
        );
    }

    #[test]
    fn verify_each_is_quiet_on_valid_loops() {
        use omplt_ompirb::create_canonical_loop;

        let mut m = Module::new();
        let mut f = Function::new("main", vec![], IrType::Void);
        {
            let mut b = IrBuilder::new(&mut f);
            create_canonical_loop(&mut b, Value::i64(16), "k", |_b, _iv| {});
            b.ret(None);
        }
        m.add_function(f);
        let (_, errs) = run_default_pipeline_verified(&mut m);
        assert_eq!(
            errs,
            vec![],
            "a pristine canonical loop must verify after every pass"
        );
    }

    #[test]
    fn pipeline_runs_all_functions() {
        let mut m = Module::new();
        for name in ["a", "b"] {
            let mut f = Function::new(name, vec![], IrType::Void);
            {
                let mut b = IrBuilder::new(&mut f);
                // dead arithmetic the pipeline should clean
                let e = b.insert_block();
                b.func_mut().push_inst(
                    e,
                    omplt_ir::Inst::Bin {
                        op: omplt_ir::BinOpKind::Add,
                        lhs: Value::i64(1),
                        rhs: Value::i64(2),
                    },
                );
                b.ret(None);
            }
            m.add_function(f);
        }
        run_default_pipeline(&mut m);
        for name in ["a", "b"] {
            assert_eq!(m.function(name).unwrap().num_insts(), 0);
        }
    }
}
