//! CFG simplification: sweeps the unreachable scaffolding that loop
//! transformations abandon (paper §3.2: transformations may "abandon the old
//! handles"), folds constant conditional branches, and merges straight-line
//! block chains.

use omplt_ir::{BlockData, BlockId, Function, Inst, Terminator, Value};

/// Runs CFG cleanup to a fixpoint. Returns true if anything changed.
pub fn simplify_cfg(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;
        local |= fold_const_branches(f);
        local |= remove_unreachable(f);
        local |= merge_chains(f);
        if !local {
            return changed;
        }
        changed = true;
    }
}

/// `br i1 true/false` → unconditional branch.
fn fold_const_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        if let Some(Terminator::CondBr {
            cond: Value::ConstInt { val, .. },
            then_bb,
            else_bb,
            loop_md,
        }) = &b.term
        {
            let target = if *val != 0 { *then_bb } else { *else_bb };
            b.term = Some(Terminator::Br {
                target,
                loop_md: *loop_md,
            });
            changed = true;
        }
    }
    changed
}

/// Drops blocks unreachable from the entry, remapping ids.
fn remove_unreachable(f: &mut Function) -> bool {
    let reachable = {
        let mut r = vec![false; f.blocks.len()];
        for b in f.reverse_postorder() {
            r[b.0 as usize] = true;
        }
        r
    };
    if reachable.iter().all(|&x| x) {
        return false;
    }
    // Build the remap table.
    let mut remap = vec![BlockId(u32::MAX); f.blocks.len()];
    let mut kept: Vec<BlockData> = Vec::new();
    let blocks = std::mem::take(&mut f.blocks);
    for (i, b) in blocks.into_iter().enumerate() {
        if reachable[i] {
            remap[i] = BlockId(kept.len() as u32);
            kept.push(b);
        }
    }
    f.blocks = kept;
    // Rewrite targets and phi incoming lists.
    let kept_ids: Vec<BlockId> = (0..f.blocks.len() as u32).map(BlockId).collect();
    for &bb in &kept_ids {
        if let Some(t) = f.blocks[bb.0 as usize].term.as_mut() {
            t.map_blocks(|old| remap[old.0 as usize]);
        }
        let insts = f.blocks[bb.0 as usize].insts.clone();
        for iid in insts {
            if let Inst::Phi { incoming, .. } = f.inst_mut(iid) {
                incoming.retain(|(from, _)| reachable[from.0 as usize]);
                for (from, _) in incoming.iter_mut() {
                    *from = remap[from.0 as usize];
                }
            }
        }
    }
    true
}

/// Merges `a → b` when `a` ends in an unconditional branch to `b`, `b` has
/// exactly one predecessor and no phis, and `a`'s branch carries no loop
/// metadata (latches must stay intact for the unroll pass).
fn merge_chains(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for ai in 0..f.blocks.len() {
            let a = BlockId(ai as u32);
            let Some(Terminator::Br {
                target: b,
                loop_md: None,
            }) = f.blocks[ai].term.clone()
            else {
                continue;
            };
            if b == a || preds[b.0 as usize].len() != 1 {
                continue;
            }
            let b_has_phi = f
                .block(b)
                .insts
                .first()
                .is_some_and(|&i| matches!(f.inst(i), Inst::Phi { .. }));
            if b_has_phi {
                continue;
            }
            // Splice b into a.
            let b_insts = std::mem::take(&mut f.blocks[b.0 as usize].insts);
            let b_term = f.blocks[b.0 as usize].term.take();
            f.blocks[b.0 as usize].term = Some(Terminator::Unreachable);
            f.blocks[ai].insts.extend(b_insts);
            f.blocks[ai].term = b_term;
            // Phis in b's former successors must re-point their edges to a.
            let succs: Vec<BlockId> = f.blocks[ai]
                .term
                .as_ref()
                .map_or_else(Vec::new, |t| t.successors());
            for s in succs {
                let insts = f.block(s).insts.clone();
                for iid in insts {
                    if let Inst::Phi { incoming, .. } = f.inst_mut(iid) {
                        for (from, _) in incoming.iter_mut() {
                            if *from == b {
                                *from = a;
                            }
                        }
                    }
                }
            }
            merged = true;
            changed = true;
            break; // predecessor lists are stale; recompute
        }
        if !merged {
            return changed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_ir::{assert_verified, IrBuilder, IrType};

    #[test]
    fn removes_unreachable_blocks() {
        let mut f = Function::new("t", vec![], IrType::Void);
        let dead = f.add_block("dead");
        f.block_mut(dead).term = Some(Terminator::Ret(None));
        f.block_mut(f.entry()).term = Some(Terminator::Ret(None));
        assert!(simplify_cfg(&mut f));
        assert_eq!(f.blocks.len(), 1);
        assert_verified(&f);
    }

    #[test]
    fn folds_constant_branches_then_sweeps() {
        let mut f = Function::new("t", vec![], IrType::Void);
        let taken = f.add_block("taken");
        let dead = f.add_block("dead");
        f.block_mut(f.entry()).term = Some(Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: taken,
            else_bb: dead,
            loop_md: None,
        });
        f.block_mut(taken).term = Some(Terminator::Ret(None));
        f.block_mut(dead).term = Some(Terminator::Ret(None));
        assert!(simplify_cfg(&mut f));
        // entry+taken merged, dead swept
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(
            f.block(f.entry()).term,
            Some(Terminator::Ret(None))
        ));
    }

    #[test]
    fn merges_straight_chains_but_keeps_latches() {
        use omplt_ir::{LoopMetadata, UnrollHint};
        let mut f = Function::new("t", vec![], IrType::Void);
        let mid = f.add_block("mid");
        let end = f.add_block("end");
        {
            let mut b = IrBuilder::new(&mut f);
            b.br(mid);
            b.set_insert_point(mid);
            let p = b.alloca(IrType::I64, 1, "x");
            b.store(Value::i64(1), p);
            // metadata-carrying branch must NOT be merged away
            b.br_with_md(end, LoopMetadata::unroll(UnrollHint::Count(2)));
            b.set_insert_point(end);
            b.ret(None);
        }
        simplify_cfg(&mut f);
        // entry+mid merged; end survives because the branch has metadata.
        assert_eq!(f.blocks.len(), 2);
        let t = f.block(f.entry()).term.as_ref().unwrap();
        assert!(t.loop_md().is_some(), "metadata must survive the merge");
        assert_verified(&f);
    }

    #[test]
    fn phi_edges_follow_merges() {
        let mut f = Function::new("t", vec![], IrType::Void);
        // entry → a → join ; entry → join   with a phi in join
        let a = f.add_block("a");
        let pre_join = f.add_block("pre_join");
        let join = f.add_block("join");
        {
            let mut b = IrBuilder::new(&mut f);
            let c_ptr = b.alloca(IrType::I1, 1, "c");
            let c = b.load(IrType::I1, c_ptr);
            b.cond_br(c, a, pre_join);
            b.set_insert_point(a);
            b.br(join);
            b.set_insert_point(pre_join);
            // pre_join is a trivial hop that will merge into... it has one
            // pred (entry) but entry's terminator is conditional, so it
            // stays; instead a → join may merge if join had one pred — it
            // has two. Build the phi and check edges stay valid.
            b.br(join);
            b.set_insert_point(join);
            let (_, phi) = b.phi(IrType::I64);
            b.add_phi_incoming(phi, a, Value::i64(1));
            b.add_phi_incoming(phi, pre_join, Value::i64(2));
            b.ret(None);
        }
        simplify_cfg(&mut f);
        assert_verified(&f);
    }
}
