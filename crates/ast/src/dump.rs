//! AST dumping in the visual style of `clang -Xclang -ast-dump`, which the
//! paper's listings use. Node labels follow Clang's (`OMPUnrollDirective`,
//! `VarDecl used i 'int' cinit`, `<<<NULL>>>` placeholders, …); pointer
//! addresses are intentionally omitted for reproducible golden tests.
//!
//! The default dump shows **only the syntactic AST** — shadow/transformed
//! subtrees are hidden exactly as in Clang. [`DumpOptions::show_transformed`]
//! additionally prints each transformation directive's shadow AST under a
//! `TransformedStmt` marker, and [`dump_transformed_only`] regenerates the
//! paper's Fig. lst:transformedast.

use crate::decl::{Decl, FunctionDecl, TranslationUnit, VarDecl, VarKind};
use crate::expr::{Expr, ExprKind, UnOp};
use crate::omp::{OMPClause, OMPClauseKind, OMPDirective};
use crate::stmt::{Attr, CapturedStmt, Stmt, StmtKind};
use crate::P;

/// Controls dump contents.
#[derive(Clone, Copy, Default)]
pub struct DumpOptions {
    /// Also print shadow (transformed) subtrees of `tile`/`unroll`
    /// directives.
    pub show_transformed: bool,
}

/// A rendered tree node.
struct DumpNode {
    label: String,
    children: Vec<DumpNode>,
}

impl DumpNode {
    fn leaf(label: impl Into<String>) -> DumpNode {
        DumpNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    fn new(label: impl Into<String>, children: Vec<DumpNode>) -> DumpNode {
        DumpNode {
            label: label.into(),
            children,
        }
    }

    fn render(&self, out: &mut String) {
        out.push_str(&self.label);
        out.push('\n');
        self.render_children(out, "");
    }

    fn render_children(&self, out: &mut String, prefix: &str) {
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            let last = i + 1 == n;
            out.push_str(prefix);
            out.push_str(if last { "`-" } else { "|-" });
            out.push_str(&c.label);
            out.push('\n');
            let child_prefix = format!("{}{}", prefix, if last { "  " } else { "| " });
            c.render_children(out, &child_prefix);
        }
    }
}

/// Dumps a statement subtree.
pub fn dump_stmt(s: &P<Stmt>, opts: DumpOptions) -> String {
    let mut out = String::new();
    stmt_node(s, opts).render(&mut out);
    out
}

/// Dumps an expression subtree.
pub fn dump_expr(e: &P<Expr>, opts: DumpOptions) -> String {
    let mut out = String::new();
    expr_node(e, opts).render(&mut out);
    out
}

/// Dumps a whole translation unit.
pub fn dump_translation_unit(tu: &TranslationUnit, opts: DumpOptions) -> String {
    let _span = omplt_trace::span("ast.dump");
    let mut children = Vec::new();
    for d in &tu.decls {
        children.push(decl_node(d, opts));
    }
    let mut out = String::new();
    DumpNode::new("TranslationUnitDecl", children).render(&mut out);
    out
}

/// Dumps only the shadow (transformed) AST of a transformation directive —
/// the view of the paper's Fig. lst:transformedast. Returns `None` if the
/// directive has no generated loop.
pub fn dump_transformed_only(d: &OMPDirective, opts: DumpOptions) -> Option<String> {
    let t = d.transformed.as_ref()?;
    Some(dump_stmt(t, opts))
}

fn decl_node(d: &Decl, opts: DumpOptions) -> DumpNode {
    match d {
        Decl::Var(v) => var_decl_node(v, opts),
        Decl::Function(f) => function_node(f, opts),
    }
}

fn function_node(f: &P<FunctionDecl>, opts: DumpOptions) -> DumpNode {
    let mut children: Vec<DumpNode> = f
        .params
        .iter()
        .map(|p| {
            DumpNode::leaf(format!(
                "ParmVarDecl{} {} '{}'",
                used_marker(p),
                p.name,
                p.ty.spelling()
            ))
        })
        .collect();
    if let Some(body) = f.body.borrow().as_ref() {
        children.push(stmt_node(body, opts));
    }
    DumpNode::new(
        format!("FunctionDecl {} '{}'", f.name, f.ty.spelling()),
        children,
    )
}

fn used_marker(v: &VarDecl) -> &'static str {
    if v.used.get() {
        " used"
    } else {
        ""
    }
}

fn var_decl_node(v: &P<VarDecl>, opts: DumpOptions) -> DumpNode {
    match v.kind {
        VarKind::ImplicitParam => DumpNode::leaf(format!(
            "ImplicitParamDecl implicit {} '{}'",
            v.name,
            v.ty.spelling()
        )),
        VarKind::Param => DumpNode::leaf(format!(
            "ParmVarDecl{} {} '{}'",
            used_marker(v),
            v.name,
            v.ty.spelling()
        )),
        _ => {
            let implicit = if v.implicit { " implicit" } else { "" };
            match &v.init {
                Some(init) => DumpNode::new(
                    format!(
                        "VarDecl{}{} {} '{}' cinit",
                        implicit,
                        used_marker(v),
                        v.name,
                        v.ty.spelling()
                    ),
                    vec![expr_node(init, opts)],
                ),
                None => DumpNode::leaf(format!(
                    "VarDecl{}{} {} '{}'",
                    implicit,
                    used_marker(v),
                    v.name,
                    v.ty.spelling()
                )),
            }
        }
    }
}

fn captured_stmt_node(c: &P<CapturedStmt>, opts: DumpOptions) -> DumpNode {
    let mut decl_children = vec![stmt_node(&c.decl.body, opts)];
    for p in &c.decl.params {
        decl_children.push(var_decl_node(p, opts));
    }
    // Clang also lists the captured VarDecls after the implicit params.
    for cap in &c.captures {
        decl_children.push(DumpNode::leaf(format!(
            "VarDecl used {} '{}'",
            cap.var.name,
            cap.var.ty.spelling()
        )));
    }
    let nothrow = if c.decl.nothrow { " nothrow" } else { "" };
    DumpNode::new(
        "CapturedStmt",
        vec![DumpNode::new(
            format!("CapturedDecl{nothrow}"),
            decl_children,
        )],
    )
}

fn null_placeholder() -> DumpNode {
    DumpNode::leaf("<<<NULL>>>")
}

fn stmt_node(s: &P<Stmt>, opts: DumpOptions) -> DumpNode {
    match &s.kind {
        StmtKind::Compound(stmts) => DumpNode::new(
            "CompoundStmt",
            stmts.iter().map(|c| stmt_node(c, opts)).collect(),
        ),
        StmtKind::Decl(decls) => DumpNode::new(
            "DeclStmt",
            decls.iter().map(|d| decl_node(d, opts)).collect(),
        ),
        StmtKind::Expr(e) => expr_node(e, opts),
        StmtKind::If { cond, then, els } => {
            let mut ch = vec![expr_node(cond, opts), stmt_node(then, opts)];
            if let Some(e) = els {
                ch.push(stmt_node(e, opts));
            }
            DumpNode::new("IfStmt", ch)
        }
        StmtKind::While { cond, body } => DumpNode::new(
            "WhileStmt",
            vec![expr_node(cond, opts), stmt_node(body, opts)],
        ),
        StmtKind::DoWhile { body, cond } => {
            DumpNode::new("DoStmt", vec![stmt_node(body, opts), expr_node(cond, opts)])
        }
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => {
            let ch = vec![
                init.as_ref()
                    .map_or_else(null_placeholder, |i| stmt_node(i, opts)),
                // Clang's ForStmt has a second slot for the C99 condition
                // declaration, always null in our subset.
                null_placeholder(),
                cond.as_ref()
                    .map_or_else(null_placeholder, |c| expr_node(c, opts)),
                inc.as_ref()
                    .map_or_else(null_placeholder, |i| expr_node(i, opts)),
                stmt_node(body, opts),
            ];
            DumpNode::new("ForStmt", ch)
        }
        StmtKind::CxxForRange(d) => DumpNode::new(
            "CXXForRangeStmt",
            vec![
                stmt_node(&d.range_stmt, opts),
                stmt_node(&d.begin_stmt, opts),
                stmt_node(&d.end_stmt, opts),
                expr_node(&d.cond, opts),
                expr_node(&d.inc, opts),
                stmt_node(&d.loop_var_stmt, opts),
                stmt_node(&d.body, opts),
            ],
        ),
        StmtKind::Return(e) => {
            DumpNode::new("ReturnStmt", e.iter().map(|e| expr_node(e, opts)).collect())
        }
        StmtKind::Break => DumpNode::leaf("BreakStmt"),
        StmtKind::Continue => DumpNode::leaf("ContinueStmt"),
        StmtKind::Null => DumpNode::leaf("NullStmt"),
        StmtKind::Attributed { attrs, sub } => {
            let mut ch: Vec<DumpNode> = attrs.iter().map(attr_node).collect();
            ch.push(stmt_node(sub, opts));
            DumpNode::new("AttributedStmt", ch)
        }
        StmtKind::Captured(c) => captured_stmt_node(c, opts),
        StmtKind::OMP(d) => omp_directive_node(d, opts),
        StmtKind::OMPCanonicalLoop(cl) => DumpNode::new(
            "OMPCanonicalLoop",
            vec![
                stmt_node(&cl.loop_stmt, opts),
                captured_stmt_node(&cl.distance_fn, opts),
                captured_stmt_node(&cl.loop_var_fn, opts),
                expr_node(&cl.loop_var_ref, opts),
            ],
        ),
    }
}

fn attr_node(a: &Attr) -> DumpNode {
    match a {
        Attr::LoopUnrollCount(n) => DumpNode::new(
            "LoopHintAttr Implicit loop UnrollCount Numeric",
            vec![DumpNode::leaf(format!("IntegerLiteral 'int' {n}"))],
        ),
        Attr::LoopUnrollFull => DumpNode::leaf("LoopHintAttr Implicit loop Unroll Full"),
        Attr::LoopUnrollEnable => DumpNode::leaf("LoopHintAttr Implicit loop Unroll Enable"),
    }
}

fn omp_directive_node(d: &P<OMPDirective>, opts: DumpOptions) -> DumpNode {
    let mut ch: Vec<DumpNode> = d.clauses.iter().map(|c| clause_node(c, opts)).collect();
    if let Some(a) = &d.associated {
        ch.push(stmt_node(a, opts));
    }
    if opts.show_transformed {
        if let Some(t) = &d.transformed {
            ch.push(DumpNode::new("TransformedStmt", vec![stmt_node(t, opts)]));
        }
    }
    DumpNode::new(d.kind.class_name(), ch)
}

fn clause_node(c: &P<OMPClause>, opts: DumpOptions) -> DumpNode {
    let mut ch = Vec::new();
    match &c.kind {
        OMPClauseKind::Schedule { kind, chunk } => {
            let label = format!("OMPScheduleClause {}", kind.name());
            if let Some(e) = chunk {
                ch.push(expr_node(e, opts));
            }
            return DumpNode::new(label, ch);
        }
        OMPClauseKind::Collapse(e)
        | OMPClauseKind::NumThreads(e)
        | OMPClauseKind::Grainsize(e)
        | OMPClauseKind::Safelen(e)
        | OMPClauseKind::Simdlen(e) => {
            ch.push(expr_node(e, opts));
        }
        OMPClauseKind::Partial(f) => {
            if let Some(e) = f {
                ch.push(expr_node(e, opts));
            }
        }
        OMPClauseKind::Sizes(es)
        | OMPClauseKind::Permutation(es)
        | OMPClauseKind::Private(es)
        | OMPClauseKind::FirstPrivate(es)
        | OMPClauseKind::Shared(es) => {
            for e in es {
                ch.push(expr_node(e, opts));
            }
        }
        OMPClauseKind::Reduction { op, vars } => {
            let mut ch = Vec::new();
            for e in vars {
                ch.push(expr_node(e, opts));
            }
            return DumpNode::new(format!("OMPReductionClause '{}'", op.name()), ch);
        }
        OMPClauseKind::Full | OMPClauseKind::Nowait => {}
    }
    DumpNode::new(c.kind.class_name(), ch)
}

#[allow(clippy::only_used_in_recursion)] // `opts` mirrors stmt_node's signature
fn expr_node(e: &P<Expr>, opts: DumpOptions) -> DumpNode {
    let ty = e.ty.spelling();
    match &e.kind {
        ExprKind::IntegerLiteral(v) => DumpNode::leaf(format!("IntegerLiteral '{ty}' {v}")),
        ExprKind::FloatingLiteral(v) => DumpNode::leaf(format!("FloatingLiteral '{ty}' {v:e}")),
        ExprKind::BoolLiteral(b) => DumpNode::leaf(format!("CXXBoolLiteralExpr '{ty}' {b}")),
        ExprKind::StringLiteral(s) => DumpNode::leaf(format!("StringLiteral '{ty}' \"{s}\"")),
        ExprKind::DeclRef(v) => DumpNode::leaf(format!(
            "DeclRefExpr '{ty}' lvalue Var '{}' '{}'",
            v.name,
            v.ty.spelling()
        )),
        ExprKind::Unary(op, s) => {
            let fixity = if op.is_postfix() { "postfix" } else { "prefix" };
            DumpNode::new(
                format!("UnaryOperator '{ty}' {fixity} '{}'", op.spelling()),
                vec![expr_node(s, opts)],
            )
        }
        ExprKind::Binary(op, l, r) => {
            let class = if op.compound_base().is_some() {
                "CompoundAssignOperator"
            } else {
                "BinaryOperator"
            };
            DumpNode::new(
                format!("{class} '{ty}' '{}'", op.spelling()),
                vec![expr_node(l, opts), expr_node(r, opts)],
            )
        }
        ExprKind::Call { callee, args } => {
            let mut ch = vec![DumpNode::new(
                format!(
                    "ImplicitCastExpr '{} (*)' <FunctionToPointerDecay>",
                    callee.ty.spelling()
                ),
                vec![DumpNode::leaf(format!(
                    "DeclRefExpr '{}' Function '{}'",
                    callee.ty.spelling(),
                    callee.name
                ))],
            )];
            for a in args {
                ch.push(expr_node(a, opts));
            }
            DumpNode::new(format!("CallExpr '{ty}'"), ch)
        }
        ExprKind::ImplicitCast(k, s) => DumpNode::new(
            format!("ImplicitCastExpr '{ty}' <{k:?}>"),
            vec![expr_node(s, opts)],
        ),
        ExprKind::ExplicitCast(k, s) => DumpNode::new(
            format!("CStyleCastExpr '{ty}' <{k:?}>"),
            vec![expr_node(s, opts)],
        ),
        ExprKind::Paren(s) => DumpNode::new(format!("ParenExpr '{ty}'"), vec![expr_node(s, opts)]),
        ExprKind::ArraySubscript(b, i) => DumpNode::new(
            format!("ArraySubscriptExpr '{ty}'"),
            vec![expr_node(b, opts), expr_node(i, opts)],
        ),
        ExprKind::Conditional(c, t, f) => DumpNode::new(
            format!("ConditionalOperator '{ty}'"),
            vec![expr_node(c, opts), expr_node(t, opts), expr_node(f, opts)],
        ),
        ExprKind::ConstantExpr { value, sub } => DumpNode::new(
            format!("ConstantExpr '{ty}'"),
            vec![
                DumpNode::leaf(format!("value: Int {value}")),
                expr_node(sub, opts),
            ],
        ),
        ExprKind::SizeOf(t) => DumpNode::leaf(format!(
            "UnaryExprOrTypeTraitExpr '{ty}' sizeof '{}'",
            t.spelling()
        )),
    }
}

/// Marks `UnOp` spelling usable in labels (silence unused warning paths).
#[allow(dead_code)]
fn _unop_spelling(op: UnOp) -> &'static str {
    op.spelling()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ASTContext;
    use crate::expr::BinOp;
    use crate::omp::{OMPClauseKind, OMPDirective, OMPDirectiveKind};
    use omplt_source::SourceLocation;

    fn ctx_loop(ctx: &ASTContext) -> P<Stmt> {
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(7, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(17, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(3, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        )
    }

    #[test]
    fn for_dump_shape() {
        let ctx = ASTContext::new();
        let d = dump_stmt(&ctx_loop(&ctx), DumpOptions::default());
        assert!(d.starts_with("ForStmt\n"), "{d}");
        assert!(d.contains("|-DeclStmt"), "{d}");
        assert!(d.contains("VarDecl used i 'int' cinit"), "{d}");
        assert!(d.contains("IntegerLiteral 'int' 7"), "{d}");
        assert!(d.contains("<<<NULL>>>"), "{d}");
        assert!(d.contains("CompoundAssignOperator 'int' '+='"), "{d}");
        assert!(d.contains("`-NullStmt"), "{d}");
    }

    #[test]
    fn tree_connectors_are_well_formed() {
        let ctx = ASTContext::new();
        let d = dump_stmt(&ctx_loop(&ctx), DumpOptions::default());
        for line in d.lines().skip(1) {
            let trimmed = line.trim_start_matches(['|', ' ', '`']);
            assert!(
                line.contains("|-") || line.contains("`-") || trimmed.is_empty(),
                "line without connector: {line:?}"
            );
        }
    }

    #[test]
    fn shadow_ast_hidden_by_default_shown_on_request() {
        let ctx = ASTContext::new();
        let assoc = ctx_loop(&ctx);
        let shadow = ctx_loop(&ctx);
        let mut dir = OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![OMPClause::new(
                OMPClauseKind::Partial(None),
                SourceLocation::INVALID,
            )],
            Some(assoc),
            SourceLocation::INVALID,
        );
        dir.transformed = Some(shadow);
        let s = Stmt::new(StmtKind::OMP(P::new(dir)), SourceLocation::INVALID);

        let plain = dump_stmt(&s, DumpOptions::default());
        assert!(plain.contains("OMPUnrollDirective"));
        assert!(plain.contains("OMPPartialClause"));
        assert!(!plain.contains("TransformedStmt"), "{plain}");

        let full = dump_stmt(
            &s,
            DumpOptions {
                show_transformed: true,
            },
        );
        assert!(full.contains("TransformedStmt"), "{full}");
    }

    #[test]
    fn constant_expr_dump_matches_paper_listing() {
        // Paper lst:astdump_shadowast: OMPPartialClause with ConstantExpr
        // child that has `value: Int 2` and the IntegerLiteral.
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let lit = ctx.int_lit(2, ctx.int(), loc);
        let ce = Expr::rvalue(
            ExprKind::ConstantExpr { value: 2, sub: lit },
            ctx.int(),
            loc,
        );
        let d = dump_expr(&ce, DumpOptions::default());
        assert!(d.starts_with("ConstantExpr 'int'\n"), "{d}");
        assert!(d.contains("|-value: Int 2"), "{d}");
        assert!(d.contains("`-IntegerLiteral 'int' 2"), "{d}");
    }

    #[test]
    fn loop_hint_attr_dump() {
        let ctx = ASTContext::new();
        let s = Stmt::new(
            StmtKind::Attributed {
                attrs: vec![Attr::LoopUnrollCount(2)],
                sub: ctx_loop(&ctx),
            },
            SourceLocation::INVALID,
        );
        let d = dump_stmt(&s, DumpOptions::default());
        assert!(d.starts_with("AttributedStmt\n"), "{d}");
        assert!(
            d.contains("LoopHintAttr Implicit loop UnrollCount Numeric"),
            "{d}"
        );
        assert!(d.contains("IntegerLiteral 'int' 2"), "{d}");
    }
}
