//! The `Type` hierarchy — one of the four unrelated AST node hierarchies
//! (paper: "there is no common base class for AST nodes").

use crate::P;
use std::fmt;

/// Bit width of an integer type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum IntWidth {
    W8,
    W16,
    W32,
    W64,
}

impl IntWidth {
    /// Width in bits.
    pub fn bits(self) -> u32 {
        match self {
            IntWidth::W8 => 8,
            IntWidth::W16 => 16,
            IntWidth::W32 => 32,
            IntWidth::W64 => 64,
        }
    }

    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        (self.bits() / 8) as u64
    }
}

/// The structural kind of a type.
#[derive(Clone, PartialEq, Debug)]
pub enum TypeKind {
    /// `void`.
    Void,
    /// `bool` / `_Bool`.
    Bool,
    /// Any integer type (char, short, int, long, size_t, …).
    Int {
        /// Bit width.
        width: IntWidth,
        /// Signedness.
        signed: bool,
    },
    /// `float` (32-bit).
    Float,
    /// `double` (64-bit).
    Double,
    /// `T *`.
    Pointer(P<Type>),
    /// `T[len]` with a compile-time length.
    Array(P<Type>, u64),
    /// A function type.
    Function {
        /// Return type.
        ret: P<Type>,
        /// Parameter types.
        params: Vec<P<Type>>,
    },
}

/// A type node. Types compare structurally.
#[derive(Clone, PartialEq, Debug)]
pub struct Type {
    /// The structural kind.
    pub kind: TypeKind,
}

impl Type {
    /// Wraps a kind into a counted pointer.
    pub fn new(kind: TypeKind) -> P<Type> {
        P::new(Type { kind })
    }

    /// True for `void`.
    pub fn is_void(&self) -> bool {
        self.kind == TypeKind::Void
    }

    /// True for any integer type (not bool).
    pub fn is_integer(&self) -> bool {
        matches!(self.kind, TypeKind::Int { .. })
    }

    /// True for bool or integers.
    pub fn is_integral_or_bool(&self) -> bool {
        matches!(self.kind, TypeKind::Int { .. } | TypeKind::Bool)
    }

    /// True for float/double.
    pub fn is_floating(&self) -> bool {
        matches!(self.kind, TypeKind::Float | TypeKind::Double)
    }

    /// True for integer, bool or floating types.
    pub fn is_arithmetic(&self) -> bool {
        self.is_integral_or_bool() || self.is_floating()
    }

    /// True for pointers.
    pub fn is_pointer(&self) -> bool {
        matches!(self.kind, TypeKind::Pointer(_))
    }

    /// True for arithmetic or pointer types.
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || self.is_pointer()
    }

    /// Signedness of an integer type; `false` for everything else.
    pub fn is_signed_int(&self) -> bool {
        matches!(self.kind, TypeKind::Int { signed: true, .. })
    }

    /// True for unsigned integer types.
    pub fn is_unsigned_int(&self) -> bool {
        matches!(self.kind, TypeKind::Int { signed: false, .. })
    }

    /// Integer bit width, if an integer.
    pub fn int_width(&self) -> Option<IntWidth> {
        match self.kind {
            TypeKind::Int { width, .. } => Some(width),
            _ => None,
        }
    }

    /// Pointee type, if a pointer.
    pub fn pointee(&self) -> Option<&P<Type>> {
        match &self.kind {
            TypeKind::Pointer(t) => Some(t),
            _ => None,
        }
    }

    /// Element type, if an array.
    pub fn element(&self) -> Option<&P<Type>> {
        match &self.kind {
            TypeKind::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Size in bytes under the interpreter/codegen ABI (LP64-like).
    pub fn size_of(&self) -> u64 {
        match &self.kind {
            TypeKind::Void => 0,
            TypeKind::Bool => 1,
            TypeKind::Int { width, .. } => width.bytes(),
            TypeKind::Float => 4,
            TypeKind::Double => 8,
            TypeKind::Pointer(_) => 8,
            TypeKind::Array(el, n) => el.size_of() * n,
            TypeKind::Function { .. } => 8,
        }
    }

    /// Alignment in bytes (== scalar size; arrays align to their element).
    pub fn align_of(&self) -> u64 {
        match &self.kind {
            TypeKind::Array(el, _) => el.align_of(),
            TypeKind::Void => 1,
            _ => self.size_of().max(1),
        }
    }

    /// The C spelling used in AST dumps (e.g. `'int'`, `'double *'`).
    pub fn spelling(&self) -> String {
        match &self.kind {
            TypeKind::Void => "void".into(),
            TypeKind::Bool => "bool".into(),
            TypeKind::Int {
                width: IntWidth::W8,
                signed: true,
            } => "char".into(),
            TypeKind::Int {
                width: IntWidth::W8,
                signed: false,
            } => "unsigned char".into(),
            TypeKind::Int {
                width: IntWidth::W16,
                signed: true,
            } => "short".into(),
            TypeKind::Int {
                width: IntWidth::W16,
                signed: false,
            } => "unsigned short".into(),
            TypeKind::Int {
                width: IntWidth::W32,
                signed: true,
            } => "int".into(),
            TypeKind::Int {
                width: IntWidth::W32,
                signed: false,
            } => "unsigned int".into(),
            TypeKind::Int {
                width: IntWidth::W64,
                signed: true,
            } => "long".into(),
            TypeKind::Int {
                width: IntWidth::W64,
                signed: false,
            } => "unsigned long".into(),
            TypeKind::Float => "float".into(),
            TypeKind::Double => "double".into(),
            TypeKind::Pointer(t) => format!("{} *", t.spelling()),
            TypeKind::Array(t, n) => format!("{}[{}]", t.spelling(), n),
            TypeKind::Function { ret, params } => {
                let ps: Vec<String> = params.iter().map(|p| p.spelling()).collect();
                format!("{} ({})", ret.spelling(), ps.join(", "))
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spelling())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int() -> P<Type> {
        Type::new(TypeKind::Int {
            width: IntWidth::W32,
            signed: true,
        })
    }

    #[test]
    fn predicates() {
        let i = int();
        assert!(i.is_integer() && i.is_signed_int() && i.is_arithmetic() && i.is_scalar());
        let d = Type::new(TypeKind::Double);
        assert!(d.is_floating() && !d.is_integer());
        let p = Type::new(TypeKind::Pointer(int()));
        assert!(p.is_pointer() && p.is_scalar() && !p.is_arithmetic());
        assert_eq!(p.pointee().unwrap().spelling(), "int");
    }

    #[test]
    fn sizes_lp64() {
        assert_eq!(int().size_of(), 4);
        assert_eq!(Type::new(TypeKind::Pointer(int())).size_of(), 8);
        assert_eq!(Type::new(TypeKind::Array(int(), 10)).size_of(), 40);
        assert_eq!(
            Type::new(TypeKind::Int {
                width: IntWidth::W64,
                signed: false
            })
            .size_of(),
            8
        );
        assert_eq!(Type::new(TypeKind::Bool).size_of(), 1);
    }

    #[test]
    fn spellings() {
        assert_eq!(int().spelling(), "int");
        assert_eq!(
            Type::new(TypeKind::Pointer(Type::new(TypeKind::Double))).spelling(),
            "double *"
        );
        assert_eq!(Type::new(TypeKind::Array(int(), 4)).spelling(), "int[4]");
        let f = Type::new(TypeKind::Function {
            ret: Type::new(TypeKind::Void),
            params: vec![int()],
        });
        assert_eq!(f.spelling(), "void (int)");
    }

    #[test]
    fn structural_equality() {
        assert_eq!(*int(), *int());
        assert_ne!(
            *int(),
            *Type::new(TypeKind::Int {
                width: IntWidth::W32,
                signed: false
            })
        );
    }

    #[test]
    fn array_alignment_follows_element() {
        let a = Type::new(TypeKind::Array(Type::new(TypeKind::Double), 3));
        assert_eq!(a.align_of(), 8);
        assert_eq!(a.size_of(), 24);
    }
}
