//! The `Decl` hierarchy: variables, parameters, functions, and the
//! `CapturedDecl` "lambda function definition" the paper describes as the
//! implementation vehicle for outlining (§1.2).

use crate::stmt::Stmt;
use crate::ty::Type;
use crate::P;
use omplt_source::SourceLocation;
use std::cell::{Cell, RefCell};

/// Stable identity of a declaration. Two `DeclRefExpr`s refer to the same
/// variable iff their `DeclId`s are equal (the AST may share the `VarDecl`
/// node itself or not — Clang's capture nodes are "in fact only a reference
/// to the declaration in the for-loop's init-statement").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct DeclId(pub u32);

/// Storage/flavor of a variable declaration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// An ordinary local variable.
    Local,
    /// A function parameter.
    Param,
    /// A compiler-introduced parameter of an outlined function, e.g.
    /// `.global_tid.` (printed as `ImplicitParamDecl` in dumps).
    ImplicitParam,
    /// A file-scope variable.
    Global,
}

/// A variable (or parameter) declaration.
#[derive(Debug)]
pub struct VarDecl {
    /// Stable identity.
    pub id: DeclId,
    /// Source name; compiler-generated variables use dotted/internal names
    /// such as `.unrolled.iv.i` or `__begin` that cannot collide with user
    /// identifiers.
    pub name: String,
    /// Declared type.
    pub ty: P<Type>,
    /// Initializer, if any.
    pub init: Option<P<Expr>>,
    /// Where the declaration appeared.
    pub loc: SourceLocation,
    /// Storage flavor.
    pub kind: VarKind,
    /// True for nodes invented by the compiler (not written in source).
    pub implicit: bool,
    /// True when the variable is a C++-style reference binding (the loop
    /// user variable of `for (T &x : c)`): its storage holds the referent's
    /// address and every access indirects through it.
    pub by_ref: bool,
    /// Whether any `DeclRefExpr` refers to this declaration ("used" marker in
    /// Clang dumps). `Cell` because use-marking happens after construction —
    /// one of the AST's few sanctioned mutations.
    pub used: Cell<bool>,
}

use crate::expr::Expr;

impl VarDecl {
    /// True for the implicit-parameter flavor.
    pub fn is_implicit_param(&self) -> bool {
        self.kind == VarKind::ImplicitParam
    }
}

/// A function declaration (and definition, once the body is attached).
#[derive(Debug)]
pub struct FunctionDecl {
    /// Stable identity.
    pub id: DeclId,
    /// Function name.
    pub name: String,
    /// Full function type.
    pub ty: P<Type>,
    /// Parameter declarations.
    pub params: Vec<P<VarDecl>>,
    /// Definition body. `RefCell` because the `FunctionDecl` must exist while
    /// its own body is being parsed (recursive calls resolve against it) —
    /// the other sanctioned mutation.
    pub body: RefCell<Option<P<Stmt>>>,
    /// Where the declaration appeared.
    pub loc: SourceLocation,
}

impl FunctionDecl {
    /// Return type (panics on non-function type — construction guarantees it).
    pub fn return_type(&self) -> P<Type> {
        match &self.ty.kind {
            crate::ty::TypeKind::Function { ret, .. } => P::clone(ret),
            _ => unreachable!("FunctionDecl with non-function type"),
        }
    }

    /// Whether a body has been attached.
    pub fn is_definition(&self) -> bool {
        self.body.borrow().is_some()
    }
}

/// The "lambda function definition" that a `CapturedStmt` declares
/// (paper §1.2: re-purposing the C++ lambda / ObjC block implementation to
/// make outlining into another function easy).
#[derive(Debug)]
pub struct CapturedDecl {
    /// Implicit parameters of the outlined function. For an OpenMP outlined
    /// region these are `.global_tid.`, `.bound_tid.` and `__context`; for
    /// the canonical-loop helper lambdas they are the result slot (and the
    /// logical iteration number for the loop-value function).
    pub params: Vec<P<VarDecl>>,
    /// The captured body.
    pub body: P<Stmt>,
    /// `nothrow` marker (always true here; printed in dumps for fidelity).
    pub nothrow: bool,
}

/// A declaration of any kind (the payload of `DeclStmt` and of the
/// translation unit).
#[derive(Clone, Debug)]
pub enum Decl {
    /// A variable.
    Var(P<VarDecl>),
    /// A function.
    Function(P<FunctionDecl>),
}

impl Decl {
    /// The declaration's identity.
    pub fn id(&self) -> DeclId {
        match self {
            Decl::Var(v) => v.id,
            Decl::Function(f) => f.id,
        }
    }

    /// The declaration's name.
    pub fn name(&self) -> &str {
        match self {
            Decl::Var(v) => &v.name,
            Decl::Function(f) => &f.name,
        }
    }
}

/// The kind of a [`Decl`], for visitors/statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeclKind {
    /// [`Decl::Var`] with [`VarKind::Local`]/[`VarKind::Global`].
    Var,
    /// [`Decl::Var`] with [`VarKind::Param`]/[`VarKind::ImplicitParam`].
    Param,
    /// [`Decl::Function`].
    Function,
}

impl Decl {
    /// Classifies the declaration.
    pub fn kind(&self) -> DeclKind {
        match self {
            Decl::Var(v) => match v.kind {
                VarKind::Param | VarKind::ImplicitParam => DeclKind::Param,
                _ => DeclKind::Var,
            },
            Decl::Function(_) => DeclKind::Function,
        }
    }
}

/// A whole translation unit.
#[derive(Debug, Default)]
pub struct TranslationUnit {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
}

impl TranslationUnit {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&P<FunctionDecl>> {
        self.decls.iter().find_map(|d| match d {
            Decl::Function(f) if f.name == name => Some(f),
            _ => None,
        })
    }
}
