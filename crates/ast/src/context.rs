//! `ASTContext`: allocation context for AST nodes — fresh declaration
//! identities, interned builtin types, synthetic-name generation, and
//! node-creation statistics.

use crate::decl::{DeclId, VarDecl, VarKind};
use crate::expr::{BinOp, CastKind, Expr, ExprKind, UnOp};
use crate::ty::{IntWidth, Type, TypeKind};
use crate::P;
use omplt_source::SourceLocation;
use std::cell::Cell;

/// Per-compilation AST context.
pub struct ASTContext {
    next_decl: Cell<u32>,
    next_synth_name: Cell<u32>,
    // Interned builtin types.
    ty_void: P<Type>,
    ty_bool: P<Type>,
    ty_char: P<Type>,
    ty_short: P<Type>,
    ty_int: P<Type>,
    ty_uint: P<Type>,
    ty_long: P<Type>,
    ty_ulong: P<Type>,
    ty_float: P<Type>,
    ty_double: P<Type>,
}

impl Default for ASTContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ASTContext {
    /// Creates a fresh context.
    pub fn new() -> Self {
        let int = |width, signed| Type::new(TypeKind::Int { width, signed });
        ASTContext {
            next_decl: Cell::new(0),
            next_synth_name: Cell::new(0),
            ty_void: Type::new(TypeKind::Void),
            ty_bool: Type::new(TypeKind::Bool),
            ty_char: int(IntWidth::W8, true),
            ty_short: int(IntWidth::W16, true),
            ty_int: int(IntWidth::W32, true),
            ty_uint: int(IntWidth::W32, false),
            ty_long: int(IntWidth::W64, true),
            ty_ulong: int(IntWidth::W64, false),
            ty_float: Type::new(TypeKind::Float),
            ty_double: Type::new(TypeKind::Double),
        }
    }

    /// Allocates a fresh declaration identity.
    pub fn fresh_decl_id(&self) -> DeclId {
        let id = self.next_decl.get();
        self.next_decl.set(id + 1);
        DeclId(id)
    }

    /// Produces a unique internal name with the given stem, e.g.
    /// `fresh_name(".capture_expr.")`.
    pub fn fresh_name(&self, stem: &str) -> String {
        let n = self.next_synth_name.get();
        self.next_synth_name.set(n + 1);
        format!("{stem}{n}")
    }

    /// `void`.
    pub fn void(&self) -> P<Type> {
        P::clone(&self.ty_void)
    }

    /// `bool`.
    pub fn bool_ty(&self) -> P<Type> {
        P::clone(&self.ty_bool)
    }

    /// `char`.
    pub fn char_ty(&self) -> P<Type> {
        P::clone(&self.ty_char)
    }

    /// `short`.
    pub fn short_ty(&self) -> P<Type> {
        P::clone(&self.ty_short)
    }

    /// `int`.
    pub fn int(&self) -> P<Type> {
        P::clone(&self.ty_int)
    }

    /// `unsigned int`.
    pub fn uint(&self) -> P<Type> {
        P::clone(&self.ty_uint)
    }

    /// `long` (64-bit).
    pub fn long_ty(&self) -> P<Type> {
        P::clone(&self.ty_long)
    }

    /// `unsigned long` — also `size_t` under the LP64 ABI. The paper's
    /// logical iteration counter type.
    pub fn size_t(&self) -> P<Type> {
        P::clone(&self.ty_ulong)
    }

    /// `ptrdiff_t` (== `long`).
    pub fn ptrdiff_t(&self) -> P<Type> {
        P::clone(&self.ty_long)
    }

    /// `float`.
    pub fn float_ty(&self) -> P<Type> {
        P::clone(&self.ty_float)
    }

    /// `double`.
    pub fn double_ty(&self) -> P<Type> {
        P::clone(&self.ty_double)
    }

    /// An integer type of the given width/signedness (interned for common
    /// ones).
    pub fn int_ty(&self, width: IntWidth, signed: bool) -> P<Type> {
        match (width, signed) {
            (IntWidth::W8, true) => self.char_ty(),
            (IntWidth::W16, true) => self.short_ty(),
            (IntWidth::W32, true) => self.int(),
            (IntWidth::W32, false) => self.uint(),
            (IntWidth::W64, true) => self.long_ty(),
            (IntWidth::W64, false) => self.size_t(),
            _ => Type::new(TypeKind::Int { width, signed }),
        }
    }

    /// `T *`.
    pub fn pointer_to(&self, t: P<Type>) -> P<Type> {
        Type::new(TypeKind::Pointer(t))
    }

    /// The unsigned integer type of the same width as `t` — the paper's rule
    /// for the logical iteration counter ("we always use an unsigned logical
    /// iteration counter" with "the precision of the type of the subtract
    /// expression").
    pub fn unsigned_of_same_width(&self, t: &Type) -> P<Type> {
        match t.kind {
            TypeKind::Int { width, .. } => self.int_ty(width, false),
            TypeKind::Pointer(_) => self.size_t(),
            _ => self.size_t(),
        }
    }

    // ---- convenience node factories (used heavily by Sema/transforms) ----

    /// A local variable declaration.
    pub fn make_var(
        &self,
        name: impl Into<String>,
        ty: P<Type>,
        init: Option<P<Expr>>,
        loc: SourceLocation,
    ) -> P<VarDecl> {
        P::new(VarDecl {
            id: self.fresh_decl_id(),
            name: name.into(),
            ty,
            init,
            loc,
            kind: VarKind::Local,
            implicit: false,
            by_ref: false,
            used: Cell::new(false),
        })
    }

    /// A compiler-generated local variable (`implicit` flag set; dumps show
    /// it only in transformed subtrees).
    pub fn make_implicit_var(
        &self,
        name: impl Into<String>,
        ty: P<Type>,
        init: Option<P<Expr>>,
        loc: SourceLocation,
    ) -> P<VarDecl> {
        P::new(VarDecl {
            id: self.fresh_decl_id(),
            name: name.into(),
            ty,
            init,
            loc,
            kind: VarKind::Local,
            implicit: true,
            by_ref: false,
            used: Cell::new(true),
        })
    }

    /// An implicit parameter (`.global_tid.` and friends).
    pub fn make_implicit_param(&self, name: impl Into<String>, ty: P<Type>) -> P<VarDecl> {
        P::new(VarDecl {
            id: self.fresh_decl_id(),
            name: name.into(),
            ty,
            init: None,
            loc: SourceLocation::INVALID,
            kind: VarKind::ImplicitParam,
            implicit: true,
            by_ref: false,
            used: Cell::new(true),
        })
    }

    /// An integer literal of type `ty`.
    pub fn int_lit(&self, v: i128, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        Expr::rvalue(ExprKind::IntegerLiteral(v), ty, loc)
    }

    /// An lvalue reference to `var`, marking it used.
    pub fn decl_ref(&self, var: &P<VarDecl>, loc: SourceLocation) -> P<Expr> {
        var.used.set(true);
        Expr::lvalue(ExprKind::DeclRef(P::clone(var)), P::clone(&var.ty), loc)
    }

    /// An rvalue read of `var` (`DeclRef` wrapped in `LValueToRValue`).
    pub fn read_var(&self, var: &P<VarDecl>, loc: SourceLocation) -> P<Expr> {
        let r = self.decl_ref(var, loc);
        let ty = P::clone(&r.ty);
        Expr::rvalue(ExprKind::ImplicitCast(CastKind::LValueToRValue, r), ty, loc)
    }

    /// A binary arithmetic/comparison node with explicit result type.
    pub fn binary(
        &self,
        op: BinOp,
        l: P<Expr>,
        r: P<Expr>,
        ty: P<Type>,
        loc: SourceLocation,
    ) -> P<Expr> {
        Expr::rvalue(ExprKind::Binary(op, l, r), ty, loc)
    }

    /// `lhs = rhs` (assignment yields an lvalue in C++, an rvalue in C; we
    /// follow C).
    pub fn assign(&self, lhs: P<Expr>, rhs: P<Expr>, loc: SourceLocation) -> P<Expr> {
        let ty = P::clone(&lhs.ty);
        Expr::rvalue(ExprKind::Binary(BinOp::Assign, lhs, rhs), ty, loc)
    }

    /// A unary node.
    pub fn unary(&self, op: UnOp, sub: P<Expr>, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        Expr::rvalue(ExprKind::Unary(op, sub), ty, loc)
    }

    /// An implicit integral conversion if needed (no-op when types match).
    pub fn int_convert(&self, e: P<Expr>, to: &P<Type>) -> P<Expr> {
        if *e.ty == **to {
            return e;
        }
        let loc = e.loc;
        Expr::rvalue(
            ExprKind::ImplicitCast(CastKind::IntegralCast, e),
            P::clone(to),
            loc,
        )
    }

    /// `min(a, b)` built as `a < b ? a : b` (used by tile bounds).
    pub fn min_expr(&self, a: P<Expr>, b: P<Expr>, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        let cond = self.binary(BinOp::Lt, P::clone(&a), P::clone(&b), self.bool_ty(), loc);
        Expr::rvalue(ExprKind::Conditional(cond, a, b), ty, loc)
    }

    /// `max(a, b)` built as `a < b ? b : a` (used by fuse bounds).
    pub fn max_expr(&self, a: P<Expr>, b: P<Expr>, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        let cond = self.binary(BinOp::Lt, P::clone(&a), P::clone(&b), self.bool_ty(), loc);
        Expr::rvalue(ExprKind::Conditional(cond, b, a), ty, loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_ids_are_unique() {
        let ctx = ASTContext::new();
        let a = ctx.fresh_decl_id();
        let b = ctx.fresh_decl_id();
        assert_ne!(a, b);
    }

    #[test]
    fn interned_types_are_shared() {
        let ctx = ASTContext::new();
        assert!(P::ptr_eq(&ctx.int(), &ctx.int()));
        assert_eq!(*ctx.size_t(), *ctx.int_ty(IntWidth::W64, false));
    }

    #[test]
    fn unsigned_of_same_width_rule() {
        let ctx = ASTContext::new();
        assert_eq!(
            ctx.unsigned_of_same_width(&ctx.int()).spelling(),
            "unsigned int"
        );
        assert_eq!(
            ctx.unsigned_of_same_width(&ctx.long_ty()).spelling(),
            "unsigned long"
        );
        // pointers difference with size_t-width counter
        let p = ctx.pointer_to(ctx.double_ty());
        assert_eq!(ctx.unsigned_of_same_width(&p).spelling(), "unsigned long");
    }

    #[test]
    fn read_var_marks_used_and_wraps() {
        let ctx = ASTContext::new();
        let v = ctx.make_var("i", ctx.int(), None, SourceLocation::INVALID);
        assert!(!v.used.get());
        let r = ctx.read_var(&v, SourceLocation::INVALID);
        assert!(v.used.get());
        assert!(matches!(
            r.kind,
            ExprKind::ImplicitCast(CastKind::LValueToRValue, _)
        ));
    }

    #[test]
    fn fresh_names_are_unique() {
        let ctx = ASTContext::new();
        assert_ne!(ctx.fresh_name(".omp.iv"), ctx.fresh_name(".omp.iv"));
    }

    #[test]
    fn int_convert_is_noop_for_same_type() {
        let ctx = ASTContext::new();
        let e = ctx.int_lit(3, ctx.int(), SourceLocation::INVALID);
        let c = ctx.int_convert(P::clone(&e), &ctx.int());
        assert!(P::ptr_eq(&e, &c));
        let widened = ctx.int_convert(e, &ctx.long_ty());
        assert!(matches!(
            widened.kind,
            ExprKind::ImplicitCast(CastKind::IntegralCast, _)
        ));
    }
}
