//! AST node statistics — the quantitative backbone of the paper's
//! representation comparison: the classic `OMPLoopDirective` carries "up to
//! 30 shadow AST statements … plus 6 for each loop", while `OMPCanonicalLoop`
//! reduces the Sema-resolved meta-information to **3** items.

use crate::expr::Expr;
use crate::omp::{OMPCanonicalLoop, OMPDirective};
use crate::stmt::{Stmt, StmtKind};
use crate::visitor::{walk_expr, walk_stmt, StmtVisitor};
use crate::P;

/// Node counts for one subtree, split by visibility.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Statements reachable through `children()` (syntactic + semantic).
    pub visible_stmts: usize,
    /// Expressions reachable through `children()`.
    pub visible_exprs: usize,
    /// Nodes hidden in shadow storage: transformed subtrees and the
    /// `LoopDirectiveHelpers` bundle members.
    pub shadow_nodes: usize,
    /// Sema meta-information items on `OMPCanonicalLoop` wrappers (3 each).
    pub canonical_meta: usize,
}

impl NodeStats {
    /// Total of all counted nodes.
    pub fn total(&self) -> usize {
        self.visible_stmts + self.visible_exprs + self.shadow_nodes + self.canonical_meta
    }
}

struct StatsVisitor {
    stats: NodeStats,
}

impl StmtVisitor for StatsVisitor {
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        self.stats.visible_stmts += 1;
        match &s.kind {
            StmtKind::OMP(d) => {
                self.stats.shadow_nodes += directive_shadow_count(d);
                walk_stmt(self, s);
            }
            StmtKind::OMPCanonicalLoop(cl) => {
                self.stats.canonical_meta += canonical_meta_count(cl);
                walk_stmt(self, s);
            }
            _ => walk_stmt(self, s),
        }
    }

    fn visit_expr(&mut self, e: &P<Expr>) {
        self.stats.visible_exprs += 1;
        walk_expr(self, e);
    }
}

/// Counts the nodes in `s`.
pub fn stmt_stats(s: &P<Stmt>) -> NodeStats {
    let mut v = StatsVisitor {
        stats: NodeStats::default(),
    };
    v.visit_stmt(s);
    v.stats
}

/// Shadow nodes attached to a directive: the helper bundle size plus the
/// size of the transformed subtree (counted as plain nodes).
pub fn directive_shadow_count(d: &OMPDirective) -> usize {
    let helpers = d.loop_helpers.as_ref().map_or(0, |h| h.node_count());
    let transformed = d.transformed.as_ref().map_or(0, |t| {
        let s = stmt_stats(t);
        s.visible_stmts + s.visible_exprs
    });
    helpers + transformed
}

/// Meta-information items on a canonical loop wrapper — always 3
/// (distance function, loop user value function, user-variable reference).
pub fn canonical_meta_count(_cl: &OMPCanonicalLoop) -> usize {
    OMPCanonicalLoop::META_NODE_COUNT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ASTContext;
    use crate::omp::OMPDirectiveKind;
    use omplt_source::SourceLocation;

    fn null_loop() -> P<Stmt> {
        let loc = SourceLocation::INVALID;
        Stmt::new(
            StmtKind::For {
                init: None,
                cond: None,
                inc: None,
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        )
    }

    #[test]
    fn plain_loop_has_no_shadow() {
        let s = stmt_stats(&null_loop());
        assert_eq!(s.shadow_nodes, 0);
        assert_eq!(s.canonical_meta, 0);
        assert_eq!(s.visible_stmts, 2);
    }

    #[test]
    fn transformed_subtree_counts_as_shadow() {
        let mut d = OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![],
            Some(null_loop()),
            SourceLocation::INVALID,
        );
        d.transformed = Some(null_loop());
        let s = Stmt::new(StmtKind::OMP(P::new(d)), SourceLocation::INVALID);
        let st = stmt_stats(&s);
        assert_eq!(st.shadow_nodes, 2, "{st:?}"); // for + null of the shadow tree
        assert_eq!(st.visible_stmts, 3); // directive + for + null
    }

    #[test]
    fn canonical_loop_counts_three() {
        let cl = OMPCanonicalLoop::for_test(null_loop());
        let s = Stmt::new(StmtKind::OMPCanonicalLoop(cl), SourceLocation::INVALID);
        let st = stmt_stats(&s);
        assert_eq!(st.canonical_meta, 3);
        assert_eq!(st.shadow_nodes, 0);
    }

    #[test]
    fn totals_add_up() {
        let ctx = ASTContext::new();
        let _ = ctx;
        let st = stmt_stats(&null_loop());
        assert_eq!(st.total(), st.visible_stmts + st.visible_exprs);
    }
}
