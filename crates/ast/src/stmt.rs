//! The `Stmt` hierarchy, including the loop statements the paper's
//! transformations operate on, `CapturedStmt` (the outlining vehicle), the
//! `AttributedStmt`/`LoopHintAttr` pair used by the shadow-AST partial
//! unroll, and the de-sugared C++ range-based for-loop.

use crate::decl::{CapturedDecl, Decl, VarDecl};
use crate::expr::Expr;
use crate::omp::{OMPCanonicalLoop, OMPDirective};
use crate::P;
use omplt_source::SourceLocation;

/// Capture mode of one captured variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaptureKind {
    /// Captured by reference (`[&]`); the default for OpenMP regions.
    ByRef,
    /// Captured by value (`[=]`/explicit); used for `__begin` in the loop
    /// user value function so it keeps the *start* value even though the
    /// loop mutates the iteration variable (paper §3.1).
    ByValue,
}

/// One captured variable of a [`CapturedStmt`].
#[derive(Clone, Debug)]
pub struct Capture {
    /// How the variable is captured.
    pub kind: CaptureKind,
    /// The captured variable.
    pub var: P<VarDecl>,
}

/// The statement that declares and wires up a [`CapturedDecl`] — Clang's
/// borrowed lambda/block machinery (paper §1.2): the `CapturedDecl` contains
/// the outlined-function definition, the `CapturedStmt` represents the
/// statement declaring it, and the enclosing directive is responsible for
/// calling it.
#[derive(Debug)]
pub struct CapturedStmt {
    /// The outlined "lambda" definition.
    pub decl: P<CapturedDecl>,
    /// Which variables are captured, and how.
    pub captures: Vec<Capture>,
}

/// Statement-level attributes (Clang `AttributedStmt` payloads).
#[derive(Clone, Debug, PartialEq)]
pub enum Attr {
    /// `LoopHintAttr` requesting unrolling with a fixed factor — what
    /// `#pragma clang loop unroll_count(N)` attaches, and what the shadow-AST
    /// partial unroll emits on its inner loop so the mid-end `LoopUnroll`
    /// pass performs the duplication (paper §2.1).
    LoopUnrollCount(u64),
    /// `LoopHintAttr` requesting full unrolling.
    LoopUnrollFull,
    /// `LoopHintAttr` enabling heuristic unrolling.
    LoopUnrollEnable,
}

/// De-sugared pieces of a C++ range-based for-loop, mirroring how Clang's
/// `CXXForRangeStmt` stores "some of the statements the range for-loop is
/// equivalent to" (paper §1.2 and Fig. lst:rangeloop).
#[derive(Debug)]
pub struct CxxForRangeData {
    /// `auto &&__range = Container;`
    pub range_stmt: P<Stmt>,
    /// `auto __begin = std::begin(__range);`
    pub begin_stmt: P<Stmt>,
    /// `auto __end = std::end(__range);`
    pub end_stmt: P<Stmt>,
    /// `__begin != __end`
    pub cond: P<Expr>,
    /// `++__begin`
    pub inc: P<Expr>,
    /// `double &Val = *__begin;` — declares the *loop user variable*.
    pub loop_var_stmt: P<Stmt>,
    /// The `__begin` declaration — the *loop iteration variable*.
    pub begin_var: P<VarDecl>,
    /// The `__end` declaration.
    pub end_var: P<VarDecl>,
    /// The loop user variable declaration.
    pub loop_var: P<VarDecl>,
    /// The loop body.
    pub body: P<Stmt>,
}

/// The kind (and children) of a statement.
#[derive(Debug)]
pub enum StmtKind {
    /// `{ ... }`.
    Compound(Vec<P<Stmt>>),
    /// A declaration statement (`DeclStmt`).
    Decl(Vec<Decl>),
    /// An expression statement.
    Expr(P<Expr>),
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: P<Expr>,
        /// Then branch.
        then: P<Stmt>,
        /// Optional else branch.
        els: Option<P<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: P<Expr>,
        /// Body.
        body: P<Stmt>,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Body.
        body: P<Stmt>,
        /// Condition.
        cond: P<Expr>,
    },
    /// A literal C for-loop (`ForStmt`). Any of init/cond/inc may be absent —
    /// dumps print `<<<NULL>>>` placeholders like Clang.
    For {
        /// Init statement (declaration or expression).
        init: Option<P<Stmt>>,
        /// Controlling condition.
        cond: Option<P<Expr>>,
        /// Increment expression.
        inc: Option<P<Expr>>,
        /// Loop body.
        body: P<Stmt>,
    },
    /// A C++ range-based for-loop (`CXXForRangeStmt`) with its de-sugared
    /// helper statements.
    CxxForRange(P<CxxForRangeData>),
    /// `return [expr];`.
    Return(Option<P<Expr>>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// `;` (`NullStmt`).
    Null,
    /// A statement with attributes (`AttributedStmt`).
    Attributed {
        /// The attributes.
        attrs: Vec<Attr>,
        /// The annotated statement.
        sub: P<Stmt>,
    },
    /// A `CapturedStmt`.
    Captured(P<CapturedStmt>),
    /// Any OpenMP executable directive.
    OMP(P<OMPDirective>),
    /// The `OMPCanonicalLoop` meta node (paper §3.1): wraps a literal loop
    /// that has been "converted" into an OpenMP canonical loop; can be
    /// losslessly removed again for re-analysis.
    OMPCanonicalLoop(P<OMPCanonicalLoop>),
}

/// A statement node.
#[derive(Debug)]
pub struct Stmt {
    /// Kind and children.
    pub kind: StmtKind,
    /// Source position (synthetic for generated statements).
    pub loc: SourceLocation,
}

impl Stmt {
    /// Wraps a kind into a counted pointer.
    pub fn new(kind: StmtKind, loc: SourceLocation) -> P<Stmt> {
        P::new(Stmt { kind, loc })
    }

    /// True for loop statements a directive can associate with.
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, StmtKind::For { .. } | StmtKind::CxxForRange(_))
    }

    /// Looks through `Attributed` wrappers (and `OMPCanonicalLoop`, which
    /// "can be losslessly removed again") to find the underlying loop.
    pub fn strip_to_loop(self: &P<Stmt>) -> &P<Stmt> {
        match &self.kind {
            StmtKind::Attributed { sub, .. } => sub.strip_to_loop(),
            StmtKind::OMPCanonicalLoop(cl) => cl.loop_stmt.strip_to_loop(),
            _ => self,
        }
    }

    /// The Clang-style class name of this node, used by dumps and stats.
    pub fn class_name(&self) -> &'static str {
        match &self.kind {
            StmtKind::Compound(_) => "CompoundStmt",
            StmtKind::Decl(_) => "DeclStmt",
            StmtKind::Expr(_) => "ExprStmt",
            StmtKind::If { .. } => "IfStmt",
            StmtKind::While { .. } => "WhileStmt",
            StmtKind::DoWhile { .. } => "DoStmt",
            StmtKind::For { .. } => "ForStmt",
            StmtKind::CxxForRange(_) => "CXXForRangeStmt",
            StmtKind::Return(_) => "ReturnStmt",
            StmtKind::Break => "BreakStmt",
            StmtKind::Continue => "ContinueStmt",
            StmtKind::Null => "NullStmt",
            StmtKind::Attributed { .. } => "AttributedStmt",
            StmtKind::Captured(_) => "CapturedStmt",
            StmtKind::OMP(d) => d.kind.class_name(),
            StmtKind::OMPCanonicalLoop(_) => "OMPCanonicalLoop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omp::{OMPCanonicalLoop, OMPDirectiveKind};
    use crate::ty::{Type, TypeKind};

    fn null_stmt() -> P<Stmt> {
        Stmt::new(StmtKind::Null, SourceLocation::INVALID)
    }

    fn for_stmt() -> P<Stmt> {
        Stmt::new(
            StmtKind::For {
                init: None,
                cond: None,
                inc: None,
                body: null_stmt(),
            },
            SourceLocation::INVALID,
        )
    }

    #[test]
    fn loop_predicate() {
        assert!(for_stmt().is_loop());
        assert!(!null_stmt().is_loop());
    }

    #[test]
    fn strip_through_attributes() {
        let attributed = Stmt::new(
            StmtKind::Attributed {
                attrs: vec![Attr::LoopUnrollCount(2)],
                sub: for_stmt(),
            },
            SourceLocation::INVALID,
        );
        assert!(attributed.strip_to_loop().is_loop());
    }

    #[test]
    fn strip_through_canonical_loop() {
        // OMPCanonicalLoop is transparently removable (paper §3.1).
        let void = Type::new(TypeKind::Void);
        let _ = void;
        let cl = OMPCanonicalLoop::for_test(for_stmt());
        let s = Stmt::new(StmtKind::OMPCanonicalLoop(cl), SourceLocation::INVALID);
        assert!(s.strip_to_loop().is_loop());
    }

    #[test]
    fn class_names_match_clang() {
        assert_eq!(for_stmt().class_name(), "ForStmt");
        assert_eq!(null_stmt().class_name(), "NullStmt");
        assert_eq!(
            OMPDirectiveKind::ParallelFor.class_name(),
            "OMPParallelForDirective"
        );
    }
}
