//! # omplt-ast
//!
//! The Clang-style Abstract Syntax Tree: four unrelated node hierarchies
//! ([`Stmt`] (with [`Expr`] derived from it), [`Decl`], [`ty::Type`], and
//! [`OMPClause`]) exactly as the paper describes — "there is no common base
//! class for AST nodes", and each hierarchy has its own visitor.
//!
//! Key reproduction points carried by this crate:
//!
//! * **Immutability** — subtrees are reference-counted ([`P`]) and never
//!   mutated after construction; transformations build new trees.
//! * **Shadow AST** (paper §2) — loop-transformation directives
//!   ([`OMPDirective`] with kind `Unroll`/`Tile`) store their *transformed*
//!   loop nest in a field that is deliberately **not** part of `children()`
//!   and not shown by the default AST dump.
//! * **`OMPCanonicalLoop`** (paper §3) — a meta node wrapping a literal loop
//!   together with the three Sema-resolved meta-information items: distance
//!   function, loop-user-value function (both [`CapturedStmt`] lambdas) and
//!   the user-variable reference.
//! * **`-ast-dump`** — [`dump::dump_stmt`] renders trees in the visual style
//!   of `clang -Xclang -ast-dump`, regenerating the paper's listings.

pub mod context;
pub mod decl;
pub mod dump;
pub mod expr;
pub mod omp;
pub mod printer;
pub mod stats;
pub mod stmt;
pub mod ty;
pub mod visitor;

pub use context::ASTContext;
pub use decl::{
    CapturedDecl, Decl, DeclId, DeclKind, FunctionDecl, TranslationUnit, VarDecl, VarKind,
};
pub use dump::{dump_stmt, dump_transformed_only, dump_translation_unit, DumpOptions};
pub use expr::{BinOp, CastKind, Expr, ExprKind, UnOp, ValueCategory};
pub use omp::{
    LoopDirectiveHelpers, OMPCanonicalLoop, OMPClause, OMPClauseKind, OMPDirective,
    OMPDirectiveKind, PerLoopHelpers, ReductionOp, ScheduleKind,
};
pub use printer::{print_expr, print_stmt, print_translation_unit};
pub use stats::{stmt_stats, NodeStats};
pub use stmt::{Attr, Capture, CaptureKind, CapturedStmt, CxxForRangeData, Stmt, StmtKind};
pub use ty::{IntWidth, Type, TypeKind};
pub use visitor::{
    clause_exprs, walk_clauses, walk_expr, walk_stmt, OMPClauseVisitor, StmtVisitor,
};

/// Owning pointer for immutable AST subtrees (Clang uses raw pointers into an
/// arena; we use `Rc` which also gives cheap structural sharing to
/// `TreeTransform`).
pub type P<T> = std::rc::Rc<T>;
