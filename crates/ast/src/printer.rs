//! A C pretty-printer for AST subtrees. Used to show transformed shadow ASTs
//! as readable code (the paper presents them as C snippets, e.g. the
//! remainder-loop figure) and by the examples.

use crate::decl::{Decl, TranslationUnit, VarDecl};
use crate::expr::{BinOp, Expr, ExprKind};
use crate::stmt::{Attr, Stmt, StmtKind};
use crate::P;
use std::fmt::Write as _;

/// Pretty-prints a statement as C source.
pub fn print_stmt(s: &P<Stmt>) -> String {
    let mut p = Printer::default();
    p.stmt(s);
    p.out
}

/// Pretty-prints an expression as C source.
pub fn print_expr(e: &P<Expr>) -> String {
    let mut p = Printer::default();
    p.expr(e);
    p.out
}

/// Pretty-prints a whole translation unit.
pub fn print_translation_unit(tu: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for d in &tu.decls {
        match d {
            Decl::Var(v) => {
                p.indent();
                p.var_decl(v);
                p.out.push_str(";\n");
            }
            Decl::Function(f) => {
                let params: Vec<String> = f
                    .params
                    .iter()
                    .map(|q| format!("{} {}", q.ty.spelling(), q.name))
                    .collect();
                let _ = write!(
                    p.out,
                    "{} {}({})",
                    f.return_type().spelling(),
                    f.name,
                    params.join(", ")
                );
                match f.body.borrow().as_ref() {
                    Some(b) => {
                        p.out.push(' ');
                        p.stmt_inline(b);
                    }
                    None => p.out.push_str(";\n"),
                }
            }
        }
    }
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    level: usize,
}

impl Printer {
    fn indent(&mut self) {
        for _ in 0..self.level {
            self.out.push_str("  ");
        }
    }

    fn var_decl(&mut self, v: &P<VarDecl>) {
        let _ = write!(self.out, "{} {}", v.ty.spelling(), v.name);
        if let Some(init) = &v.init {
            self.out.push_str(" = ");
            self.expr(init);
        }
    }

    /// Statement at current indentation, with trailing newline.
    fn stmt(&mut self, s: &P<Stmt>) {
        self.indent();
        self.stmt_inline(s);
    }

    /// Statement without leading indentation (already emitted).
    fn stmt_inline(&mut self, s: &P<Stmt>) {
        match &s.kind {
            StmtKind::Compound(stmts) => {
                self.out.push_str("{\n");
                self.level += 1;
                for c in stmts {
                    self.stmt(c);
                }
                self.level -= 1;
                self.indent();
                self.out.push_str("}\n");
            }
            StmtKind::Decl(decls) => {
                for (i, d) in decls.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    match d {
                        Decl::Var(v) => self.var_decl(v),
                        Decl::Function(f) => {
                            let _ =
                                write!(self.out, "{} {}(...)", f.return_type().spelling(), f.name);
                        }
                    }
                }
                self.out.push_str(";\n");
            }
            StmtKind::Expr(e) => {
                self.expr(e);
                self.out.push_str(";\n");
            }
            StmtKind::If { cond, then, els } => {
                self.out.push_str("if (");
                self.expr(cond);
                self.out.push_str(") ");
                self.stmt_inline(then);
                if let Some(e) = els {
                    self.indent();
                    self.out.push_str("else ");
                    self.stmt_inline(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(") ");
                self.stmt_inline(body);
            }
            StmtKind::DoWhile { body, cond } => {
                self.out.push_str("do ");
                self.stmt_inline(body);
                self.indent();
                self.out.push_str("while (");
                self.expr(cond);
                self.out.push_str(");\n");
            }
            StmtKind::For {
                init,
                cond,
                inc,
                body,
            } => {
                self.out.push_str("for (");
                match init {
                    Some(i) => match &i.kind {
                        StmtKind::Decl(decls) => {
                            for (n, d) in decls.iter().enumerate() {
                                if n > 0 {
                                    self.out.push_str(", ");
                                }
                                if let Decl::Var(v) = d {
                                    self.var_decl(v);
                                }
                            }
                            self.out.push(';');
                        }
                        StmtKind::Expr(e) => {
                            self.expr(e);
                            self.out.push(';');
                        }
                        _ => self.out.push(';'),
                    },
                    None => self.out.push(';'),
                }
                self.out.push(' ');
                if let Some(c) = cond {
                    self.expr(c);
                }
                self.out.push_str("; ");
                if let Some(i) = inc {
                    self.expr(i);
                }
                self.out.push(')');
                self.block_or_line(body);
            }
            StmtKind::CxxForRange(d) => {
                let _ = write!(
                    self.out,
                    "for ({} {} : ",
                    d.loop_var.ty.spelling(),
                    d.loop_var.name
                );
                // print the range initializer
                if let StmtKind::Decl(decls) = &d.range_stmt.kind {
                    if let Some(Decl::Var(v)) = decls.first() {
                        if let Some(init) = &v.init {
                            self.expr(init);
                        }
                    }
                }
                self.out.push(')');
                self.block_or_line(&d.body);
            }
            StmtKind::Return(e) => {
                self.out.push_str("return");
                if let Some(e) = e {
                    self.out.push(' ');
                    self.expr(e);
                }
                self.out.push_str(";\n");
            }
            StmtKind::Break => self.out.push_str("break;\n"),
            StmtKind::Continue => self.out.push_str("continue;\n"),
            StmtKind::Null => self.out.push_str(";\n"),
            StmtKind::Attributed { attrs, sub } => {
                for a in attrs {
                    match a {
                        Attr::LoopUnrollCount(n) => {
                            let _ = writeln!(self.out, "#pragma clang loop unroll_count({n})");
                        }
                        Attr::LoopUnrollFull => {
                            let _ = writeln!(self.out, "#pragma clang loop unroll(full)");
                        }
                        Attr::LoopUnrollEnable => {
                            let _ = writeln!(self.out, "#pragma clang loop unroll(enable)");
                        }
                    }
                    self.indent();
                }
                self.stmt_inline(sub);
            }
            StmtKind::Captured(c) => {
                self.out.push_str("/*captured*/ ");
                self.stmt_inline(&c.decl.body);
            }
            StmtKind::OMP(d) => {
                let _ = writeln!(self.out, "{}", d.pragma_text());
                if let Some(a) = &d.associated {
                    self.stmt(a);
                }
            }
            StmtKind::OMPCanonicalLoop(cl) => {
                self.stmt_inline(&cl.loop_stmt);
            }
        }
    }

    fn block_or_line(&mut self, body: &P<Stmt>) {
        if matches!(body.kind, StmtKind::Compound(_)) {
            self.out.push(' ');
            self.stmt_inline(body);
        } else {
            self.out.push('\n');
            self.level += 1;
            self.stmt(body);
            self.level -= 1;
        }
    }

    fn expr(&mut self, e: &P<Expr>) {
        match &e.kind {
            ExprKind::IntegerLiteral(v) => {
                let _ = write!(self.out, "{v}");
            }
            ExprKind::FloatingLiteral(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    let _ = write!(self.out, "{v:.1}");
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            ExprKind::BoolLiteral(b) => {
                let _ = write!(self.out, "{b}");
            }
            ExprKind::StringLiteral(s) => {
                let _ = write!(self.out, "\"{}\"", s.escape_default());
            }
            ExprKind::DeclRef(v) => self.out.push_str(&v.name),
            ExprKind::Unary(op, s) => {
                if op.is_postfix() {
                    self.expr(s);
                    self.out.push_str(op.spelling());
                } else {
                    self.out.push_str(op.spelling());
                    self.expr_paren_if_binary(s);
                }
            }
            ExprKind::Binary(op, l, r) => {
                if *op == BinOp::Comma {
                    self.expr(l);
                    self.out.push_str(", ");
                    self.expr(r);
                } else {
                    self.expr_paren_if_binary(l);
                    let _ = write!(self.out, " {} ", op.spelling());
                    self.expr_paren_if_binary(r);
                }
            }
            ExprKind::Call { callee, args } => {
                self.out.push_str(&callee.name);
                self.out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a);
                }
                self.out.push(')');
            }
            ExprKind::ImplicitCast(_, s) | ExprKind::ConstantExpr { sub: s, .. } => self.expr(s),
            ExprKind::ExplicitCast(_, s) => {
                let _ = write!(self.out, "({})", e.ty.spelling());
                self.expr_paren_if_binary(s);
            }
            ExprKind::Paren(s) => {
                self.out.push('(');
                self.expr(s);
                self.out.push(')');
            }
            ExprKind::ArraySubscript(b, i) => {
                self.expr_paren_if_binary(b);
                self.out.push('[');
                self.expr(i);
                self.out.push(']');
            }
            ExprKind::Conditional(c, t, f) => {
                self.expr_paren_if_binary(c);
                self.out.push_str(" ? ");
                self.expr_paren_if_binary(t);
                self.out.push_str(" : ");
                self.expr_paren_if_binary(f);
            }
            ExprKind::SizeOf(t) => {
                let _ = write!(self.out, "sizeof({})", t.spelling());
            }
        }
    }

    /// Parenthesizes nested binary/conditional operands — conservative but
    /// always correct precedence.
    fn expr_paren_if_binary(&mut self, e: &P<Expr>) {
        let needs = matches!(
            e.ignore_wrappers().kind,
            ExprKind::Binary(..) | ExprKind::Conditional(..)
        );
        if needs {
            self.out.push('(');
            self.expr(e);
            self.out.push(')');
        } else {
            self.expr(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ASTContext;
    use omplt_source::SourceLocation;

    #[test]
    fn prints_simple_loop() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(10, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let s = Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        );
        let text = print_stmt(&s);
        assert_eq!(text, "for (int i = 0; i < 10; i += 1)\n  ;\n");
    }

    #[test]
    fn prints_conditional_as_min() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let a = ctx.int_lit(1, ctx.int(), loc);
        let b = ctx.int_lit(2, ctx.int(), loc);
        let m = ctx.min_expr(a, b, ctx.int(), loc);
        assert_eq!(print_expr(&m), "(1 < 2) ? 1 : 2");
    }

    #[test]
    fn prints_nested_binary_with_parens() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let inner = ctx.binary(
            BinOp::Add,
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int_lit(2, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        let outer = ctx.binary(
            BinOp::Mul,
            inner,
            ctx.int_lit(3, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        assert_eq!(print_expr(&outer), "(1 + 2) * 3");
    }

    #[test]
    fn prints_pragma_before_loop() {
        use crate::omp::{OMPClause, OMPClauseKind, OMPDirective, OMPDirectiveKind};
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let body = Stmt::new(StmtKind::Null, loc);
        let lp = Stmt::new(
            StmtKind::For {
                init: None,
                cond: None,
                inc: None,
                body,
            },
            loc,
        );
        let d = OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![OMPClause::new(
                OMPClauseKind::Partial(Some(ctx.int_lit(4, ctx.int(), loc))),
                loc,
            )],
            Some(lp),
            loc,
        );
        let s = Stmt::new(StmtKind::OMP(P::new(d)), loc);
        let text = print_stmt(&s);
        assert!(text.contains("#pragma omp unroll partial(4)"), "{text}");
        assert!(text.contains("for (; ; )"), "{text}");
    }
}
