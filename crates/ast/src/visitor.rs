//! Visitors — one per hierarchy, as the paper notes: "a visitor pattern
//! separate for each of the type hierarchies must be used".
//!
//! `walk_stmt` enumerates `children()` with Clang's exact visibility rules:
//!
//! * OpenMP clauses are **not** children ("the inherited method `children()`
//!   returns a list of `Stmt`s, hence it cannot enumerate any `OMPClause`s");
//!   use [`OMPClauseVisitor`] / [`clause_exprs`] for those.
//! * **Shadow AST is invisible**: a directive's `transformed` statement and
//!   the `loop_helpers` bundle are never yielded.
//! * The `OMPCanonicalLoop` children are exactly the wrapped loop, the two
//!   helper `CapturedStmt`s and the user-variable reference (paper Fig.
//!   lst:ompcanonicalloop).

use crate::decl::Decl;
use crate::expr::{Expr, ExprKind};
use crate::omp::{OMPClause, OMPClauseKind, OMPDirective};
use crate::stmt::{CapturedStmt, Stmt, StmtKind};
use crate::P;

/// Visitor over the `Stmt` hierarchy (which, as in Clang, includes
/// expressions).
pub trait StmtVisitor {
    /// Called for every statement; override and call [`walk_stmt`] to
    /// recurse.
    fn visit_stmt(&mut self, s: &P<Stmt>) {
        walk_stmt(self, s);
    }

    /// Called for every expression; override and call [`walk_expr`] to
    /// recurse.
    fn visit_expr(&mut self, e: &P<Expr>) {
        walk_expr(self, e);
    }
}

/// Recurses into the children of `s` (respecting shadow-AST invisibility).
pub fn walk_stmt<V: StmtVisitor + ?Sized>(v: &mut V, s: &P<Stmt>) {
    match &s.kind {
        StmtKind::Compound(stmts) => {
            for c in stmts {
                v.visit_stmt(c);
            }
        }
        StmtKind::Decl(decls) => {
            for d in decls {
                if let Decl::Var(var) = d {
                    if let Some(init) = &var.init {
                        v.visit_expr(init);
                    }
                }
            }
        }
        StmtKind::Expr(e) => v.visit_expr(e),
        StmtKind::If { cond, then, els } => {
            v.visit_expr(cond);
            v.visit_stmt(then);
            if let Some(e) = els {
                v.visit_stmt(e);
            }
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_stmt(body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_stmt(body);
            v.visit_expr(cond);
        }
        StmtKind::For {
            init,
            cond,
            inc,
            body,
        } => {
            if let Some(i) = init {
                v.visit_stmt(i);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(i) = inc {
                v.visit_expr(i);
            }
            v.visit_stmt(body);
        }
        StmtKind::CxxForRange(d) => {
            v.visit_stmt(&d.range_stmt);
            v.visit_stmt(&d.begin_stmt);
            v.visit_stmt(&d.end_stmt);
            v.visit_expr(&d.cond);
            v.visit_expr(&d.inc);
            v.visit_stmt(&d.loop_var_stmt);
            v.visit_stmt(&d.body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Null => {}
        StmtKind::Attributed { sub, .. } => v.visit_stmt(sub),
        StmtKind::Captured(c) => v.visit_stmt(&c.decl.body),
        StmtKind::OMP(d) => {
            // Clauses, loop_helpers and the transformed shadow AST are NOT
            // children (paper §1.2).
            if let Some(a) = &d.associated {
                v.visit_stmt(a);
            }
        }
        StmtKind::OMPCanonicalLoop(cl) => {
            v.visit_stmt(&cl.loop_stmt);
            v.visit_stmt(&captured_as_stmt(&cl.distance_fn));
            v.visit_stmt(&captured_as_stmt(&cl.loop_var_fn));
            v.visit_expr(&cl.loop_var_ref);
        }
    }
}

/// Wraps a `CapturedStmt` into a temporary `Stmt` node so visitors can enter
/// it uniformly (the AST stores the helper lambdas as bare `CapturedStmt`s,
/// exactly as `OMPCanonicalLoop` does in Clang).
fn captured_as_stmt(c: &P<CapturedStmt>) -> P<Stmt> {
    Stmt::new(
        StmtKind::Captured(P::clone(c)),
        omplt_source::SourceLocation::INVALID,
    )
}

/// Recurses into the sub-expressions of `e`.
pub fn walk_expr<V: StmtVisitor + ?Sized>(v: &mut V, e: &P<Expr>) {
    match &e.kind {
        ExprKind::IntegerLiteral(_)
        | ExprKind::FloatingLiteral(_)
        | ExprKind::BoolLiteral(_)
        | ExprKind::StringLiteral(_)
        | ExprKind::DeclRef(_)
        | ExprKind::SizeOf(_) => {}
        ExprKind::Unary(_, s) => v.visit_expr(s),
        ExprKind::Binary(_, l, r) => {
            v.visit_expr(l);
            v.visit_expr(r);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::ImplicitCast(_, s) | ExprKind::ExplicitCast(_, s) | ExprKind::Paren(s) => {
            v.visit_expr(s)
        }
        ExprKind::ArraySubscript(b, i) => {
            v.visit_expr(b);
            v.visit_expr(i);
        }
        ExprKind::Conditional(c, t, f) => {
            v.visit_expr(c);
            v.visit_expr(t);
            v.visit_expr(f);
        }
        ExprKind::ConstantExpr { sub, .. } => v.visit_expr(sub),
    }
}

/// Visitor over the clause hierarchy.
pub trait OMPClauseVisitor {
    /// Called for every clause of a directive.
    fn visit_clause(&mut self, c: &P<OMPClause>);
}

/// Applies `v` to every clause of `d`.
pub fn walk_clauses<V: OMPClauseVisitor + ?Sized>(v: &mut V, d: &OMPDirective) {
    for c in &d.clauses {
        v.visit_clause(c);
    }
}

/// The argument expressions of a clause (for expression-level analyses).
pub fn clause_exprs(c: &OMPClause) -> Vec<&P<Expr>> {
    match &c.kind {
        OMPClauseKind::Schedule { chunk, .. } => chunk.iter().collect(),
        OMPClauseKind::Collapse(e)
        | OMPClauseKind::NumThreads(e)
        | OMPClauseKind::Grainsize(e)
        | OMPClauseKind::Safelen(e)
        | OMPClauseKind::Simdlen(e) => {
            vec![e]
        }
        OMPClauseKind::Partial(f) => f.iter().collect(),
        OMPClauseKind::Sizes(es)
        | OMPClauseKind::Permutation(es)
        | OMPClauseKind::Private(es)
        | OMPClauseKind::FirstPrivate(es)
        | OMPClauseKind::Shared(es) => es.iter().collect(),
        OMPClauseKind::Reduction { vars, .. } => vars.iter().collect(),
        OMPClauseKind::Full | OMPClauseKind::Nowait => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ASTContext;
    use crate::omp::OMPDirectiveKind;
    use omplt_source::SourceLocation;

    /// Counts statements and expressions seen.
    #[derive(Default)]
    struct Counter {
        stmts: usize,
        exprs: usize,
        saw_for: bool,
    }

    impl StmtVisitor for Counter {
        fn visit_stmt(&mut self, s: &P<Stmt>) {
            self.stmts += 1;
            if matches!(s.kind, StmtKind::For { .. }) {
                self.saw_for = true;
            }
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &P<Expr>) {
            self.exprs += 1;
            walk_expr(self, e);
        }
    }

    fn simple_loop(ctx: &ASTContext) -> P<Stmt> {
        // for (int i = 0; i < 10; i += 1) ;
        let loc = SourceLocation::INVALID;
        let i = ctx.make_var("i", ctx.int(), Some(ctx.int_lit(0, ctx.int(), loc)), loc);
        let cond = ctx.binary(
            crate::expr::BinOp::Lt,
            ctx.read_var(&i, loc),
            ctx.int_lit(10, ctx.int(), loc),
            ctx.bool_ty(),
            loc,
        );
        let inc = ctx.binary(
            crate::expr::BinOp::AddAssign,
            ctx.decl_ref(&i, loc),
            ctx.int_lit(1, ctx.int(), loc),
            ctx.int(),
            loc,
        );
        Stmt::new(
            StmtKind::For {
                init: Some(Stmt::new(StmtKind::Decl(vec![Decl::Var(i)]), loc)),
                cond: Some(cond),
                inc: Some(inc),
                body: Stmt::new(StmtKind::Null, loc),
            },
            loc,
        )
    }

    #[test]
    fn walks_for_components() {
        let ctx = ASTContext::new();
        let mut c = Counter::default();
        c.visit_stmt(&simple_loop(&ctx));
        assert!(c.saw_for);
        // for + declstmt + nullstmt
        assert_eq!(c.stmts, 3);
        // init literal, cond(lt, cast, ref, lit), inc(assign, ref, lit)
        assert!(c.exprs >= 8, "exprs = {}", c.exprs);
    }

    #[test]
    fn shadow_ast_is_invisible_to_children() {
        let ctx = ASTContext::new();
        let lit_loop = simple_loop(&ctx);
        let transformed = simple_loop(&ctx);
        let mut d = crate::omp::OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![],
            Some(P::clone(&lit_loop)),
            SourceLocation::INVALID,
        );
        d.transformed = Some(transformed);
        let s = Stmt::new(StmtKind::OMP(P::new(d)), SourceLocation::INVALID);

        let mut with_shadow = Counter::default();
        with_shadow.visit_stmt(&s);

        let mut without = Counter::default();
        without.visit_stmt(&lit_loop);

        // The directive node itself adds 1; the shadow subtree adds nothing.
        assert_eq!(with_shadow.stmts, without.stmts + 1);
    }

    #[test]
    fn clause_exprs_enumeration() {
        let ctx = ASTContext::new();
        let loc = SourceLocation::INVALID;
        let c = OMPClause::new(
            OMPClauseKind::Sizes(vec![
                ctx.int_lit(4, ctx.int(), loc),
                ctx.int_lit(8, ctx.int(), loc),
            ]),
            loc,
        );
        assert_eq!(clause_exprs(&c).len(), 2);
        let full = OMPClause::new(OMPClauseKind::Full, loc);
        assert!(clause_exprs(&full).is_empty());
    }
}
