//! The `Expr` hierarchy. As in Clang, `Expr` is derived from `Stmt`
//! ("expressions can be used as a statement with its result being ignored");
//! structurally we keep a separate type and wrap it in
//! [`crate::stmt::StmtKind::Expr`].

use crate::decl::{FunctionDecl, VarDecl};
use crate::ty::Type;
use crate::P;
use omplt_source::SourceLocation;

/// Unary operator kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UnOp {
    Plus,
    Minus,
    LNot,
    BitNot,
    PreInc,
    PreDec,
    PostInc,
    PostDec,
    Deref,
    AddrOf,
}

impl UnOp {
    /// Source spelling (for dumps and the C printer).
    pub fn spelling(self) -> &'static str {
        match self {
            UnOp::Plus => "+",
            UnOp::Minus => "-",
            UnOp::LNot => "!",
            UnOp::BitNot => "~",
            UnOp::PreInc | UnOp::PostInc => "++",
            UnOp::PreDec | UnOp::PostDec => "--",
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
        }
    }

    /// Whether the operator is written after its operand.
    pub fn is_postfix(self) -> bool {
        matches!(self, UnOp::PostInc | UnOp::PostDec)
    }

    /// Whether the operator mutates its operand.
    pub fn is_inc_dec(self) -> bool {
        matches!(
            self,
            UnOp::PreInc | UnOp::PreDec | UnOp::PostInc | UnOp::PostDec
        )
    }
}

/// Binary (and assignment) operator kinds, Clang `BinaryOperator` style.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Mul,
    Div,
    Rem,
    Add,
    Sub,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitXor,
    BitOr,
    LAnd,
    LOr,
    Assign,
    MulAssign,
    DivAssign,
    RemAssign,
    AddAssign,
    SubAssign,
    ShlAssign,
    ShrAssign,
    AndAssign,
    XorAssign,
    OrAssign,
    Comma,
}

impl BinOp {
    /// Source spelling.
    pub fn spelling(self) -> &'static str {
        use BinOp::*;
        match self {
            Mul => "*",
            Div => "/",
            Rem => "%",
            Add => "+",
            Sub => "-",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LAnd => "&&",
            LOr => "||",
            Assign => "=",
            MulAssign => "*=",
            DivAssign => "/=",
            RemAssign => "%=",
            AddAssign => "+=",
            SubAssign => "-=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AndAssign => "&=",
            XorAssign => "^=",
            OrAssign => "|=",
            Comma => ",",
        }
    }

    /// True for `=` and all compound assignments.
    pub fn is_assignment(self) -> bool {
        use BinOp::*;
        matches!(
            self,
            Assign
                | MulAssign
                | DivAssign
                | RemAssign
                | AddAssign
                | SubAssign
                | ShlAssign
                | ShrAssign
                | AndAssign
                | XorAssign
                | OrAssign
        )
    }

    /// For a compound assignment, the underlying arithmetic op.
    pub fn compound_base(self) -> Option<BinOp> {
        use BinOp::*;
        Some(match self {
            MulAssign => Mul,
            DivAssign => Div,
            RemAssign => Rem,
            AddAssign => Add,
            SubAssign => Sub,
            ShlAssign => Shl,
            ShrAssign => Shr,
            AndAssign => BitAnd,
            XorAssign => BitXor,
            OrAssign => BitOr,
            _ => return None,
        })
    }

    /// True for the six relational/equality operators.
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Gt | Le | Ge | Eq | Ne)
    }
}

/// Cast kinds, following Clang's `CastKind` naming.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CastKind {
    LValueToRValue,
    IntegralCast,
    IntegralToBoolean,
    IntegralToFloating,
    FloatingToIntegral,
    FloatingCast,
    ArrayToPointerDecay,
    FunctionToPointerDecay,
    PointerToIntegral,
    IntegralToPointer,
    BooleanToIntegral,
    ToVoid,
    NoOp,
}

/// Whether an expression designates an object (lvalue) or a value (rvalue).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ValueCategory {
    LValue,
    RValue,
}

/// The kind (and children) of an expression.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer constant. The value is stored sign-agnostically; the node's
    /// type determines interpretation.
    IntegerLiteral(i128),
    /// Floating constant.
    FloatingLiteral(f64),
    /// `true`/`false`.
    BoolLiteral(bool),
    /// String literal (only valid as a call argument to runtime helpers).
    StringLiteral(String),
    /// Reference to a variable declaration.
    DeclRef(P<VarDecl>),
    /// Unary operation.
    Unary(UnOp, P<Expr>),
    /// Binary or assignment operation.
    Binary(BinOp, P<Expr>, P<Expr>),
    /// Function call. The callee is resolved by Sema.
    Call {
        /// The called function.
        callee: P<FunctionDecl>,
        /// Argument expressions (already converted).
        args: Vec<P<Expr>>,
    },
    /// Compiler-inserted conversion.
    ImplicitCast(CastKind, P<Expr>),
    /// Source-written cast `(T)e`; the target type is the node's type.
    ExplicitCast(CastKind, P<Expr>),
    /// Parenthesized expression (syntax-only node, Clang keeps them too).
    Paren(P<Expr>),
    /// `base[index]`.
    ArraySubscript(P<Expr>, P<Expr>),
    /// `c ? t : f`.
    Conditional(P<Expr>, P<Expr>, P<Expr>),
    /// A constant expression with its Sema-evaluated value, as Clang wraps
    /// clause arguments (dumped as `ConstantExpr` with a `value: Int n`
    /// child, cf. the paper's Fig. lst:astdump_shadowast).
    ConstantExpr {
        /// The evaluated value.
        value: i128,
        /// The syntactic expression.
        sub: P<Expr>,
    },
    /// `sizeof(T)`.
    SizeOf(P<Type>),
}

/// An expression node: kind, type, value category and location.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Kind and children.
    pub kind: ExprKind,
    /// The expression's type.
    pub ty: P<Type>,
    /// lvalue/rvalue.
    pub category: ValueCategory,
    /// Source position.
    pub loc: SourceLocation,
}

impl Expr {
    /// Creates an rvalue expression node.
    pub fn rvalue(kind: ExprKind, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        P::new(Expr {
            kind,
            ty,
            category: ValueCategory::RValue,
            loc,
        })
    }

    /// Creates an lvalue expression node.
    pub fn lvalue(kind: ExprKind, ty: P<Type>, loc: SourceLocation) -> P<Expr> {
        P::new(Expr {
            kind,
            ty,
            category: ValueCategory::LValue,
            loc,
        })
    }

    /// True if this is an lvalue.
    pub fn is_lvalue(&self) -> bool {
        self.category == ValueCategory::LValue
    }

    /// Strips `Paren`, `ImplicitCast` and `ConstantExpr` wrappers.
    pub fn ignore_wrappers(self: &P<Expr>) -> &P<Expr> {
        match &self.kind {
            ExprKind::Paren(e)
            | ExprKind::ImplicitCast(_, e)
            | ExprKind::ConstantExpr { sub: e, .. } => e.ignore_wrappers(),
            _ => self,
        }
    }

    /// If this expression (after stripping wrappers) is a reference to a
    /// variable, returns the variable.
    pub fn as_decl_ref(self: &P<Expr>) -> Option<&P<VarDecl>> {
        match &self.ignore_wrappers().kind {
            ExprKind::DeclRef(v) => Some(v),
            _ => None,
        }
    }

    /// Evaluates the expression as an integer constant if it is one
    /// (literals, `ConstantExpr`, unary +/-, binary arithmetic of constants,
    /// casts of constants, `sizeof`).
    pub fn eval_const_int(self: &P<Expr>) -> Option<i128> {
        match &self.kind {
            ExprKind::IntegerLiteral(v) => Some(*v),
            ExprKind::BoolLiteral(b) => Some(*b as i128),
            ExprKind::ConstantExpr { value, .. } => Some(*value),
            // Compiler-generated variables (`.capture_expr.` and friends)
            // are initialized once and never reassigned, so a reference to
            // one is as constant as its initializer. This lets `unroll full`
            // see through the generated loop of an inner transformation.
            ExprKind::DeclRef(v) if v.implicit => v.init.as_ref().and_then(|i| i.eval_const_int()),
            ExprKind::Paren(e) => e.eval_const_int(),
            // LValueToRValue folds iff the wrapped node itself is constant
            // (a DeclRef never is; TreeTransform substitution can leave a
            // literal behind the cast).
            ExprKind::ImplicitCast(_, e) | ExprKind::ExplicitCast(_, e) => {
                let v = e.eval_const_int()?;
                Some(truncate_to(v, &self.ty))
            }
            ExprKind::Unary(UnOp::Minus, e) => Some(truncate_to(-e.eval_const_int()?, &self.ty)),
            ExprKind::Unary(UnOp::Plus, e) => e.eval_const_int(),
            ExprKind::Unary(UnOp::LNot, e) => Some((e.eval_const_int()? == 0) as i128),
            ExprKind::Binary(op, l, r) => {
                let (l, r) = (l.eval_const_int()?, r.eval_const_int()?);
                let v = match op {
                    BinOp::Add => l.checked_add(r)?,
                    BinOp::Sub => l.checked_sub(r)?,
                    BinOp::Mul => l.checked_mul(r)?,
                    BinOp::Div => l.checked_div(r)?,
                    BinOp::Rem => l.checked_rem(r)?,
                    BinOp::Shl => l.checked_shl(u32::try_from(r).ok()?)?,
                    BinOp::Shr => l.checked_shr(u32::try_from(r).ok()?)?,
                    BinOp::BitAnd => l & r,
                    BinOp::BitOr => l | r,
                    BinOp::BitXor => l ^ r,
                    BinOp::Lt => (l < r) as i128,
                    BinOp::Gt => (l > r) as i128,
                    BinOp::Le => (l <= r) as i128,
                    BinOp::Ge => (l >= r) as i128,
                    BinOp::Eq => (l == r) as i128,
                    BinOp::Ne => (l != r) as i128,
                    BinOp::LAnd => ((l != 0) && (r != 0)) as i128,
                    BinOp::LOr => ((l != 0) || (r != 0)) as i128,
                    _ => return None,
                };
                Some(truncate_to(v, &self.ty))
            }
            ExprKind::Conditional(c, t, f) => {
                if c.eval_const_int()? != 0 {
                    t.eval_const_int()
                } else {
                    f.eval_const_int()
                }
            }
            ExprKind::SizeOf(t) => Some(t.size_of() as i128),
            _ => None,
        }
    }
}

/// Truncates/wraps `v` into the representable range of integer type `ty`
/// (no-op for non-integers).
pub fn truncate_to(v: i128, ty: &Type) -> i128 {
    match ty.kind {
        crate::ty::TypeKind::Int { width, signed } => {
            let bits = width.bits();
            let mask = if bits == 128 {
                u128::MAX
            } else {
                (1u128 << bits) - 1
            };
            let t = (v as u128) & mask;
            if signed && bits < 128 && (t >> (bits - 1)) & 1 == 1 {
                (t as i128) - (1i128 << bits)
            } else {
                t as i128
            }
        }
        crate::ty::TypeKind::Bool => (v != 0) as i128,
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{IntWidth, TypeKind};
    use omplt_source::SourceLocation;

    fn int_ty() -> P<Type> {
        Type::new(TypeKind::Int {
            width: IntWidth::W32,
            signed: true,
        })
    }

    fn lit(v: i128) -> P<Expr> {
        Expr::rvalue(
            ExprKind::IntegerLiteral(v),
            int_ty(),
            SourceLocation::INVALID,
        )
    }

    #[test]
    fn const_eval_arithmetic() {
        let e = Expr::rvalue(
            ExprKind::Binary(BinOp::Add, lit(2), lit(3)),
            int_ty(),
            SourceLocation::INVALID,
        );
        assert_eq!(e.eval_const_int(), Some(5));
        let m = Expr::rvalue(
            ExprKind::Binary(BinOp::Mul, lit(6), lit(7)),
            int_ty(),
            SourceLocation::INVALID,
        );
        assert_eq!(m.eval_const_int(), Some(42));
    }

    #[test]
    fn const_eval_wraps_to_type() {
        // (1 << 31) in 32-bit signed wraps negative
        let e = Expr::rvalue(
            ExprKind::Binary(BinOp::Shl, lit(1), lit(31)),
            int_ty(),
            SourceLocation::INVALID,
        );
        assert_eq!(e.eval_const_int(), Some(i32::MIN as i128));
    }

    #[test]
    fn const_eval_division_by_zero_fails() {
        let e = Expr::rvalue(
            ExprKind::Binary(BinOp::Div, lit(1), lit(0)),
            int_ty(),
            SourceLocation::INVALID,
        );
        assert_eq!(e.eval_const_int(), None);
    }

    #[test]
    fn wrappers_are_transparent() {
        let inner = lit(9);
        let wrapped = Expr::rvalue(
            ExprKind::Paren(Expr::rvalue(
                ExprKind::ConstantExpr {
                    value: 9,
                    sub: inner,
                },
                int_ty(),
                SourceLocation::INVALID,
            )),
            int_ty(),
            SourceLocation::INVALID,
        );
        assert!(matches!(
            wrapped.ignore_wrappers().kind,
            ExprKind::IntegerLiteral(9)
        ));
        assert_eq!(wrapped.eval_const_int(), Some(9));
    }

    #[test]
    fn truncate_semantics() {
        let u8t = Type::new(TypeKind::Int {
            width: IntWidth::W8,
            signed: false,
        });
        assert_eq!(truncate_to(256, &u8t), 0);
        assert_eq!(truncate_to(-1, &u8t), 255);
        let i8t = Type::new(TypeKind::Int {
            width: IntWidth::W8,
            signed: true,
        });
        assert_eq!(truncate_to(128, &i8t), -128);
        assert_eq!(truncate_to(-129, &i8t), 127);
    }

    #[test]
    fn compound_base_mapping() {
        assert_eq!(BinOp::AddAssign.compound_base(), Some(BinOp::Add));
        assert_eq!(BinOp::Assign.compound_base(), None);
        assert!(BinOp::SubAssign.is_assignment());
        assert!(!BinOp::Sub.is_assignment());
    }

    #[test]
    fn sizeof_evaluates() {
        let e = Expr::rvalue(
            ExprKind::SizeOf(Type::new(TypeKind::Double)),
            Type::new(TypeKind::Int {
                width: IntWidth::W64,
                signed: false,
            }),
            SourceLocation::INVALID,
        );
        assert_eq!(e.eval_const_int(), Some(8));
    }
}
