//! OpenMP AST nodes: directives, clauses, the classic `OMPLoopDirective`
//! shadow helper bundle, and the `OMPCanonicalLoop` meta node — the two
//! representations the paper contrasts.

use crate::decl::VarDecl;
use crate::expr::Expr;
use crate::stmt::{CapturedStmt, Stmt};
use crate::P;
use omplt_source::SourceLocation;

/// Directive kinds (the class-hierarchy leaves of the paper's Fig. 3/5).
///
/// The is-a relations of Clang's hierarchy are encoded by the predicate
/// methods: every kind is an `OMPExecutableDirective`;
/// [`OMPDirectiveKind::is_loop_based`] corresponds to deriving from the new
/// `OMPLoopBasedDirective` base class; [`OMPDirectiveKind::is_loop_directive`]
/// to the classic `OMPLoopDirective` (which carries the shadow helper
/// bundle); and [`OMPDirectiveKind::is_loop_transformation`] marks the two
/// new OpenMP 5.1 transformation directives.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OMPDirectiveKind {
    /// `#pragma omp parallel`.
    Parallel,
    /// `#pragma omp for`.
    For,
    /// `#pragma omp parallel for` (combined).
    ParallelFor,
    /// `#pragma omp simd`.
    Simd,
    /// `#pragma omp for simd` (composite: workshare chunks, widen lanes).
    ForSimd,
    /// `#pragma omp parallel for simd` (combined + composite).
    ParallelForSimd,
    /// `#pragma omp taskloop`.
    Taskloop,
    /// `#pragma omp unroll` (loop transformation, OpenMP 5.1).
    Unroll,
    /// `#pragma omp tile` (loop transformation, OpenMP 5.1).
    Tile,
    /// `#pragma omp interchange` (loop transformation, OpenMP 6.0
    /// candidate; Kruse & Finkel's loop-transformation proposal).
    Interchange,
    /// `#pragma omp reverse` (loop transformation, OpenMP 6.0 candidate).
    Reverse,
    /// `#pragma omp fuse` (loop transformation, OpenMP 6.0 candidate).
    Fuse,
}

impl OMPDirectiveKind {
    /// Directive name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            OMPDirectiveKind::Parallel => "parallel",
            OMPDirectiveKind::For => "for",
            OMPDirectiveKind::ParallelFor => "parallel for",
            OMPDirectiveKind::Simd => "simd",
            OMPDirectiveKind::ForSimd => "for simd",
            OMPDirectiveKind::ParallelForSimd => "parallel for simd",
            OMPDirectiveKind::Taskloop => "taskloop",
            OMPDirectiveKind::Unroll => "unroll",
            OMPDirectiveKind::Tile => "tile",
            OMPDirectiveKind::Interchange => "interchange",
            OMPDirectiveKind::Reverse => "reverse",
            OMPDirectiveKind::Fuse => "fuse",
        }
    }

    /// Clang AST class name.
    pub fn class_name(self) -> &'static str {
        match self {
            OMPDirectiveKind::Parallel => "OMPParallelDirective",
            OMPDirectiveKind::For => "OMPForDirective",
            OMPDirectiveKind::ParallelFor => "OMPParallelForDirective",
            OMPDirectiveKind::Simd => "OMPSimdDirective",
            OMPDirectiveKind::ForSimd => "OMPForSimdDirective",
            OMPDirectiveKind::ParallelForSimd => "OMPParallelForSimdDirective",
            OMPDirectiveKind::Taskloop => "OMPTaskLoopDirective",
            OMPDirectiveKind::Unroll => "OMPUnrollDirective",
            OMPDirectiveKind::Tile => "OMPTileDirective",
            OMPDirectiveKind::Interchange => "OMPInterchangeDirective",
            OMPDirectiveKind::Reverse => "OMPReverseDirective",
            OMPDirectiveKind::Fuse => "OMPFuseDirective",
        }
    }

    /// Is-a `OMPLoopBasedDirective` (associates with a canonical loop nest).
    pub fn is_loop_based(self) -> bool {
        !matches!(self, OMPDirectiveKind::Parallel)
    }

    /// Is-a classic `OMPLoopDirective` (worksharing/simd/taskloop family,
    /// carries the full shadow helper bundle in classic mode).
    pub fn is_loop_directive(self) -> bool {
        matches!(
            self,
            OMPDirectiveKind::For
                | OMPDirectiveKind::ParallelFor
                | OMPDirectiveKind::Simd
                | OMPDirectiveKind::ForSimd
                | OMPDirectiveKind::ParallelForSimd
                | OMPDirectiveKind::Taskloop
        )
    }

    /// Whether the directive carries the `simd` construct (alone or as part
    /// of a composite): its loop is marked `llvm.loop.vectorize.enable` and
    /// accepts `safelen`/`simdlen` clauses.
    pub fn has_simd(self) -> bool {
        matches!(
            self,
            OMPDirectiveKind::Simd | OMPDirectiveKind::ForSimd | OMPDirectiveKind::ParallelForSimd
        )
    }

    /// One of the loop transformation directives (`unroll`/`tile` from
    /// OpenMP 5.1, `interchange`/`reverse`/`fuse` from the 6.0 candidate
    /// set).
    pub fn is_loop_transformation(self) -> bool {
        matches!(
            self,
            OMPDirectiveKind::Unroll
                | OMPDirectiveKind::Tile
                | OMPDirectiveKind::Interchange
                | OMPDirectiveKind::Reverse
                | OMPDirectiveKind::Fuse
        )
    }

    /// Whether the associated region is outlined into a `CapturedStmt`.
    /// Loop transformations must *not* capture (paper §2.1: "it is
    /// imperative to not wrap the code in a CapturedStmt").
    pub fn captures_associated(self) -> bool {
        !self.is_loop_transformation()
    }

    /// Whether the directive forks a thread team.
    pub fn is_parallel(self) -> bool {
        matches!(
            self,
            OMPDirectiveKind::Parallel
                | OMPDirectiveKind::ParallelFor
                | OMPDirectiveKind::ParallelForSimd
        )
    }

    /// Whether the directive workshares iterations across a team.
    pub fn is_worksharing(self) -> bool {
        matches!(
            self,
            OMPDirectiveKind::For
                | OMPDirectiveKind::ParallelFor
                | OMPDirectiveKind::ForSimd
                | OMPDirectiveKind::ParallelForSimd
        )
    }
}

/// `schedule(...)` kinds (only `static` is lowered; others parse and are
/// diagnosed as unsupported).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ScheduleKind {
    Static,
    Dynamic,
    Guided,
    Auto,
    Runtime,
}

impl ScheduleKind {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::Static => "static",
            ScheduleKind::Dynamic => "dynamic",
            ScheduleKind::Guided => "guided",
            ScheduleKind::Auto => "auto",
            ScheduleKind::Runtime => "runtime",
        }
    }
}

/// Reduction operators supported in `reduction(op: vars)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ReductionOp {
    Add,
    Mul,
    Min,
    Max,
}

impl ReductionOp {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Min => "min",
            ReductionOp::Max => "max",
        }
    }
}

/// Clause kinds (paper Fig. 4: `OMPFullClause`, `OMPPartialClause`,
/// `OMPSizesClause` join the existing clause hierarchy).
#[derive(Clone, Debug)]
pub enum OMPClauseKind {
    /// `schedule(kind[, chunk])`.
    Schedule {
        /// Schedule policy.
        kind: ScheduleKind,
        /// Optional chunk size.
        chunk: Option<P<Expr>>,
    },
    /// `collapse(n)`.
    Collapse(P<Expr>),
    /// `num_threads(n)`.
    NumThreads(P<Expr>),
    /// `full` (unroll completely).
    Full,
    /// `partial` / `partial(factor)`.
    Partial(Option<P<Expr>>),
    /// `sizes(s1, s2, …)`.
    Sizes(Vec<P<Expr>>),
    /// `private(vars)`.
    Private(Vec<P<Expr>>),
    /// `firstprivate(vars)`.
    FirstPrivate(Vec<P<Expr>>),
    /// `shared(vars)`.
    Shared(Vec<P<Expr>>),
    /// `reduction(op: vars)`.
    Reduction {
        /// Combiner.
        op: ReductionOp,
        /// Reduced variables.
        vars: Vec<P<Expr>>,
    },
    /// `nowait`.
    Nowait,
    /// `grainsize(n)` for `taskloop`.
    Grainsize(P<Expr>),
    /// `permutation(p1, p2, …)` for `interchange` (1-based loop levels).
    Permutation(Vec<P<Expr>>),
    /// `safelen(n)` — no two iterations more than `n-1` apart may run
    /// concurrently as SIMD lanes.
    Safelen(P<Expr>),
    /// `simdlen(n)` — the preferred SIMD width.
    Simdlen(P<Expr>),
}

impl OMPClauseKind {
    /// Clang AST class name.
    pub fn class_name(&self) -> &'static str {
        match self {
            OMPClauseKind::Schedule { .. } => "OMPScheduleClause",
            OMPClauseKind::Collapse(_) => "OMPCollapseClause",
            OMPClauseKind::NumThreads(_) => "OMPNumThreadsClause",
            OMPClauseKind::Full => "OMPFullClause",
            OMPClauseKind::Partial(_) => "OMPPartialClause",
            OMPClauseKind::Sizes(_) => "OMPSizesClause",
            OMPClauseKind::Private(_) => "OMPPrivateClause",
            OMPClauseKind::FirstPrivate(_) => "OMPFirstprivateClause",
            OMPClauseKind::Shared(_) => "OMPSharedClause",
            OMPClauseKind::Reduction { .. } => "OMPReductionClause",
            OMPClauseKind::Nowait => "OMPNowaitClause",
            OMPClauseKind::Grainsize(_) => "OMPGrainsizeClause",
            OMPClauseKind::Permutation(_) => "OMPPermutationClause",
            OMPClauseKind::Safelen(_) => "OMPSafelenClause",
            OMPClauseKind::Simdlen(_) => "OMPSimdlenClause",
        }
    }

    /// Clause name as written in source.
    pub fn name(&self) -> &'static str {
        match self {
            OMPClauseKind::Schedule { .. } => "schedule",
            OMPClauseKind::Collapse(_) => "collapse",
            OMPClauseKind::NumThreads(_) => "num_threads",
            OMPClauseKind::Full => "full",
            OMPClauseKind::Partial(_) => "partial",
            OMPClauseKind::Sizes(_) => "sizes",
            OMPClauseKind::Private(_) => "private",
            OMPClauseKind::FirstPrivate(_) => "firstprivate",
            OMPClauseKind::Shared(_) => "shared",
            OMPClauseKind::Reduction { .. } => "reduction",
            OMPClauseKind::Nowait => "nowait",
            OMPClauseKind::Grainsize(_) => "grainsize",
            OMPClauseKind::Permutation(_) => "permutation",
            OMPClauseKind::Safelen(_) => "safelen",
            OMPClauseKind::Simdlen(_) => "simdlen",
        }
    }
}

/// A clause node.
#[derive(Clone, Debug)]
pub struct OMPClause {
    /// Kind and arguments.
    pub kind: OMPClauseKind,
    /// Source position of the clause name.
    pub loc: SourceLocation,
}

impl OMPClause {
    /// Wraps a kind into a counted pointer.
    pub fn new(kind: OMPClauseKind, loc: SourceLocation) -> P<OMPClause> {
        P::new(OMPClause { kind, loc })
    }
}

/// Per-associated-loop helper nodes of the classic `OMPLoopDirective`
/// representation — the paper counts "6 for each loop in the associated
/// loop nest".
#[derive(Debug)]
pub struct PerLoopHelpers {
    /// The loop's own counter variable.
    pub counter: P<VarDecl>,
    /// The privatized copy used inside the region.
    pub private_counter: P<VarDecl>,
    /// Counter initialization expression (counter = lb).
    pub init: P<Expr>,
    /// Counter update from the logical iteration number.
    pub update: P<Expr>,
    /// Value of the counter after the loop ("final").
    pub final_value: P<Expr>,
    /// The loop's step as an expression.
    pub step: P<Expr>,
}

impl PerLoopHelpers {
    /// Number of shadow nodes this bundle contributes (for the paper's
    /// 30 + 6·loops count).
    pub const NODE_COUNT: usize = 6;
}

/// The loop-nest-wide helper nodes of the classic `OMPLoopDirective`
/// representation — "up to 30 shadow AST statements for representing a loop
/// nest" (paper §1.2). Every field is code-generation material produced in
/// Sema and hidden from `children()`.
#[derive(Debug)]
pub struct LoopDirectiveHelpers {
    /// The normalized logical iteration variable (`.omp.iv`).
    pub iteration_variable: P<VarDecl>,
    /// Total number of logical iterations (the distance).
    pub num_iterations: P<Expr>,
    /// `num_iterations - 1`.
    pub last_iteration: P<Expr>,
    /// Expression recomputing `last_iteration` (Clang: `CalcLastIteration`).
    pub calc_last_iteration: P<Expr>,
    /// `0 < num_iterations` — guards the whole construct.
    pub precondition: P<Expr>,
    /// `iv = 0`.
    pub init: P<Expr>,
    /// `iv < num_iterations`.
    pub cond: P<Expr>,
    /// `iv = iv + 1`.
    pub inc: P<Expr>,
    /// Worksharing lower bound variable (`.omp.lb`).
    pub lower_bound: P<VarDecl>,
    /// Worksharing upper bound variable (`.omp.ub`).
    pub upper_bound: P<VarDecl>,
    /// Worksharing stride variable (`.omp.stride`).
    pub stride: P<VarDecl>,
    /// Is-last-iteration flag variable (`.omp.is_last`).
    pub is_last_iter_variable: P<VarDecl>,
    /// `iv = lb` for the worksharing inner loop.
    pub workshare_init: P<Expr>,
    /// `iv <= ub` for the worksharing inner loop (Clang: `Cond` with bounds).
    pub workshare_cond: P<Expr>,
    /// `ub = min(ub, last_iteration)` (Clang: `EnsureUpperBound`).
    pub ensure_upper_bound: P<Expr>,
    /// `lb += stride` (Clang: `NextLowerBound`).
    pub next_lower_bound: P<Expr>,
    /// `ub += stride` (Clang: `NextUpperBound`).
    pub next_upper_bound: P<Expr>,
    /// Per-loop helper bundles (6 nodes per associated loop).
    pub loops: Vec<PerLoopHelpers>,
    /// Captured trip-count variables (`.capture_expr.`), declared before the
    /// construct; the other helper expressions read them.
    pub capture_decls: Vec<P<VarDecl>>,
}

impl LoopDirectiveHelpers {
    /// Number of nest-wide shadow nodes (17 here; the paper says "up to 30"
    /// — the remainder are distribute/doacross-only helpers we do not model,
    /// see DESIGN.md §7).
    pub const NEST_NODE_COUNT: usize = 17;

    /// Total number of shadow nodes held by this bundle.
    pub fn node_count(&self) -> usize {
        Self::NEST_NODE_COUNT + self.loops.len() * PerLoopHelpers::NODE_COUNT
    }
}

/// An OpenMP executable directive (`OMPExecutableDirective` and all of its
/// subclasses, discriminated by [`OMPDirectiveKind`]).
#[derive(Debug)]
pub struct OMPDirective {
    /// Which directive this is.
    pub kind: OMPDirectiveKind,
    /// Clauses in source order.
    pub clauses: Vec<P<OMPClause>>,
    /// The associated statement: a `CapturedStmt` for outlining directives,
    /// the bare loop (or nested directive) for loop transformations, or
    /// `None` for stand-alone directives.
    pub associated: Option<P<Stmt>>,
    /// Classic-mode shadow helper bundle (only for `is_loop_directive()`
    /// kinds in classic codegen mode). **Not** part of `children()`.
    pub loop_helpers: Option<P<LoopDirectiveHelpers>>,
    /// The transformed loop nest — the shadow AST of `tile`/`unroll`
    /// directives (paper §2). `None` when no generated loop exists (e.g.
    /// `unroll full`, or when CodeGen lowers directly). **Not** part of
    /// `children()` and invisible to the default AST dump.
    pub transformed: Option<P<Stmt>>,
    /// Source position of the `#pragma`.
    pub loc: SourceLocation,
}

impl OMPDirective {
    /// Creates a directive node.
    pub fn new(
        kind: OMPDirectiveKind,
        clauses: Vec<P<OMPClause>>,
        associated: Option<P<Stmt>>,
        loc: SourceLocation,
    ) -> OMPDirective {
        OMPDirective {
            kind,
            clauses,
            associated,
            loop_helpers: None,
            transformed: None,
            loc,
        }
    }

    /// The semantically equivalent statement a consuming directive analyzes
    /// instead of the directive itself — `getTransformedStmt()` of the
    /// shadow-AST design. Returns `None` if this directive does not stand
    /// for a generated loop (not a transformation, or fully unrolled).
    pub fn get_transformed_stmt(&self) -> Option<&P<Stmt>> {
        self.transformed.as_ref()
    }

    /// Finds the first clause matching `pred`.
    pub fn find_clause(&self, pred: impl Fn(&OMPClauseKind) -> bool) -> Option<&P<OMPClause>> {
        self.clauses.iter().find(|c| pred(&c.kind))
    }

    /// Whether a `full` clause is present.
    pub fn has_full_clause(&self) -> bool {
        self.find_clause(|k| matches!(k, OMPClauseKind::Full))
            .is_some()
    }

    /// The `partial` clause factor: `Some(None)` for bare `partial`,
    /// `Some(Some(e))` with the factor expression, `None` if absent.
    pub fn partial_clause(&self) -> Option<Option<&P<Expr>>> {
        self.find_clause(|k| matches!(k, OMPClauseKind::Partial(_)))
            .map(|c| match &c.kind {
                OMPClauseKind::Partial(f) => f.as_ref(),
                _ => unreachable!(),
            })
    }

    /// The `sizes` clause arguments, if present.
    pub fn sizes_clause(&self) -> Option<&[P<Expr>]> {
        self.find_clause(|k| matches!(k, OMPClauseKind::Sizes(_)))
            .map(|c| match &c.kind {
                OMPClauseKind::Sizes(s) => s.as_slice(),
                _ => unreachable!(),
            })
    }

    /// The `permutation` clause arguments, if present.
    pub fn permutation_clause(&self) -> Option<&[P<Expr>]> {
        self.find_clause(|k| matches!(k, OMPClauseKind::Permutation(_)))
            .map(|c| match &c.kind {
                OMPClauseKind::Permutation(p) => p.as_slice(),
                _ => unreachable!(),
            })
    }

    /// The `safelen(n)` value (constant-evaluated), if present and positive.
    pub fn safelen_value(&self) -> Option<u64> {
        self.find_clause(|k| matches!(k, OMPClauseKind::Safelen(_)))
            .and_then(|c| match &c.kind {
                OMPClauseKind::Safelen(e) => e.eval_const_int(),
                _ => None,
            })
            .and_then(|v| u64::try_from(v).ok())
            .filter(|&v| v > 0)
    }

    /// The `simdlen(n)` value (constant-evaluated), if present and positive.
    pub fn simdlen_value(&self) -> Option<u64> {
        self.find_clause(|k| matches!(k, OMPClauseKind::Simdlen(_)))
            .and_then(|c| match &c.kind {
                OMPClauseKind::Simdlen(e) => e.eval_const_int(),
                _ => None,
            })
            .and_then(|v| u64::try_from(v).ok())
            .filter(|&v| v > 0)
    }

    /// The `collapse(n)` value (constant-evaluated), defaulting to 1.
    /// Non-positive values clamp to 1: sema diagnoses them separately, and
    /// every consumer needs at least one loop level to stay well-formed.
    pub fn collapse_depth(&self) -> usize {
        self.find_clause(|k| matches!(k, OMPClauseKind::Collapse(_)))
            .and_then(|c| match &c.kind {
                OMPClauseKind::Collapse(e) => e.eval_const_int(),
                _ => None,
            })
            .map_or(1, |v| usize::try_from(v).unwrap_or(1).max(1))
    }

    /// A source-like rendering of the pragma line, used for the
    /// "in loop generated by '…'" diagnostics breadcrumb.
    pub fn pragma_text(&self) -> String {
        let mut s = format!("#pragma omp {}", self.kind.name());
        for c in &self.clauses {
            s.push(' ');
            s.push_str(c.kind.name());
            match &c.kind {
                OMPClauseKind::Partial(Some(e))
                | OMPClauseKind::Collapse(e)
                | OMPClauseKind::NumThreads(e)
                | OMPClauseKind::Grainsize(e)
                | OMPClauseKind::Safelen(e)
                | OMPClauseKind::Simdlen(e) => {
                    if let Some(v) = e.eval_const_int() {
                        s.push_str(&format!("({v})"));
                    } else {
                        s.push_str("(...)");
                    }
                }
                OMPClauseKind::Sizes(es) | OMPClauseKind::Permutation(es) => {
                    let vals: Vec<String> = es
                        .iter()
                        .map(|e| {
                            e.eval_const_int()
                                .map_or("...".to_string(), |v| v.to_string())
                        })
                        .collect();
                    s.push_str(&format!("({})", vals.join(", ")));
                }
                OMPClauseKind::Schedule { kind, .. } => s.push_str(&format!("({})", kind.name())),
                _ => {}
            }
        }
        s
    }
}

/// The `OMPCanonicalLoop` meta node (paper §3.1): wraps a literal loop and
/// carries the *minimal* meta-information resolved at the Sema layer —
/// reduced from the ~36 shadow nodes of [`LoopDirectiveHelpers`] to exactly
/// three items.
#[derive(Debug)]
pub struct OMPCanonicalLoop {
    /// The wrapped literal loop (`ForStmt` or `CXXForRangeStmt`).
    pub loop_stmt: P<Stmt>,
    /// The **distance function**: a lambda `[&](size_t &Result) { Result =
    /// __end - __begin; }` computing the trip count before loop entry.
    pub distance_fn: P<CapturedStmt>,
    /// The **loop user value function**: a lambda
    /// `[&,__begin](auto &Result, size_t i) { Result = __begin + i; }`
    /// converting a logical iteration number into the user variable's value.
    pub loop_var_fn: P<CapturedStmt>,
    /// The **user variable reference** that must be updated before each
    /// iteration.
    pub loop_var_ref: P<Expr>,
}

impl OMPCanonicalLoop {
    /// The number of Sema-resolved meta-information items — the paper's
    /// headline reduction ("This is reduced from the 36 shadow AST nodes
    /// required by OMPLoopDirective").
    pub const META_NODE_COUNT: usize = 3;

    /// Test-only constructor with placeholder helper lambdas.
    #[doc(hidden)]
    pub fn for_test(loop_stmt: P<Stmt>) -> P<OMPCanonicalLoop> {
        use crate::decl::CapturedDecl;
        use crate::expr::{Expr, ExprKind};
        use crate::ty::{Type, TypeKind};
        let mk_captured = || {
            P::new(CapturedStmt {
                decl: P::new(CapturedDecl {
                    params: Vec::new(),
                    body: Stmt::new(crate::stmt::StmtKind::Null, SourceLocation::INVALID),
                    nothrow: true,
                }),
                captures: Vec::new(),
            })
        };
        P::new(OMPCanonicalLoop {
            loop_stmt,
            distance_fn: mk_captured(),
            loop_var_fn: mk_captured(),
            loop_var_ref: Expr::rvalue(
                ExprKind::IntegerLiteral(0),
                Type::new(TypeKind::Int {
                    width: crate::ty::IntWidth::W32,
                    signed: true,
                }),
                SourceLocation::INVALID,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_predicates_match_paper_fig3() {
        use OMPDirectiveKind::*;
        // OMPUnrollDirective/OMPTileDirective derive from
        // OMPLoopBasedDirective but NOT from OMPLoopDirective.
        assert!(Unroll.is_loop_based() && !Unroll.is_loop_directive());
        assert!(Tile.is_loop_based() && !Tile.is_loop_directive());
        assert!(Unroll.is_loop_transformation() && Tile.is_loop_transformation());
        // The 6.0-candidate transformations share the hierarchy position.
        for k in [Interchange, Reverse, Fuse] {
            assert!(k.is_loop_based() && !k.is_loop_directive());
            assert!(k.is_loop_transformation());
            assert!(!k.is_parallel() && !k.is_worksharing());
        }
        // Classic loop directives are both.
        assert!(For.is_loop_based() && For.is_loop_directive());
        assert!(ParallelFor.is_loop_based() && ParallelFor.is_loop_directive());
        assert!(!ParallelFor.is_loop_transformation());
        // parallel is neither loop-based nor a loop directive.
        assert!(!Parallel.is_loop_based() && !Parallel.is_loop_directive());
    }

    #[test]
    fn transformations_do_not_capture() {
        assert!(!OMPDirectiveKind::Unroll.captures_associated());
        assert!(!OMPDirectiveKind::Tile.captures_associated());
        assert!(!OMPDirectiveKind::Interchange.captures_associated());
        assert!(!OMPDirectiveKind::Reverse.captures_associated());
        assert!(!OMPDirectiveKind::Fuse.captures_associated());
        assert!(OMPDirectiveKind::ParallelFor.captures_associated());
        assert!(OMPDirectiveKind::Parallel.captures_associated());
    }

    #[test]
    fn class_names() {
        assert_eq!(OMPDirectiveKind::Tile.class_name(), "OMPTileDirective");
        assert_eq!(
            OMPDirectiveKind::Interchange.class_name(),
            "OMPInterchangeDirective"
        );
        assert_eq!(
            OMPDirectiveKind::Reverse.class_name(),
            "OMPReverseDirective"
        );
        assert_eq!(OMPDirectiveKind::Fuse.class_name(), "OMPFuseDirective");
        assert_eq!(
            OMPClauseKind::Permutation(vec![]).class_name(),
            "OMPPermutationClause"
        );
        assert_eq!(OMPClauseKind::Full.class_name(), "OMPFullClause");
        assert_eq!(OMPClauseKind::Sizes(vec![]).class_name(), "OMPSizesClause");
        assert_eq!(
            OMPClauseKind::Partial(None).class_name(),
            "OMPPartialClause"
        );
    }

    #[test]
    fn pragma_text_round_trip() {
        let d = OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![OMPClause::new(OMPClauseKind::Full, SourceLocation::INVALID)],
            None,
            SourceLocation::INVALID,
        );
        assert_eq!(d.pragma_text(), "#pragma omp unroll full");
    }

    #[test]
    fn meta_count_is_three() {
        assert_eq!(OMPCanonicalLoop::META_NODE_COUNT, 3);
    }

    #[test]
    fn clause_queries() {
        let d = OMPDirective::new(
            OMPDirectiveKind::Unroll,
            vec![OMPClause::new(
                OMPClauseKind::Partial(None),
                SourceLocation::INVALID,
            )],
            None,
            SourceLocation::INVALID,
        );
        assert!(!d.has_full_clause());
        assert!(matches!(d.partial_clause(), Some(None)));
        assert_eq!(d.collapse_depth(), 1);
        assert!(d.get_transformed_stmt().is_none());
    }
}
