//! SSA values: small `Copy` handles, in the index-arena idiom.

use crate::function::InstId;
use crate::types::IrType;

/// Interned symbol (function or global name) inside a [`crate::Module`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SymbolId(pub u32);

/// An SSA value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// Result of an instruction.
    Inst(InstId),
    /// The `n`-th function argument.
    Arg(u32),
    /// Integer constant (stored sign-extended into `i64`).
    ConstInt {
        /// Value type.
        ty: IrType,
        /// Sign-extended value bits.
        val: i64,
    },
    /// Floating constant (stored as bits so `Value` stays `Copy`+`Eq`-able).
    ConstFloat {
        /// Value type (F32/F64).
        ty: IrType,
        /// `f64::to_bits` of the value.
        bits: u64,
    },
    /// Address of a module global.
    Global(SymbolId),
    /// Address of a function (for outlined-function arguments to
    /// `__kmpc_fork_call`).
    FuncRef(SymbolId),
    /// Poison/undef of a given type.
    Undef(IrType),
}

impl Value {
    /// An `i32` constant.
    pub fn i32(v: i32) -> Value {
        Value::ConstInt {
            ty: IrType::I32,
            val: v as i64,
        }
    }

    /// An `i64` constant.
    pub fn i64(v: i64) -> Value {
        Value::ConstInt {
            ty: IrType::I64,
            val: v,
        }
    }

    /// An `i1` constant.
    pub fn bool(v: bool) -> Value {
        Value::ConstInt {
            ty: IrType::I1,
            val: v as i64,
        }
    }

    /// An integer constant of arbitrary integer type, wrapped to width.
    pub fn int(ty: IrType, v: i64) -> Value {
        debug_assert!(ty.is_int());
        Value::ConstInt {
            ty,
            val: ty.wrap(v),
        }
    }

    /// A floating constant.
    pub fn float(ty: IrType, v: f64) -> Value {
        debug_assert!(ty.is_float());
        Value::ConstFloat {
            ty,
            bits: v.to_bits(),
        }
    }

    /// The constant integer payload, if this is one.
    pub fn as_const_int(self) -> Option<i64> {
        match self {
            Value::ConstInt { val, .. } => Some(val),
            _ => None,
        }
    }

    /// The constant float payload, if this is one.
    pub fn as_const_float(self) -> Option<f64> {
        match self {
            Value::ConstFloat { bits, .. } => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// True for the zero integer constant.
    pub fn is_zero_int(self) -> bool {
        matches!(self, Value::ConstInt { val: 0, .. })
    }

    /// True for the one integer constant.
    pub fn is_one_int(self) -> bool {
        matches!(self, Value::ConstInt { val: 1, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Value::i32(-1).as_const_int(), Some(-1));
        assert_eq!(Value::bool(true).as_const_int(), Some(1));
        assert_eq!(Value::float(IrType::F64, 2.5).as_const_float(), Some(2.5));
        assert!(Value::int(IrType::I32, 0).is_zero_int());
        assert!(Value::int(IrType::I64, 1).is_one_int());
    }

    #[test]
    fn int_constructor_wraps() {
        let v = Value::int(IrType::I8, 255);
        assert_eq!(v.as_const_int(), Some(-1));
    }

    #[test]
    fn value_is_small_and_copy() {
        // Keep Value cheap: it is passed around everywhere.
        assert!(std::mem::size_of::<Value>() <= 24);
        let v = Value::i64(7);
        let w = v; // Copy
        assert_eq!(v, w);
    }
}
