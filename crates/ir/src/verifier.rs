//! IR well-formedness verifier. Checked after codegen and after every
//! mid-end/OpenMPIRBuilder transformation in tests — the paper's skeleton
//! invariants (explicit blocks, identifiable IV and trip count) have their
//! own checker in `omplt-ompirb`; this one covers basic structural rules.

use crate::function::{BlockId, Function};
use crate::inst::{Inst, Terminator};
use crate::types::IrType;
use crate::value::Value;

/// A structural error found by [`verify_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Verifies one function; returns all problems found.
pub fn verify_function(f: &Function) -> Vec<VerifyError> {
    omplt_trace::count("ir.verify.functions", 1);
    let mut errs = Vec::new();
    let nblocks = f.blocks.len() as u32;
    let ninsts = f.insts.len() as u32;
    let preds = f.predecessors();
    // Phi-coherence rules only apply to reachable blocks: transformations
    // (tile/collapse) abandon old loop scaffolding, leaving dead blocks with
    // stale edges until SimplifyCfg sweeps them.
    let mut reachable = vec![false; f.blocks.len()];
    for bb in f.reverse_postorder() {
        reachable[bb.0 as usize] = true;
    }

    let check_val = |v: Value, ctx: &str, errs: &mut Vec<VerifyError>| match v {
        Value::Inst(id) if id.0 >= ninsts => errs.push(VerifyError(format!(
            "{ctx}: reference to out-of-range inst %{}",
            id.0
        ))),
        Value::Arg(i) if i as usize >= f.params.len() => errs.push(VerifyError(format!(
            "{ctx}: reference to out-of-range arg {i}"
        ))),
        _ => {}
    };

    // Every instruction must belong to exactly one block.
    let mut owner = vec![0usize; f.insts.len()];
    for b in &f.blocks {
        for &i in &b.insts {
            if i.0 >= ninsts {
                errs.push(VerifyError(format!(
                    "block {} lists out-of-range inst %{}",
                    b.name, i.0
                )));
                continue;
            }
            owner[i.0 as usize] += 1;
        }
    }
    for (i, &n) in owner.iter().enumerate() {
        if n > 1 {
            errs.push(VerifyError(format!("inst %{i} appears in {n} blocks")));
        }
    }

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let ctx = format!("block {}.{bi}", b.name);
        match &b.term {
            None => errs.push(VerifyError(format!("{ctx}: missing terminator"))),
            Some(t) => {
                for s in t.successors() {
                    if s.0 >= nblocks {
                        errs.push(VerifyError(format!(
                            "{ctx}: branch to out-of-range block {}",
                            s.0
                        )));
                    }
                }
                match t {
                    Terminator::CondBr { cond, .. } => {
                        check_val(*cond, &ctx, &mut errs);
                        if f.value_type(*cond) != IrType::I1 {
                            errs.push(VerifyError(format!("{ctx}: cond-br condition is not i1")));
                        }
                    }
                    Terminator::Ret(Some(v)) => {
                        check_val(*v, &ctx, &mut errs);
                        if f.ret == IrType::Void {
                            errs.push(VerifyError(format!(
                                "{ctx}: ret with value in void function"
                            )));
                        }
                    }
                    Terminator::Ret(None) if f.ret != IrType::Void => {
                        errs.push(VerifyError(format!("{ctx}: bare ret in non-void function")));
                    }
                    _ => {}
                }
            }
        }

        for (pos, &iid) in b.insts.iter().enumerate() {
            if iid.0 >= ninsts {
                continue;
            }
            let inst = f.inst(iid);
            let ictx = format!("{ctx} inst %{}", iid.0);
            for op in inst.operands() {
                check_val(op, &ictx, &mut errs);
            }
            match inst {
                Inst::Phi { incoming, .. } if reachable[bi] => {
                    if pos != 0 && !matches!(f.inst(b.insts[pos - 1]), Inst::Phi { .. }) {
                        errs.push(VerifyError(format!("{ictx}: phi not at block start")));
                    }
                    // Each incoming edge must come from an actual predecessor.
                    for (from, _) in incoming {
                        if from.0 >= nblocks {
                            errs.push(VerifyError(format!(
                                "{ictx}: phi edge from out-of-range block"
                            )));
                        } else if bid.0 < nblocks && !preds[bi].contains(from) {
                            errs.push(VerifyError(format!(
                                "{ictx}: phi edge from non-predecessor {}.{}",
                                f.block(*from).name,
                                from.0
                            )));
                        }
                    }
                    // And every predecessor must be covered.
                    for p in &preds[bi] {
                        if !incoming.iter().any(|(from, _)| from == p) {
                            errs.push(VerifyError(format!(
                                "{ictx}: phi missing edge for predecessor {}.{}",
                                f.block(*p).name,
                                p.0
                            )));
                        }
                    }
                }
                Inst::Store { val, .. } if f.value_type(*val) == IrType::Void => {
                    errs.push(VerifyError(format!("{ictx}: store of void value")));
                }
                _ => {}
            }
        }
    }
    errs
}

/// Verifies every function in `m`, prefixing each error with the function
/// name so module-level reports stay attributable.
pub fn verify_module(m: &crate::module::Module) -> Vec<VerifyError> {
    let _span = omplt_trace::span("ir.verify");
    let mut errs = Vec::new();
    for f in &m.functions {
        for e in verify_function(f) {
            errs.push(VerifyError(format!("@{}: {}", f.name, e.0)));
        }
    }
    errs
}

/// Panics with a readable report if `f` is malformed (test helper).
pub fn assert_verified(f: &Function) {
    let errs = verify_function(f);
    assert!(
        errs.is_empty(),
        "IR verification failed for @{}:\n{}",
        f.name,
        errs.iter()
            .map(|e| format!("  - {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::inst::BinOpKind;

    #[test]
    fn accepts_well_formed() {
        let mut f = Function::new("ok", vec![IrType::I32], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let v = b.bin(BinOpKind::Add, Value::Arg(0), Value::i32(1));
            b.ret(Some(v));
        }
        assert!(verify_function(&f).is_empty());
    }

    #[test]
    fn rejects_missing_terminator() {
        let f = Function::new("bad", vec![], IrType::Void);
        let errs = verify_function(&f);
        assert!(
            errs.iter().any(|e| e.0.contains("missing terminator")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_non_i1_condition() {
        let mut f = Function::new("bad", vec![], IrType::Void);
        let e = f.entry();
        let other = f.add_block("x");
        f.block_mut(other).term = Some(Terminator::Ret(None));
        f.block_mut(e).term = Some(Terminator::CondBr {
            cond: Value::i32(1),
            then_bb: other,
            else_bb: other,
            loop_md: None,
        });
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.0.contains("not i1")), "{errs:?}");
    }

    #[test]
    fn rejects_phi_from_non_predecessor() {
        let mut f = Function::new("bad", vec![], IrType::Void);
        let e = f.entry();
        let b1 = f.add_block("b1");
        let b2 = f.add_block("b2");
        f.block_mut(e).term = Some(Terminator::Br {
            target: b1,
            loop_md: None,
        });
        f.push_inst(
            b1,
            Inst::Phi {
                ty: IrType::I32,
                incoming: vec![(b2, Value::i32(0))],
            },
        );
        f.block_mut(b1).term = Some(Terminator::Ret(None));
        f.block_mut(b2).term = Some(Terminator::Ret(None));
        let errs = verify_function(&f);
        assert!(
            errs.iter().any(|e| e.0.contains("non-predecessor")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.0.contains("missing edge")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let mut f = Function::new("bad", vec![], IrType::I32);
        let e = f.entry();
        f.block_mut(e).term = Some(Terminator::Ret(None));
        let errs = verify_function(&f);
        assert!(errs.iter().any(|e| e.0.contains("bare ret")), "{errs:?}");
    }
}
