//! Loop metadata — the analogue of LLVM's `llvm.loop.unroll.*` metadata.
//!
//! The shadow-AST partial unroll relies on this channel (paper §2.1): the
//! front-end merely strip-mines and attaches `llvm.loop.unroll.count` to the
//! inner loop; "no duplication takes place until" the mid-end `LoopUnroll`
//! pass consumes the metadata. The metadata attaches to the loop's **latch
//! branch**, as in LLVM.

/// Unroll request carried on a loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnrollHint {
    /// `llvm.loop.unroll.full` — fully unroll (requires a constant trip
    /// count).
    Full,
    /// `llvm.loop.unroll.count(n)` — partially unroll by factor `n`.
    Count(u64),
    /// `llvm.loop.unroll.enable` — unroll with a pass-chosen heuristic
    /// factor.
    Enable,
    /// `llvm.loop.unroll.disable` — set after a loop has been processed so
    /// it is not unrolled again.
    Disable,
}

/// Metadata node attached to a loop's latch terminator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoopMetadata {
    /// Unroll directive for the `LoopUnroll` pass.
    pub unroll: Option<UnrollHint>,
    /// `llvm.loop.vectorize.enable`-style marker emitted for `simd` loops
    /// (recorded but not acted upon by the mid-end; see DESIGN.md).
    pub vectorize_enable: bool,
    /// Marks loops emitted by `create_canonical_loop` (used by tests to
    /// locate skeleton loops).
    pub is_canonical: bool,
    /// `safelen(n)` clause value: lanes beyond this distance may not execute
    /// concurrently. 0 means unset (no limit beyond what dependences allow).
    pub safelen: u8,
    /// `simdlen(n)` clause value: the *preferred* vector width. 0 means
    /// unset (the widening pass uses its configured width).
    pub simdlen: u8,
}

impl LoopMetadata {
    /// Metadata with only an unroll hint.
    pub fn unroll(hint: UnrollHint) -> LoopMetadata {
        LoopMetadata {
            unroll: Some(hint),
            ..Default::default()
        }
    }

    /// Marks this loop as already-processed (the `LoopUnroll` pass calls
    /// this on loops it transforms, mirroring `llvm.loop.unroll.disable`).
    pub fn disabled(mut self) -> LoopMetadata {
        self.unroll = Some(UnrollHint::Disable);
        self
    }

    /// True if any property is set (worth printing).
    pub fn is_interesting(&self) -> bool {
        self.unroll.is_some()
            || self.vectorize_enable
            || self.is_canonical
            || self.safelen != 0
            || self.simdlen != 0
    }

    /// Textual rendering for the IR printer, LLVM-flavored.
    pub fn print(&self) -> String {
        let mut parts = Vec::new();
        match self.unroll {
            Some(UnrollHint::Full) => parts.push("!\"llvm.loop.unroll.full\"".to_string()),
            Some(UnrollHint::Count(n)) => {
                parts.push(format!("!\"llvm.loop.unroll.count\", i32 {n}"))
            }
            Some(UnrollHint::Enable) => parts.push("!\"llvm.loop.unroll.enable\"".to_string()),
            Some(UnrollHint::Disable) => parts.push("!\"llvm.loop.unroll.disable\"".to_string()),
            None => {}
        }
        if self.vectorize_enable {
            parts.push("!\"llvm.loop.vectorize.enable\", i1 true".to_string());
        }
        if self.safelen != 0 {
            parts.push(format!(
                "!\"llvm.loop.vectorize.safelen\", i32 {}",
                self.safelen
            ));
        }
        if self.simdlen != 0 {
            parts.push(format!(
                "!\"llvm.loop.vectorize.width\", i32 {}",
                self.simdlen
            ));
        }
        if self.is_canonical {
            parts.push("!\"omplt.loop.canonical\"".to_string());
        }
        format!("!{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unroll_constructors() {
        let m = LoopMetadata::unroll(UnrollHint::Count(4));
        assert_eq!(m.unroll, Some(UnrollHint::Count(4)));
        assert!(m.is_interesting());
        let d = m.disabled();
        assert_eq!(d.unroll, Some(UnrollHint::Disable));
    }

    #[test]
    fn print_forms() {
        assert!(LoopMetadata::unroll(UnrollHint::Full)
            .print()
            .contains("llvm.loop.unroll.full"));
        assert!(LoopMetadata::unroll(UnrollHint::Count(2))
            .print()
            .contains("count\", i32 2"));
        let v = LoopMetadata {
            vectorize_enable: true,
            ..LoopMetadata::default()
        };
        assert!(v.print().contains("vectorize.enable"));
    }

    #[test]
    fn default_is_uninteresting() {
        assert!(!LoopMetadata::default().is_interesting());
    }
}
