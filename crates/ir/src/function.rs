//! Functions and basic blocks as index arenas (flat `Vec`s addressed by
//! typed ids — the allocation-friendly layout the performance guide
//! recommends for graph-shaped IRs).

use crate::inst::{Inst, Terminator};
use crate::types::IrType;
use crate::value::Value;

/// Index of an instruction within its function.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a basic block within its function.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// One basic block: an ordered list of instruction ids plus a terminator.
#[derive(Clone, Debug)]
pub struct BlockData {
    /// Debug name (`preheader`, `header`, `body`, …).
    pub name: String,
    /// Instructions in execution order.
    pub insts: Vec<InstId>,
    /// The terminator; `None` only while the block is under construction.
    pub term: Option<Terminator>,
}

/// A function under construction or completed.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<IrType>,
    /// Return type.
    pub ret: IrType,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Block arena; `blocks[0]` is the entry block.
    pub blocks: Vec<BlockData>,
}

impl Function {
    /// Creates a function with an (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<IrType>, ret: IrType) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            insts: Vec::new(),
            blocks: vec![BlockData {
                name: "entry".into(),
                insts: Vec::new(),
                term: None,
            }],
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            name: name.into(),
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Appends an instruction to a block, returning its value.
    pub fn push_inst(&mut self, bb: BlockId, inst: Inst) -> Value {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[bb.0 as usize].insts.push(id);
        Value::Inst(id)
    }

    /// Inserts an instruction at the *front* of a block (after any phis).
    /// Used by worksharing to shift the induction variable before body code.
    pub fn prepend_inst(&mut self, bb: BlockId, inst: Inst) -> Value {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        let list = &mut self.blocks[bb.0 as usize].insts;
        let at = list
            .iter()
            .position(|&i| !matches!(self.insts[i.0 as usize], Inst::Phi { .. }))
            .unwrap_or(list.len());
        list.insert(at, id);
        Value::Inst(id)
    }

    /// Accesses a block.
    pub fn block(&self, bb: BlockId) -> &BlockData {
        &self.blocks[bb.0 as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, bb: BlockId) -> &mut BlockData {
        &mut self.blocks[bb.0 as usize]
    }

    /// Accesses an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.0 as usize]
    }

    /// The type of any value in this function's context.
    pub fn value_type(&self, v: Value) -> IrType {
        match v {
            Value::Inst(id) => {
                let inst = self.inst(id);
                inst.result_type(|op| self.value_type(op))
            }
            Value::Arg(i) => self.params[i as usize],
            Value::ConstInt { ty, .. } | Value::ConstFloat { ty, .. } | Value::Undef(ty) => ty,
            Value::Global(_) | Value::FuncRef(_) => IrType::Ptr,
        }
    }

    /// Successors of a block (empty while unterminated).
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        self.block(bb)
            .term
            .as_ref()
            .map_or_else(Vec::new, |t| t.successors())
    }

    /// Computes the predecessor lists of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(t) = &b.term {
                for s in t.successors() {
                    preds[s.0 as usize].push(BlockId(i as u32));
                }
            }
        }
        preds
    }

    /// Blocks reachable from entry, in reverse-postorder.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit "exit" marker stack.
        let mut stack: Vec<(BlockId, bool)> = vec![(self.entry(), false)];
        while let Some((bb, processed)) = stack.pop() {
            if processed {
                post.push(bb);
                continue;
            }
            if visited[bb.0 as usize] {
                continue;
            }
            visited[bb.0 as usize] = true;
            stack.push((bb, true));
            for s in self.successors(bb) {
                if !visited[s.0 as usize] {
                    stack.push((s, false));
                }
            }
        }
        post.reverse();
        post
    }

    /// Number of instructions reachable in any block (simple size metric for
    /// heuristics).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOpKind;

    fn sample() -> Function {
        // entry -> a -> b ; entry -> b
        let mut f = Function::new("f", vec![IrType::I32], IrType::I32);
        let a = f.add_block("a");
        let b = f.add_block("b");
        f.block_mut(f.entry()).term = Some(Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: a,
            else_bb: b,
            loop_md: None,
        });
        f.block_mut(a).term = Some(Terminator::Br {
            target: b,
            loop_md: None,
        });
        f.block_mut(b).term = Some(Terminator::Ret(Some(Value::i32(0))));
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = sample();
        let preds = f.predecessors();
        assert_eq!(f.successors(f.entry()).len(), 2);
        assert_eq!(preds[2].len(), 2); // b has entry and a
        assert_eq!(preds[0].len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = sample();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo.len(), 3);
        // b must come after a (a branches to b) and after entry
        let pos = |id: BlockId| rpo.iter().position(|&x| x == id).unwrap();
        assert!(pos(BlockId(2)) > pos(BlockId(1)));
    }

    #[test]
    fn value_types() {
        let mut f = Function::new("g", vec![IrType::I64], IrType::Void);
        let e = f.entry();
        let v = f.push_inst(
            e,
            Inst::Bin {
                op: BinOpKind::Add,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
        );
        assert_eq!(f.value_type(v), IrType::I64);
        assert_eq!(f.value_type(Value::Arg(0)), IrType::I64);
        assert_eq!(f.value_type(Value::bool(false)), IrType::I1);
    }

    #[test]
    fn unreachable_blocks_not_in_rpo() {
        let mut f = sample();
        let dead = f.add_block("dead");
        f.block_mut(dead).term = Some(Terminator::Ret(None));
        assert_eq!(f.reverse_postorder().len(), 3);
    }
}
