//! # omplt-ir
//!
//! An LLVM-like typed intermediate representation plus an [`IrBuilder`] in
//! the spirit of `llvm::IRBuilder`: it appends instructions after the current
//! insertion point and performs on-the-fly algebraic simplification so that
//! "instructions that would later be optimized away anyway" are never created
//! (paper §1.3).
//!
//! Layout follows the index-arena idiom: a [`Function`] owns flat `Vec`
//! arenas of instructions and basic blocks addressed by [`InstId`]/[`BlockId`],
//! and values are the small `Copy` enum [`Value`]. Loop metadata
//! ([`LoopMetadata`], the analogue of `llvm.loop.unroll.*`) attaches to the
//! latch terminator and is consumed by the mid-end `LoopUnroll` pass.

pub mod builder;
pub mod function;
pub mod inst;
pub mod metadata;
pub mod module;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use builder::{eval_icmp, fold_bin, IrBuilder};
pub use function::{BlockData, BlockId, Function, InstId};
pub use inst::{BinOpKind, Callee, CastOp, CmpPred, Inst, Terminator};
pub use metadata::{LoopMetadata, UnrollHint};
pub use module::{ExternFn, GlobalVar, Module};
pub use printer::{print_function, print_module};
pub use types::IrType;
pub use value::{SymbolId, Value};
pub use verifier::{assert_verified, verify_function, verify_module, VerifyError};
