//! Instruction and terminator definitions.

use crate::function::BlockId;
use crate::metadata::LoopMetadata;
use crate::types::IrType;
use crate::value::{SymbolId, Value};

/// Integer/float binary operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOpKind {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    Shl,
    AShr,
    LShr,
    And,
    Or,
    Xor,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
}

impl BinOpKind {
    /// LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOpKind::Add => "add",
            BinOpKind::Sub => "sub",
            BinOpKind::Mul => "mul",
            BinOpKind::SDiv => "sdiv",
            BinOpKind::UDiv => "udiv",
            BinOpKind::SRem => "srem",
            BinOpKind::URem => "urem",
            BinOpKind::Shl => "shl",
            BinOpKind::AShr => "ashr",
            BinOpKind::LShr => "lshr",
            BinOpKind::And => "and",
            BinOpKind::Or => "or",
            BinOpKind::Xor => "xor",
            BinOpKind::FAdd => "fadd",
            BinOpKind::FSub => "fsub",
            BinOpKind::FMul => "fmul",
            BinOpKind::FDiv => "fdiv",
            BinOpKind::FRem => "frem",
        }
    }

    /// True for the floating-point ops.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOpKind::FAdd | BinOpKind::FSub | BinOpKind::FMul | BinOpKind::FDiv | BinOpKind::FRem
        )
    }
}

/// Comparison predicates (`icmp`/`fcmp`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
}

impl CmpPred {
    /// LLVM mnemonic (without the `icmp`/`fcmp` prefix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::FEq => "oeq",
            CmpPred::FNe => "one",
            CmpPred::FLt => "olt",
            CmpPred::FLe => "ole",
            CmpPred::FGt => "ogt",
            CmpPred::FGe => "oge",
        }
    }

    /// True for the floating-point predicates.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            CmpPred::FEq | CmpPred::FNe | CmpPred::FLt | CmpPred::FLe | CmpPred::FGt | CmpPred::FGe
        )
    }
}

/// Cast operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum CastOp {
    Trunc,
    ZExt,
    SExt,
    SiToFp,
    UiToFp,
    FpToSi,
    FpToUi,
    FpTrunc,
    FpExt,
    PtrToInt,
    IntToPtr,
}

impl CastOp {
    /// LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::SiToFp => "sitofp",
            CastOp::UiToFp => "uitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::FpToUi => "fptoui",
            CastOp::FpTrunc => "fptrunc",
            CastOp::FpExt => "fpext",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
        }
    }
}

/// Who a call targets. All symbols live in the module's interner; the
/// interpreter resolves module-defined functions first, then the OpenMP/IO
/// runtime shims.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Callee(pub SymbolId);

/// A non-terminator instruction.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Stack allocation of `count` elements of `ty`; yields `ptr`.
    Alloca {
        /// Element type.
        ty: IrType,
        /// Number of elements.
        count: u64,
        /// Debug name of the variable this backs.
        name: String,
    },
    /// Typed load.
    Load {
        /// Loaded type.
        ty: IrType,
        /// Address.
        ptr: Value,
    },
    /// Typed store.
    Store {
        /// Stored value.
        val: Value,
        /// Address.
        ptr: Value,
    },
    /// Pointer arithmetic: `ptr + index * elem_size` (byte-scaled GEP).
    Gep {
        /// Base pointer.
        ptr: Value,
        /// Element index (any integer type; sign-extended).
        index: Value,
        /// Element size in bytes.
        elem_size: u64,
    },
    /// Binary operation; the result type is the operand type.
    Bin {
        /// Operation.
        op: BinOpKind,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Comparison; yields `i1`.
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Conversion.
    Cast {
        /// Operation.
        op: CastOp,
        /// Operand.
        val: Value,
        /// Destination type.
        to: IrType,
    },
    /// `cond ? t : f`.
    Select {
        /// `i1` condition.
        cond: Value,
        /// Value if true.
        t: Value,
        /// Value if false.
        f: Value,
    },
    /// SSA phi. Incoming edges may be extended while the skeleton is being
    /// built (`IrBuilder::add_phi_incoming`).
    Phi {
        /// Value type.
        ty: IrType,
        /// `(predecessor, value)` pairs.
        incoming: Vec<(BlockId, Value)>,
    },
    /// Function call.
    Call {
        /// Target.
        callee: Callee,
        /// Arguments.
        args: Vec<Value>,
        /// Return type.
        ty: IrType,
    },
}

impl Inst {
    /// The type of the instruction's result (`Void` for `store`).
    pub fn result_type(&self, value_type: impl Fn(Value) -> IrType) -> IrType {
        match self {
            Inst::Alloca { .. } | Inst::Gep { .. } => IrType::Ptr,
            Inst::Load { ty, .. } | Inst::Phi { ty, .. } | Inst::Call { ty, .. } => *ty,
            Inst::Store { .. } => IrType::Void,
            Inst::Bin { lhs, .. } => value_type(*lhs),
            Inst::Cmp { .. } => IrType::I1,
            Inst::Cast { to, .. } => *to,
            Inst::Select { t, .. } => value_type(*t),
        }
    }

    /// All value operands (for remapping during cloning).
    pub fn operands(&self) -> Vec<Value> {
        match self {
            Inst::Alloca { .. } => Vec::new(),
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { val, ptr } => vec![*val, *ptr],
            Inst::Gep { ptr, index, .. } => vec![*ptr, *index],
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Cast { val, .. } => vec![*val],
            Inst::Select { cond, t, f } => vec![*cond, *t, *f],
            Inst::Phi { incoming, .. } => incoming.iter().map(|(_, v)| *v).collect(),
            Inst::Call { args, .. } => args.clone(),
        }
    }

    /// Rewrites every operand through `f` (used by block cloning in the
    /// unroll pass).
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Inst::Alloca { .. } => {}
            Inst::Load { ptr, .. } => *ptr = f(*ptr),
            Inst::Store { val, ptr } => {
                *val = f(*val);
                *ptr = f(*ptr);
            }
            Inst::Gep { ptr, index, .. } => {
                *ptr = f(*ptr);
                *index = f(*index);
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Cast { val, .. } => *val = f(*val),
            Inst::Select { cond, t, f: fv } => {
                *cond = f(*cond);
                *t = f(*t);
                *fv = f(*fv);
            }
            Inst::Phi { incoming, .. } => {
                for (_, v) in incoming.iter_mut() {
                    *v = f(*v);
                }
            }
            Inst::Call { args, .. } => {
                for a in args.iter_mut() {
                    *a = f(*a);
                }
            }
        }
    }
}

/// A basic-block terminator.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional branch. May carry loop metadata when it is a latch.
    Br {
        /// Target block.
        target: BlockId,
        /// Loop metadata (latch branches only).
        loop_md: Option<LoopMetadata>,
    },
    /// Conditional branch.
    CondBr {
        /// `i1` condition.
        cond: Value,
        /// Taken when true.
        then_bb: BlockId,
        /// Taken when false.
        else_bb: BlockId,
        /// Loop metadata (latch branches only).
        loop_md: Option<LoopMetadata>,
    },
    /// Function return.
    Ret(Option<Value>),
    /// Unreachable.
    Unreachable,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target, .. } => vec![*target],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Unreachable => Vec::new(),
        }
    }

    /// Rewrites successor block ids through `f`.
    pub fn map_blocks(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Br { target, .. } => *target = f(*target),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            _ => {}
        }
    }

    /// Rewrites value operands through `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Terminator::CondBr { cond, .. } => *cond = f(*cond),
            Terminator::Ret(Some(v)) => *v = f(*v),
            _ => {}
        }
    }

    /// The attached loop metadata, if any.
    pub fn loop_md(&self) -> Option<&LoopMetadata> {
        match self {
            Terminator::Br { loop_md, .. } | Terminator::CondBr { loop_md, .. } => loop_md.as_ref(),
            _ => None,
        }
    }

    /// Mutable access to the metadata slot.
    pub fn loop_md_mut(&mut self) -> Option<&mut Option<LoopMetadata>> {
        match self {
            Terminator::Br { loop_md, .. } | Terminator::CondBr { loop_md, .. } => Some(loop_md),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors() {
        let b = Terminator::Br {
            target: BlockId(3),
            loop_md: None,
        };
        assert_eq!(b.successors(), vec![BlockId(3)]);
        let c = Terminator::CondBr {
            cond: Value::bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            loop_md: None,
        };
        assert_eq!(c.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn operand_mapping() {
        let mut i = Inst::Bin {
            op: BinOpKind::Add,
            lhs: Value::i32(1),
            rhs: Value::i32(2),
        };
        i.map_operands(|v| match v.as_const_int() {
            Some(n) => Value::i32(n as i32 * 10),
            None => v,
        });
        assert_eq!(i.operands(), vec![Value::i32(10), Value::i32(20)]);
    }

    #[test]
    fn result_types() {
        let vt = |_v: Value| IrType::I32;
        assert_eq!(
            Inst::Cmp {
                pred: CmpPred::Ult,
                lhs: Value::i32(0),
                rhs: Value::i32(1)
            }
            .result_type(vt),
            IrType::I1
        );
        assert_eq!(
            Inst::Alloca {
                ty: IrType::I32,
                count: 1,
                name: String::new()
            }
            .result_type(vt),
            IrType::Ptr
        );
        assert_eq!(
            Inst::Store {
                val: Value::i32(0),
                ptr: Value::Undef(IrType::Ptr)
            }
            .result_type(vt),
            IrType::Void
        );
    }

    #[test]
    fn terminator_metadata_slot() {
        let mut t = Terminator::Br {
            target: BlockId(0),
            loop_md: None,
        };
        *t.loop_md_mut().unwrap() = Some(LoopMetadata::unroll(crate::metadata::UnrollHint::Full));
        assert!(t.loop_md().unwrap().unroll.is_some());
        assert!(Terminator::Ret(None).loop_md().is_none());
    }
}
