//! Textual IR printer (`.ll`-flavored), used by `ompltc --emit-ir`, golden
//! tests and debugging.

use crate::function::{BlockId, Function, InstId};
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::value::Value;
use std::fmt::Write as _;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(
            out,
            "@{} = global [{} x i8] zeroinitializer",
            m.symbol_name(g.sym),
            g.size
        );
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }
    for e in &m.externs {
        let ps: Vec<String> = e.params.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "declare {} @{}({})",
            e.ret,
            m.symbol_name(e.sym),
            ps.join(", ")
        );
    }
    if !m.externs.is_empty() {
        out.push('\n');
    }
    for f in &m.functions {
        out.push_str(&print_function(f, m));
        out.push('\n');
    }
    out
}

/// Prints one function.
pub fn print_function(f: &Function, m: &Module) -> String {
    let mut out = String::new();
    let ps: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %arg{i}"))
        .collect();
    let _ = writeln!(out, "define {} @{}({}) {{", f.ret, f.name, ps.join(", "));
    let preds = f.predecessors();
    for (i, b) in f.blocks.iter().enumerate() {
        let id = BlockId(i as u32);
        // Every label carries a predecessor comment (LLVM `-print-after-all`
        // style), normalized so dumps diff cleanly: the entry block is bare,
        // any other predecessor-less block says so explicitly.
        let _ = write!(out, "{}:", block_label(f, id));
        if i != 0 {
            if preds[i].is_empty() {
                out.push_str("    ; no predecessors");
            } else {
                let ps: Vec<String> = preds[i]
                    .iter()
                    .map(|p| format!("%{}", block_label(f, *p)))
                    .collect();
                let _ = write!(out, "    ; preds = {}", ps.join(", "));
            }
        }
        out.push('\n');
        for &inst in &b.insts {
            let _ = writeln!(out, "  {}", print_inst(f, m, inst));
        }
        match &b.term {
            Some(t) => {
                let _ = writeln!(out, "  {}", print_term(f, t));
            }
            None => {
                let _ = writeln!(out, "  ; <no terminator>");
            }
        }
    }
    out.push_str("}\n");
    out
}

fn block_label(f: &Function, id: BlockId) -> String {
    format!("{}.{}", f.block(id).name, id.0)
}

fn val(_f: &Function, v: Value) -> String {
    match v {
        Value::Inst(id) => format!("%{}", id.0),
        Value::Arg(i) => format!("%arg{i}"),
        Value::ConstInt { val, .. } => val.to_string(),
        Value::ConstFloat { bits, .. } => format!("{:e}", f64::from_bits(bits)),
        Value::Global(s) => format!("@g{}", s.0),
        Value::FuncRef(s) => format!("@f{}", s.0),
        Value::Undef(_) => "undef".to_string(),
    }
}

fn tval(f: &Function, v: Value) -> String {
    format!("{} {}", f.value_type(v), val(f, v))
}

fn print_inst(f: &Function, m: &Module, id: InstId) -> String {
    let i = f.inst(id);
    let lhs = format!("%{}", id.0);
    match i {
        Inst::Alloca { ty, count, name } => {
            let n = if name.is_empty() {
                String::new()
            } else {
                format!("  ; {name}")
            };
            format!("{lhs} = alloca {ty}, i64 {count}{n}")
        }
        Inst::Load { ty, ptr } => format!("{lhs} = load {ty}, ptr {}", val(f, *ptr)),
        Inst::Store { val: v, ptr } => format!("store {}, ptr {}", tval(f, *v), val(f, *ptr)),
        Inst::Gep {
            ptr,
            index,
            elem_size,
        } => format!(
            "{lhs} = getelementptr i8, ptr {}, {} x {elem_size}",
            val(f, *ptr),
            tval(f, *index)
        ),
        Inst::Bin { op, lhs: l, rhs } => {
            format!(
                "{lhs} = {} {}, {}",
                op.mnemonic(),
                tval(f, *l),
                val(f, *rhs)
            )
        }
        Inst::Cmp { pred, lhs: l, rhs } => {
            let kind = if pred.is_float() { "fcmp" } else { "icmp" };
            format!(
                "{lhs} = {kind} {} {}, {}",
                pred.mnemonic(),
                tval(f, *l),
                val(f, *rhs)
            )
        }
        Inst::Cast { op, val: v, to } => {
            format!("{lhs} = {} {} to {to}", op.mnemonic(), tval(f, *v))
        }
        Inst::Select { cond, t, f: fv } => format!(
            "{lhs} = select {}, {}, {}",
            tval(f, *cond),
            tval(f, *t),
            tval(f, *fv)
        ),
        Inst::Phi { ty, incoming } => {
            let edges: Vec<String> = incoming
                .iter()
                .map(|(b, v)| format!("[ {}, %{} ]", val(f, *v), block_label(f, *b)))
                .collect();
            format!("{lhs} = phi {ty} {}", edges.join(", "))
        }
        Inst::Call { callee, args, ty } => {
            let a: Vec<String> = args
                .iter()
                .map(|v| match v {
                    Value::FuncRef(s) | Value::Global(s) => {
                        format!("ptr @{}", m.symbol_name(*s))
                    }
                    other => tval(f, *other),
                })
                .collect();
            let name = m.symbol_name(callee.0);
            if *ty == crate::types::IrType::Void {
                format!("call void @{name}({})", a.join(", "))
            } else {
                format!("{lhs} = call {ty} @{name}({})", a.join(", "))
            }
        }
    }
}

fn print_term(f: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Br { target, loop_md } => {
            let md = loop_md
                .filter(|m| m.is_interesting())
                .map(|m| format!(", !llvm.loop {}", m.print()))
                .unwrap_or_default();
            format!("br label %{}{md}", block_label(f, *target))
        }
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
            loop_md,
        } => {
            let md = loop_md
                .filter(|m| m.is_interesting())
                .map(|m| format!(", !llvm.loop {}", m.print()))
                .unwrap_or_default();
            format!(
                "br {}, label %{}, label %{}{md}",
                tval(f, *cond),
                block_label(f, *then_bb),
                block_label(f, *else_bb)
            )
        }
        Terminator::Ret(Some(v)) => format!("ret {}", tval(f, *v)),
        Terminator::Ret(None) => "ret void".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::inst::CmpPred;
    use crate::types::IrType;

    #[test]
    fn prints_a_small_function() {
        let mut m = Module::new();
        let print_sym = m.intern("print_i64");
        let mut f = Function::new("main", vec![], IrType::I32);
        {
            let mut b = IrBuilder::new(&mut f);
            let p = b.alloca(IrType::I64, 1, "x");
            b.store(Value::i64(42), p);
            let v = b.load(IrType::I64, p);
            b.call(print_sym, vec![v], IrType::Void);
            b.ret(Some(Value::i32(0)));
        }
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("define i32 @main()"), "{text}");
        assert!(text.contains("alloca i64"), "{text}");
        assert!(text.contains("store i64 42"), "{text}");
        assert!(text.contains("call void @print_i64"), "{text}");
        assert!(text.contains("ret i32 0"), "{text}");
    }

    #[test]
    fn block_labels_carry_normalized_pred_comments() {
        let mut m = Module::new();
        let mut f = Function::new("g", vec![IrType::I64], IrType::Void);
        let orphan;
        {
            let mut b = IrBuilder::new(&mut f);
            let exit = b.create_block("exit");
            orphan = b.create_block("orphan");
            b.br(exit);
            b.set_insert_point(exit);
            b.ret(None);
            b.set_insert_point(orphan);
            b.ret(None);
        }
        let _ = orphan;
        m.add_function(f);
        let text = print_module(&m);
        // Entry: bare label, no comment (it has no predecessors by design).
        assert!(text.contains("entry.0:\n"), "{text}");
        // Reachable non-entry block: explicit preds list.
        assert!(text.contains("exit.1:    ; preds = %entry.0\n"), "{text}");
        // Unreachable non-entry block: explicit "no predecessors" marker
        // rather than silently looking like the entry.
        assert!(text.contains("orphan.2:    ; no predecessors\n"), "{text}");
    }

    #[test]
    fn prints_loop_metadata_on_latch() {
        use crate::metadata::{LoopMetadata, UnrollHint};
        let mut m = Module::new();
        let mut f = Function::new("k", vec![IrType::I64], IrType::Void);
        {
            let mut b = IrBuilder::new(&mut f);
            let header = b.create_block("header");
            b.br(header);
            b.set_insert_point(header);
            let c = b.cmp(CmpPred::Ult, Value::Arg(0), Value::i64(4));
            let _ = c;
            b.br_with_md(header, LoopMetadata::unroll(UnrollHint::Count(2)));
        }
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("!llvm.loop"), "{text}");
        assert!(text.contains("llvm.loop.unroll.count\", i32 2"), "{text}");
    }
}
