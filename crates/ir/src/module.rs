//! Modules: functions, globals and the symbol interner.

use crate::function::Function;
use crate::types::IrType;
use crate::value::SymbolId;
use std::collections::HashMap;

/// A module-level global variable (zero-initialized byte region).
#[derive(Clone, Debug)]
pub struct GlobalVar {
    /// Symbol of the global.
    pub sym: SymbolId,
    /// Size in bytes.
    pub size: u64,
    /// Element type for the printer.
    pub ty: IrType,
    /// Optional initial words (little-endian per element of `ty`).
    pub init: Vec<i64>,
}

/// An external function declaration (runtime shims and unresolved callees).
#[derive(Clone, Debug)]
pub struct ExternFn {
    /// Symbol of the function.
    pub sym: SymbolId,
    /// Parameter types (variadic tail allowed at runtime).
    pub params: Vec<IrType>,
    /// Return type.
    pub ret: IrType,
}

/// A compiled module.
#[derive(Default, Debug)]
pub struct Module {
    /// Defined functions.
    pub functions: Vec<Function>,
    /// Global variables.
    pub globals: Vec<GlobalVar>,
    /// External declarations.
    pub externs: Vec<ExternFn>,
    symbols: Vec<String>,
    symbol_index: HashMap<String, SymbolId>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Interns a symbol name.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.symbol_index.get(name) {
            return id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(name.to_string());
        self.symbol_index.insert(name.to_string(), id);
        id
    }

    /// Resolves a symbol id to its name.
    pub fn symbol_name(&self, id: SymbolId) -> &str {
        &self.symbols[id.0 as usize]
    }

    /// Looks up an interned symbol without creating it.
    pub fn lookup_symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbol_index.get(name).copied()
    }

    /// Adds a function definition; its name is interned automatically.
    pub fn add_function(&mut self, f: Function) -> SymbolId {
        let sym = self.intern(&f.name.clone());
        self.functions.push(f);
        sym
    }

    /// Finds a defined function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Declares an external function (idempotent per name).
    pub fn declare_extern(&mut self, name: &str, params: Vec<IrType>, ret: IrType) -> SymbolId {
        let sym = self.intern(name);
        if !self.externs.iter().any(|e| e.sym == sym) {
            self.externs.push(ExternFn { sym, params, ret });
        }
        sym
    }

    /// Adds a zero-initialized global of `size` bytes.
    pub fn add_global(&mut self, name: &str, ty: IrType, size: u64) -> SymbolId {
        let sym = self.intern(name);
        self.globals.push(GlobalVar {
            sym,
            size,
            ty,
            init: Vec::new(),
        });
        sym
    }

    /// Finds a global by symbol.
    pub fn global(&self, sym: SymbolId) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.sym == sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut m = Module::new();
        let a = m.intern("foo");
        let b = m.intern("foo");
        let c = m.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.symbol_name(a), "foo");
        assert_eq!(m.lookup_symbol("bar"), Some(c));
        assert_eq!(m.lookup_symbol("baz"), None);
    }

    #[test]
    fn function_registry() {
        let mut m = Module::new();
        m.add_function(Function::new("main", vec![], IrType::I32));
        assert!(m.function("main").is_some());
        assert!(m.function("nope").is_none());
        m.function_mut("main").unwrap().add_block("x");
        assert_eq!(m.function("main").unwrap().blocks.len(), 2);
    }

    #[test]
    fn extern_declaration_is_idempotent() {
        let mut m = Module::new();
        m.declare_extern("__kmpc_fork_call", vec![IrType::Ptr], IrType::Void);
        m.declare_extern("__kmpc_fork_call", vec![IrType::Ptr], IrType::Void);
        assert_eq!(m.externs.len(), 1);
    }

    #[test]
    fn globals() {
        let mut m = Module::new();
        let g = m.add_global("data", IrType::F64, 80);
        assert_eq!(m.global(g).unwrap().size, 80);
    }
}
