//! IR-level types (a flat scalar type system, LLVM-style).

use std::fmt;

/// A first-class IR type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum IrType {
    /// No value (function returns only).
    Void,
    /// 1-bit boolean (comparison results).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// Untyped pointer (opaque, as in modern LLVM).
    Ptr,
}

impl IrType {
    /// True for the integer types (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            IrType::I1 | IrType::I8 | IrType::I16 | IrType::I32 | IrType::I64
        )
    }

    /// True for floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, IrType::F32 | IrType::F64)
    }

    /// Bit width of integer types (1 for `i1`), 0 otherwise.
    pub fn bits(self) -> u32 {
        match self {
            IrType::I1 => 1,
            IrType::I8 => 8,
            IrType::I16 => 16,
            IrType::I32 => 32,
            IrType::I64 => 64,
            _ => 0,
        }
    }

    /// Store size in bytes (pointers are 8; `i1` stores as one byte).
    pub fn size(self) -> u64 {
        match self {
            IrType::Void => 0,
            IrType::I1 | IrType::I8 => 1,
            IrType::I16 => 2,
            IrType::I32 | IrType::F32 => 4,
            IrType::I64 | IrType::F64 | IrType::Ptr => 8,
        }
    }

    /// The integer type with the given bit width.
    pub fn int_with_bits(bits: u32) -> IrType {
        match bits {
            1 => IrType::I1,
            8 => IrType::I8,
            16 => IrType::I16,
            32 => IrType::I32,
            64 => IrType::I64,
            other => panic!("unsupported integer width {other}"),
        }
    }

    /// Wraps `v` (sign-agnostic bits) to this integer type's width,
    /// sign-extending into `i64` storage.
    pub fn wrap(self, v: i64) -> i64 {
        let bits = self.bits();
        if bits == 0 || bits >= 64 {
            return v;
        }
        let shift = 64 - bits;
        (v << shift) >> shift
    }

    /// Wraps `v` to this integer type's width as an unsigned value.
    pub fn wrap_unsigned(self, v: i64) -> u64 {
        let bits = self.bits();
        if bits == 0 || bits >= 64 {
            return v as u64;
        }
        (v as u64) & ((1u64 << bits) - 1)
    }
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrType::Void => "void",
            IrType::I1 => "i1",
            IrType::I8 => "i8",
            IrType::I16 => "i16",
            IrType::I32 => "i32",
            IrType::I64 => "i64",
            IrType::F32 => "float",
            IrType::F64 => "double",
            IrType::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(IrType::I32.size(), 4);
        assert_eq!(IrType::Ptr.size(), 8);
        assert_eq!(IrType::I1.size(), 1);
        assert_eq!(IrType::F64.size(), 8);
    }

    #[test]
    fn wrap_signed() {
        assert_eq!(IrType::I8.wrap(255), -1);
        assert_eq!(IrType::I8.wrap(127), 127);
        assert_eq!(IrType::I32.wrap(i64::from(u32::MAX)), -1);
        assert_eq!(IrType::I64.wrap(-5), -5);
    }

    #[test]
    fn wrap_unsigned() {
        assert_eq!(IrType::I8.wrap_unsigned(-1), 255);
        assert_eq!(IrType::I32.wrap_unsigned(-1), u64::from(u32::MAX));
    }

    #[test]
    fn display() {
        assert_eq!(IrType::I64.to_string(), "i64");
        assert_eq!(IrType::Ptr.to_string(), "ptr");
        assert_eq!(IrType::F64.to_string(), "double");
    }

    #[test]
    fn int_with_bits_round_trip() {
        for t in [
            IrType::I1,
            IrType::I8,
            IrType::I16,
            IrType::I32,
            IrType::I64,
        ] {
            assert_eq!(IrType::int_with_bits(t.bits()), t);
        }
    }
}
