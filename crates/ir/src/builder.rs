//! `IrBuilder` — the analogue of `llvm::IRBuilder`: appends instructions at
//! an insertion point and "simplifies expressions (e.g. algebraic
//! simplifications) on-the-fly which avoids creating instructions that would
//! later be optimized away anyway" (paper §1.3).

use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOpKind, Callee, CastOp, CmpPred, Inst, Terminator};
use crate::metadata::LoopMetadata;
use crate::types::IrType;
use crate::value::{SymbolId, Value};

/// Instruction builder positioned inside a function.
pub struct IrBuilder<'f> {
    func: &'f mut Function,
    cur: BlockId,
}

impl<'f> IrBuilder<'f> {
    /// Creates a builder positioned at the function's entry block.
    pub fn new(func: &'f mut Function) -> Self {
        let entry = func.entry();
        IrBuilder { func, cur: entry }
    }

    /// The function being built.
    pub fn func(&self) -> &Function {
        self.func
    }

    /// Mutable access to the function (for structural surgery such as the
    /// OpenMPIRBuilder's loop transformations).
    pub fn func_mut(&mut self) -> &mut Function {
        self.func
    }

    /// Current insertion block.
    pub fn insert_block(&self) -> BlockId {
        self.cur
    }

    /// Moves the insertion point to `bb` (appending at its end).
    pub fn set_insert_point(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// Creates a new empty block (does not move the insertion point).
    pub fn create_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.func.block(self.cur).term.is_some()
    }

    // Note: inserting into an already-terminated block is allowed and
    // meaningful — the terminator is stored separately, so appended
    // instructions still execute before it. The OpenMPIRBuilder relies on
    // this to grow preheaders of existing loop skeletons.
    fn push(&mut self, inst: Inst) -> Value {
        self.func.push_inst(self.cur, inst)
    }

    /// The type of `v` in the current function.
    pub fn type_of(&self, v: Value) -> IrType {
        self.func.value_type(v)
    }

    // ---- memory ----

    /// Stack allocation.
    pub fn alloca(&mut self, ty: IrType, count: u64, name: &str) -> Value {
        self.push(Inst::Alloca {
            ty,
            count,
            name: name.to_string(),
        })
    }

    /// Typed load.
    pub fn load(&mut self, ty: IrType, ptr: Value) -> Value {
        self.push(Inst::Load { ty, ptr })
    }

    /// Typed store.
    pub fn store(&mut self, val: Value, ptr: Value) {
        self.push(Inst::Store { val, ptr });
    }

    /// Byte-scaled pointer arithmetic.
    pub fn gep(&mut self, ptr: Value, index: Value, elem_size: u64) -> Value {
        if index.is_zero_int() {
            return ptr;
        }
        self.push(Inst::Gep {
            ptr,
            index,
            elem_size,
        })
    }

    // ---- arithmetic with on-the-fly folding ----

    /// Generic binary operation with constant folding and algebraic
    /// identities.
    pub fn bin(&mut self, op: BinOpKind, lhs: Value, rhs: Value) -> Value {
        if let Some(v) = fold_bin(op, lhs, rhs, self.type_of(lhs)) {
            return v;
        }
        self.push(Inst::Bin { op, lhs, rhs })
    }

    /// `add` with identities.
    pub fn add(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::Add, l, r)
    }

    /// `sub` with identities.
    pub fn sub(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::Sub, l, r)
    }

    /// `mul` with identities.
    pub fn mul(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::Mul, l, r)
    }

    /// Unsigned division.
    pub fn udiv(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::UDiv, l, r)
    }

    /// Unsigned remainder.
    pub fn urem(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::URem, l, r)
    }

    /// Signed division.
    pub fn sdiv(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOpKind::SDiv, l, r)
    }

    /// Comparison with constant folding.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        if let (Some(a), Some(b)) = (lhs.as_const_int(), rhs.as_const_int()) {
            if !pred.is_float() {
                let ty = self.type_of(lhs);
                return Value::bool(eval_icmp(pred, a, b, ty));
            }
        }
        self.push(Inst::Cmp { pred, lhs, rhs })
    }

    /// Conversion with folding of constants and no-op casts.
    pub fn cast(&mut self, op: CastOp, val: Value, to: IrType) -> Value {
        let from = self.type_of(val);
        if from == to
            && matches!(
                op,
                CastOp::Trunc | CastOp::ZExt | CastOp::SExt | CastOp::FpTrunc | CastOp::FpExt
            )
        {
            return val;
        }
        if let Some(c) = val.as_const_int() {
            match op {
                CastOp::Trunc => return Value::int(to, c),
                CastOp::ZExt => return Value::int(to, from.wrap_unsigned(c) as i64),
                CastOp::SExt => return Value::int(to, c),
                CastOp::SiToFp => return Value::float(to, c as f64),
                CastOp::UiToFp => return Value::float(to, from.wrap_unsigned(c) as f64),
                _ => {}
            }
        }
        if let Some(c) = val.as_const_float() {
            match op {
                CastOp::FpTrunc | CastOp::FpExt => return Value::float(to, c),
                CastOp::FpToSi => return Value::int(to, c as i64),
                CastOp::FpToUi => return Value::int(to, c as u64 as i64),
                _ => {}
            }
        }
        self.push(Inst::Cast { op, val, to })
    }

    /// Integer resize helper: truncates or extends `val` to `to`.
    pub fn int_resize(&mut self, val: Value, to: IrType, signed: bool) -> Value {
        let from = self.type_of(val);
        if from == to {
            return val;
        }
        if from.bits() > to.bits() {
            self.cast(CastOp::Trunc, val, to)
        } else if signed {
            self.cast(CastOp::SExt, val, to)
        } else {
            self.cast(CastOp::ZExt, val, to)
        }
    }

    /// `select` with constant-condition folding.
    pub fn select(&mut self, cond: Value, t: Value, f: Value) -> Value {
        match cond.as_const_int() {
            Some(0) => f,
            Some(_) => t,
            None => self.push(Inst::Select { cond, t, f }),
        }
    }

    /// Unsigned `min(a, b)` via cmp+select.
    pub fn umin(&mut self, a: Value, b: Value) -> Value {
        let c = self.cmp(CmpPred::Ult, a, b);
        self.select(c, a, b)
    }

    /// Creates an (initially empty) phi in the *current* block.
    pub fn phi(&mut self, ty: IrType) -> (Value, InstId) {
        let v = self.push(Inst::Phi {
            ty,
            incoming: Vec::new(),
        });
        match v {
            Value::Inst(id) => (v, id),
            _ => unreachable!(),
        }
    }

    /// Adds an incoming edge to a previously created phi.
    pub fn add_phi_incoming(&mut self, phi: InstId, from: BlockId, val: Value) {
        match self.func.inst_mut(phi) {
            Inst::Phi { incoming, .. } => incoming.push((from, val)),
            other => panic!("add_phi_incoming on non-phi {other:?}"),
        }
    }

    /// Function call.
    pub fn call(&mut self, callee: SymbolId, args: Vec<Value>, ret: IrType) -> Value {
        self.push(Inst::Call {
            callee: Callee(callee),
            args,
            ty: ret,
        })
    }

    // ---- terminators ----

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br {
            target,
            loop_md: None,
        });
    }

    /// Unconditional branch carrying loop metadata (latch).
    pub fn br_with_md(&mut self, target: BlockId, md: LoopMetadata) {
        self.terminate(Terminator::Br {
            target,
            loop_md: Some(md),
        });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
            loop_md: None,
        });
    }

    /// Return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.terminate(Terminator::Ret(v));
    }

    /// Marks the current block unreachable.
    pub fn unreachable(&mut self) {
        self.terminate(Terminator::Unreachable);
    }

    fn terminate(&mut self, t: Terminator) {
        let b = self.func.block_mut(self.cur);
        debug_assert!(b.term.is_none(), "re-terminating block {}", b.name);
        b.term = Some(t);
    }
}

/// Folds a binary operation over constants / algebraic identities.
/// Returns `None` when an instruction must be emitted.
pub fn fold_bin(op: BinOpKind, lhs: Value, rhs: Value, ty: IrType) -> Option<Value> {
    use BinOpKind::*;
    // Float constant folding.
    if op.is_float() {
        if let (Some(a), Some(b)) = (lhs.as_const_float(), rhs.as_const_float()) {
            let v = match op {
                FAdd => a + b,
                FSub => a - b,
                FMul => a * b,
                FDiv => a / b,
                FRem => a % b,
                _ => unreachable!(),
            };
            return Some(Value::float(ty, v));
        }
        return None;
    }
    // Algebraic identities first (cheap, apply to non-constants too).
    match op {
        Add => {
            if lhs.is_zero_int() {
                return Some(rhs);
            }
            if rhs.is_zero_int() {
                return Some(lhs);
            }
        }
        Sub => {
            if rhs.is_zero_int() {
                return Some(lhs);
            }
            if lhs == rhs && matches!(lhs, Value::Inst(_) | Value::Arg(_)) {
                return Some(Value::int(ty, 0));
            }
        }
        Mul => {
            if lhs.is_zero_int() || rhs.is_zero_int() {
                return Some(Value::int(ty, 0));
            }
            if lhs.is_one_int() {
                return Some(rhs);
            }
            if rhs.is_one_int() {
                return Some(lhs);
            }
        }
        UDiv | SDiv if rhs.is_one_int() => return Some(lhs),
        Shl | AShr | LShr if rhs.is_zero_int() => return Some(lhs),
        And if lhs.is_zero_int() || rhs.is_zero_int() => {
            return Some(Value::int(ty, 0));
        }
        Or | Xor => {
            if rhs.is_zero_int() {
                return Some(lhs);
            }
            if lhs.is_zero_int() {
                return Some(rhs);
            }
        }
        _ => {}
    }
    // Integer constant folding.
    let (a, b) = (lhs.as_const_int()?, rhs.as_const_int()?);
    let v = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        UDiv => {
            if b == 0 {
                return None;
            }
            (ty.wrap_unsigned(a) / ty.wrap_unsigned(b)) as i64
        }
        SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        URem => {
            if b == 0 {
                return None;
            }
            (ty.wrap_unsigned(a) % ty.wrap_unsigned(b)) as i64
        }
        Shl => a.wrapping_shl(b as u32 & 63),
        AShr => a.wrapping_shr(b as u32 & 63),
        LShr => (ty.wrap_unsigned(a) >> (b as u32 & (ty.bits().max(1) - 1).max(1))) as i64,
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        _ => return None,
    };
    Some(Value::int(ty, v))
}

/// Evaluates an integer comparison on constants of type `ty`.
pub fn eval_icmp(pred: CmpPred, a: i64, b: i64, ty: IrType) -> bool {
    let (ua, ub) = (ty.wrap_unsigned(a), ty.wrap_unsigned(b));
    match pred {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Slt => a < b,
        CmpPred::Sle => a <= b,
        CmpPred::Sgt => a > b,
        CmpPred::Sge => a >= b,
        CmpPred::Ult => ua < ub,
        CmpPred::Ule => ua <= ub,
        CmpPred::Ugt => ua > ub,
        CmpPred::Uge => ua >= ub,
        _ => unreachable!("float predicate on ints"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_builder<R>(f: impl FnOnce(&mut IrBuilder) -> R) -> (R, Function) {
        let mut func = Function::new("t", vec![IrType::I32], IrType::Void);
        let r = {
            let mut b = IrBuilder::new(&mut func);
            f(&mut b)
        };
        (r, func)
    }

    #[test]
    fn constant_folding() {
        let (v, f) = with_builder(|b| b.add(Value::i32(2), Value::i32(3)));
        assert_eq!(v, Value::i32(5));
        assert_eq!(f.num_insts(), 0, "no instruction should be emitted");
    }

    #[test]
    fn identities() {
        let ((z, o, s), f) = with_builder(|b| {
            let x = Value::Arg(0);
            let z = b.mul(x, Value::i32(0));
            let o = b.mul(x, Value::i32(1));
            let s = b.add(x, Value::i32(0));
            (z, o, s)
        });
        assert_eq!(z, Value::i32(0));
        assert_eq!(o, Value::Arg(0));
        assert_eq!(s, Value::Arg(0));
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let (v, f) = with_builder(|b| b.udiv(Value::i32(1), Value::i32(0)));
        assert!(matches!(v, Value::Inst(_)));
        assert_eq!(f.num_insts(), 1);
    }

    #[test]
    fn unsigned_folding_uses_unsigned_semantics() {
        // -1 (0xFFFFFFFF) / 2 as u32 = 0x7FFFFFFF
        let (v, _) = with_builder(|b| b.udiv(Value::i32(-1), Value::i32(2)));
        assert_eq!(v.as_const_int(), Some(0x7FFF_FFFF));
        let (c, _) = with_builder(|b| b.cmp(CmpPred::Ult, Value::i32(-1), Value::i32(0)));
        assert_eq!(c, Value::bool(false)); // 0xFFFFFFFF is not < 0 unsigned
    }

    #[test]
    fn cmp_folding() {
        let (v, _) = with_builder(|b| b.cmp(CmpPred::Slt, Value::i32(-1), Value::i32(0)));
        assert_eq!(v, Value::bool(true));
    }

    #[test]
    fn cast_folding() {
        let (v, _) =
            with_builder(|b| b.cast(CastOp::SExt, Value::int(IrType::I8, -1), IrType::I64));
        assert_eq!(v, Value::i64(-1));
        let (v, _) =
            with_builder(|b| b.cast(CastOp::ZExt, Value::int(IrType::I8, -1), IrType::I64));
        assert_eq!(v, Value::i64(255));
        let (v, _) = with_builder(|b| b.cast(CastOp::SiToFp, Value::i32(3), IrType::F64));
        assert_eq!(v.as_const_float(), Some(3.0));
    }

    #[test]
    fn select_folding_and_umin() {
        let (v, _) = with_builder(|b| b.select(Value::bool(true), Value::i32(1), Value::i32(2)));
        assert_eq!(v, Value::i32(1));
        let (m, _) = with_builder(|b| b.umin(Value::i32(7), Value::i32(5)));
        assert_eq!(m, Value::i32(5));
    }

    #[test]
    fn phi_plumbing() {
        let (_, f) = with_builder(|b| {
            let header = b.create_block("header");
            let entry = b.insert_block();
            b.br(header);
            b.set_insert_point(header);
            let (v, id) = b.phi(IrType::I64);
            b.add_phi_incoming(id, entry, Value::i64(0));
            let next = b.add(v, Value::i64(1));
            b.add_phi_incoming(id, header, next);
            b.br(header);
        });
        let phi = &f.insts[0];
        match phi {
            Inst::Phi { incoming, .. } => assert_eq!(incoming.len(), 2),
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn gep_zero_index_is_noop() {
        let (v, f) = with_builder(|b| {
            let p = b.alloca(IrType::I32, 4, "a");
            b.gep(p, Value::i64(0), 4)
        });
        assert!(matches!(v, Value::Inst(_)));
        assert_eq!(f.num_insts(), 1); // only the alloca
    }

    #[test]
    fn sub_self_folds_to_zero() {
        let (v, _) = with_builder(|b| b.sub(Value::Arg(0), Value::Arg(0)));
        assert_eq!(v, Value::i32(0));
    }
}
