//! A registry-free stand-in for the subset of the `criterion` API used by
//! `crates/bench` (its only dependency is the workspace-local `omplt-trace`).
//! The real crate lives on crates.io; this workspace must build and bench
//! with **no registry access**, so the benches depend on this shim through a
//! Cargo rename (`criterion = { package = "omplt-criterion-shim" }`).
//!
//! The statistics are intentionally simple — per-sample wall-clock timing via
//! `std::time::Instant`, reported as min/median/max — but the programming
//! model (`criterion_group!`, `benchmark_group`, `Bencher::iter`,
//! `iter_batched`) matches criterion so the bench sources stay portable.

use std::fmt;
use std::hint::black_box as hint_black_box;
use std::io::Write;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Where `--save-json <path>` results accumulate (one JSON object per line,
/// appended — `cargo bench` runs each bench binary as its own process against
/// the same file).
static JSON_PATH: OnceLock<Option<String>> = OnceLock::new();

/// Extracts the `--save-json <path>` argument, if present.
fn save_json_arg(mut args: impl Iterator<Item = String>) -> Option<String> {
    while let Some(a) = args.next() {
        if a == "--save-json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--save-json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// One result as a JSON object (durations in nanoseconds, sorted samples).
fn json_line(name: &str, samples: &[Duration]) -> String {
    let esc: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    format!(
        "{{\"name\":\"{esc}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
        samples[samples.len() / 2].as_nanos(),
        samples[0].as_nanos(),
        samples[samples.len() - 1].as_nanos(),
        samples.len()
    )
}

/// Opaque value barrier, re-exported so benches can `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times the routine per
/// call, so the variants are equivalent; they exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `tile_loops/4`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target_samples: usize, budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            target_samples,
            budget,
        }
    }

    /// Times `routine` once per sample until the sample count or time budget
    /// is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // one warmup call outside the measurements
        black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine(setup())`, excluding the setup from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(group: &str, id: &BenchmarkId, samples: &mut [Duration]) {
    let name = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    // When a trace session is active (a bench harness wrapping itself in
    // `omplt_trace::Session`), record the sample count so counter-driven
    // experiment rows can cross-check bench coverage.
    if omplt_trace::active() {
        omplt_trace::count(&format!("bench.samples.{name}"), samples.len() as u64);
    }
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{name:<48} median {:>12?}  (min {:?}, max {:?}, {} samples)",
        median,
        min,
        max,
        samples.len()
    );
    if let Some(Some(path)) = JSON_PATH.get() {
        let line = json_line(&name, samples);
        let w = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = w {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Overrides the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API parity; the shim warms up with a single call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report(&self.name, &id, &mut b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        report(&self.name, &id, &mut b.samples);
        self
    }

    /// Ends the group (printing is per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Accepts criterion-style CLI arguments. `--bench` (which cargo passes
    /// to bench binaries) is ignored; `--save-json <path>` appends each
    /// result as a JSON line to `path` (the CI bench artifact).
    pub fn configure_from_args(self) -> Self {
        let _ = JSON_PATH.set(save_json_arg(std::env::args()));
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        report("", &id, &mut b.samples);
        self
    }

    /// Criterion prints a summary here; the shim reports eagerly instead.
    pub fn final_summary(&mut self) {}
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(b.samples.len(), 5);
        assert!(n >= 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(3, Duration::from_secs(1));
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(b.samples.len(), 3);
        assert_eq!(setups, 4); // 1 warmup + 3 measured
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("tile_loops", 4).to_string(),
            "tile_loops/4"
        );
        assert_eq!(
            BenchmarkId::from_parameter("classic").to_string(),
            "classic"
        );
    }

    #[test]
    fn save_json_arg_parses_both_spellings() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            save_json_arg(args(&["bin", "--bench", "--save-json", "out.json"]).into_iter()),
            Some("out.json".into())
        );
        assert_eq!(
            save_json_arg(args(&["bin", "--save-json=b.json"]).into_iter()),
            Some("b.json".into())
        );
        assert_eq!(save_json_arg(args(&["bin", "--bench"]).into_iter()), None);
    }

    #[test]
    fn json_line_escapes_and_reports_nanos() {
        let samples = [
            Duration::from_nanos(10),
            Duration::from_nanos(20),
            Duration::from_nanos(30),
        ];
        assert_eq!(
            json_line("g/a\"b", &samples),
            "{\"name\":\"g/a\\\"b\",\"median_ns\":20,\"min_ns\":10,\"max_ns\":30,\"samples\":3}"
        );
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.measurement_time(Duration::from_millis(50));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
