//! The SourceManager layer: assigns each loaded buffer a slice of the global
//! location space and decodes [`SourceLocation`]s back to file/line/column.

use crate::file_manager::MemoryBuffer;
use crate::location::SourceLocation;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a loaded file inside a [`SourceManager`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FileId(pub u32);

struct FileEntry {
    buffer: Arc<MemoryBuffer>,
    /// Global offset of this file's first byte (location `base_offset + i`
    /// refers to byte `i` of the buffer).
    base_offset: u32,
    /// Byte offsets of each line start, computed lazily on first query.
    line_starts: std::cell::OnceCell<Vec<u32>>,
}

/// Decoded human-readable position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PresumedLoc {
    /// File name the location belongs to.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

/// Maps flat locations to files/lines/columns, and synthetic (generated-code)
/// locations back to a representative literal location (paper §2).
#[derive(Default)]
pub struct SourceManager {
    files: Vec<FileEntry>,
    next_offset: u32,
    /// synthetic-location index → (representative literal location, origin
    /// description such as `#pragma omp unroll partial(2)`).
    transformed: HashMap<u32, (SourceLocation, String)>,
    next_synthetic: u32,
}

impl SourceManager {
    /// Creates an empty source manager. Offset 0 is reserved for the invalid
    /// location, so the first file starts at offset 1.
    pub fn new() -> Self {
        SourceManager {
            files: Vec::new(),
            next_offset: 1,
            transformed: HashMap::new(),
            next_synthetic: 0,
        }
    }

    /// Registers `buffer` and returns its id plus the location of its first
    /// byte.
    pub fn add_file(&mut self, buffer: Arc<MemoryBuffer>) -> (FileId, SourceLocation) {
        let base = self.next_offset;
        let len = u32::try_from(buffer.len()).expect("buffer too large for 32-bit location space");
        self.next_offset = base
            .checked_add(len)
            .and_then(|o| o.checked_add(1)) // +1: a location one past the end is representable
            .expect("source location space exhausted");
        let id = FileId(self.files.len() as u32);
        self.files.push(FileEntry {
            buffer,
            base_offset: base,
            line_starts: std::cell::OnceCell::new(),
        });
        (id, SourceLocation::from_raw(base))
    }

    /// The buffer backing `id`.
    pub fn buffer(&self, id: FileId) -> &Arc<MemoryBuffer> {
        &self.files[id.0 as usize].buffer
    }

    /// The location of byte `offset` within file `id`.
    pub fn loc_for_offset(&self, id: FileId, offset: u32) -> SourceLocation {
        let entry = &self.files[id.0 as usize];
        debug_assert!(offset as usize <= entry.buffer.len());
        SourceLocation::from_raw(entry.base_offset + offset)
    }

    /// Finds the file containing `loc` (not valid for synthetic locations).
    pub fn file_of(&self, loc: SourceLocation) -> Option<FileId> {
        if !loc.is_valid() || loc.is_synthetic() {
            return None;
        }
        let raw = loc.raw();
        // Files are registered with increasing base offsets; binary-search the
        // partition point.
        let idx = self.files.partition_point(|f| f.base_offset <= raw);
        if idx == 0 {
            return None;
        }
        let entry = &self.files[idx - 1];
        // A location one past the end still belongs to the file (EOF diags).
        if (raw - entry.base_offset) as usize <= entry.buffer.len() {
            Some(FileId((idx - 1) as u32))
        } else {
            None
        }
    }

    /// Decodes `loc` into file/line/column. Synthetic locations are first
    /// mapped through [`SourceManager::map_transformed`].
    pub fn presumed_loc(&self, loc: SourceLocation) -> Option<PresumedLoc> {
        let loc = if loc.is_synthetic() {
            self.map_transformed(loc)?.0
        } else {
            loc
        };
        let file = self.file_of(loc)?;
        let entry = &self.files[file.0 as usize];
        let off = loc.raw() - entry.base_offset;
        let starts = entry.line_starts.get_or_init(|| {
            let mut v = vec![0u32];
            for (i, b) in entry.buffer.data().bytes().enumerate() {
                if b == b'\n' {
                    v.push(i as u32 + 1);
                }
            }
            v
        });
        let line_idx = starts.partition_point(|&s| s <= off).saturating_sub(1);
        Some(PresumedLoc {
            file: entry.buffer.name().to_string(),
            line: line_idx as u32 + 1,
            col: off - starts[line_idx] + 1,
        })
    }

    /// The full text of the line containing `loc` (without trailing newline),
    /// for caret diagnostics.
    pub fn line_text(&self, loc: SourceLocation) -> Option<String> {
        let loc = if loc.is_synthetic() {
            self.map_transformed(loc)?.0
        } else {
            loc
        };
        let file = self.file_of(loc)?;
        let entry = &self.files[file.0 as usize];
        let data = entry.buffer.data();
        let mut off = ((loc.raw() - entry.base_offset) as usize).min(data.len());
        // The lexer scans bytes, so a diagnostic location can land inside a
        // multi-byte character; snap back to a boundary before slicing.
        while off > 0 && !data.is_char_boundary(off) {
            off -= 1;
        }
        let begin = data[..off].rfind('\n').map_or(0, |i| i + 1);
        let end = data[begin..].find('\n').map_or(data.len(), |i| begin + i);
        Some(data[begin..end].to_string())
    }

    /// Allocates a synthetic location for compiler-generated code whose
    /// diagnostics should point at `representative` (the literal loop the
    /// transformation was applied to), with `origin` describing the directive
    /// that generated it. This is the paper's "representative source location
    /// for the associated literal loop" mechanism.
    pub fn create_transformed_loc(
        &mut self,
        representative: SourceLocation,
        origin: impl Into<String>,
    ) -> SourceLocation {
        let idx = self.next_synthetic;
        self.next_synthetic += 1;
        self.transformed
            .insert(idx, (representative, origin.into()));
        SourceLocation::synthetic(idx)
    }

    /// Resolves a synthetic location to its representative literal location
    /// and originating-directive description.
    pub fn map_transformed(&self, loc: SourceLocation) -> Option<(SourceLocation, &str)> {
        if !loc.is_synthetic() {
            return None;
        }
        let idx = loc.raw() - SourceLocation::synthetic(0).raw();
        self.transformed.get(&idx).map(|(l, s)| (*l, s.as_str()))
    }

    /// Number of registered files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_manager::FileManager;

    fn sm_with(text: &str) -> (SourceManager, FileId, SourceLocation) {
        let mut fm = FileManager::new();
        let buf = fm.add_virtual_file("t.c", text);
        let mut sm = SourceManager::new();
        let (id, start) = sm.add_file(buf);
        (sm, id, start)
    }

    #[test]
    fn first_file_starts_at_one() {
        let (_, _, start) = sm_with("abc");
        assert_eq!(start.raw(), 1);
    }

    #[test]
    fn presumed_loc_lines_and_cols() {
        let (sm, id, _) = sm_with("int x;\nint y;\n");
        let l = sm.loc_for_offset(id, 0);
        assert_eq!(
            sm.presumed_loc(l).unwrap(),
            PresumedLoc {
                file: "t.c".into(),
                line: 1,
                col: 1
            }
        );
        let l = sm.loc_for_offset(id, 7); // 'i' of "int y;"
        assert_eq!(
            sm.presumed_loc(l).unwrap(),
            PresumedLoc {
                file: "t.c".into(),
                line: 2,
                col: 1
            }
        );
        let l = sm.loc_for_offset(id, 11); // 'y'
        let p = sm.presumed_loc(l).unwrap();
        assert_eq!((p.line, p.col), (2, 5));
    }

    #[test]
    fn two_files_disjoint_ranges() {
        let mut fm = FileManager::new();
        let a = fm.add_virtual_file("a.c", "aaaa");
        let b = fm.add_virtual_file("b.c", "bb");
        let mut sm = SourceManager::new();
        let (ia, _) = sm.add_file(a);
        let (ib, _) = sm.add_file(b);
        let la = sm.loc_for_offset(ia, 2);
        let lb = sm.loc_for_offset(ib, 1);
        assert_eq!(sm.file_of(la), Some(ia));
        assert_eq!(sm.file_of(lb), Some(ib));
        assert_eq!(sm.presumed_loc(lb).unwrap().file, "b.c");
    }

    #[test]
    fn line_text_extraction() {
        let (sm, id, _) = sm_with("first line\nsecond line\n");
        let l = sm.loc_for_offset(id, 14);
        assert_eq!(sm.line_text(l).unwrap(), "second line");
        let l0 = sm.loc_for_offset(id, 3);
        assert_eq!(sm.line_text(l0).unwrap(), "first line");
    }

    #[test]
    fn transformed_location_maps_back() {
        let (mut sm, id, _) = sm_with("for (int i = 0; i < 10; ++i)\n  ;\n");
        let rep = sm.loc_for_offset(id, 0);
        let syn = sm.create_transformed_loc(rep, "#pragma omp unroll partial(2)");
        assert!(syn.is_synthetic());
        let (mapped, origin) = sm.map_transformed(syn).unwrap();
        assert_eq!(mapped, rep);
        assert_eq!(origin, "#pragma omp unroll partial(2)");
        // presumed_loc transparently follows the mapping
        let p = sm.presumed_loc(syn).unwrap();
        assert_eq!((p.line, p.col), (1, 1));
    }

    #[test]
    fn invalid_loc_decodes_to_none() {
        let (sm, _, _) = sm_with("x");
        assert!(sm.presumed_loc(SourceLocation::INVALID).is_none());
        assert!(sm.file_of(SourceLocation::INVALID).is_none());
    }

    #[test]
    fn end_of_file_location_is_attributed() {
        let (sm, id, _) = sm_with("ab");
        // one-past-the-end location still belongs to the file (needed for
        // EOF diagnostics)
        let l = sm.loc_for_offset(id, 2);
        assert_eq!(sm.file_of(l), Some(id));
    }
}
