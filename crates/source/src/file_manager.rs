//! The FileManager layer: owns the bytes of every source file.
//!
//! Mirrors Clang's `FileManager`/`llvm::MemoryBuffer` split. Buffers can come
//! from the real filesystem or be registered in-memory (the common case in
//! tests and in the paper's examples, which are self-contained snippets).

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// An immutable, named chunk of source text.
///
/// Clang's `MemoryBuffer` guarantees NUL-termination to let the lexer read one
/// past the end; we instead expose [`MemoryBuffer::char_at`] which yields
/// `'\0'` past the end, preserving the same lexer-facing contract safely.
#[derive(Debug)]
pub struct MemoryBuffer {
    name: String,
    data: String,
}

impl MemoryBuffer {
    /// Creates a buffer from a name and its contents.
    pub fn new(name: impl Into<String>, data: impl Into<String>) -> Self {
        MemoryBuffer {
            name: name.into(),
            data: data.into(),
        }
    }

    /// The buffer identifier (usually a file path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full contents.
    pub fn data(&self) -> &str {
        &self.data
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Byte at `offset`, or `'\0'` when `offset` is at/past the end —
    /// the sentinel Clang's lexer relies on to avoid bounds checks.
    pub fn char_at(&self, offset: usize) -> u8 {
        *self.data.as_bytes().get(offset).unwrap_or(&0)
    }
}

/// Owns every [`MemoryBuffer`] for a compilation, deduplicating by name.
///
/// In-memory registrations take precedence over the on-disk filesystem, which
/// is how the test-suite and the `#include`-free examples provide sources.
#[derive(Default)]
pub struct FileManager {
    buffers: HashMap<String, Arc<MemoryBuffer>>,
}

impl FileManager {
    /// Creates an empty file manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an in-memory file, replacing any previous registration of
    /// the same name. Returns the interned buffer.
    pub fn add_virtual_file(
        &mut self,
        name: impl Into<String>,
        contents: impl Into<String>,
    ) -> Arc<MemoryBuffer> {
        let name = name.into();
        let buf = Arc::new(MemoryBuffer::new(name.clone(), contents));
        self.buffers.insert(name, Arc::clone(&buf));
        buf
    }

    /// Fetches a file: in-memory registrations first, then the real
    /// filesystem (reading and caching the contents).
    pub fn get_file(&mut self, name: &str) -> io::Result<Arc<MemoryBuffer>> {
        if let Some(buf) = self.buffers.get(name) {
            return Ok(Arc::clone(buf));
        }
        let contents = std::fs::read_to_string(Path::new(name))?;
        Ok(self.add_virtual_file(name, contents))
    }

    /// Whether `name` has been loaded or registered.
    pub fn contains(&self, name: &str) -> bool {
        self.buffers.contains_key(name)
    }

    /// Number of loaded buffers.
    pub fn num_buffers(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_file_round_trip() {
        let mut fm = FileManager::new();
        fm.add_virtual_file("a.c", "int x;");
        let b = fm.get_file("a.c").unwrap();
        assert_eq!(b.name(), "a.c");
        assert_eq!(b.data(), "int x;");
        assert_eq!(b.len(), 6);
        assert!(fm.contains("a.c"));
    }

    #[test]
    fn missing_file_errors() {
        let mut fm = FileManager::new();
        assert!(fm.get_file("/definitely/not/here.c").is_err());
    }

    #[test]
    fn char_at_past_end_is_nul() {
        let b = MemoryBuffer::new("x", "ab");
        assert_eq!(b.char_at(0), b'a');
        assert_eq!(b.char_at(1), b'b');
        assert_eq!(b.char_at(2), 0);
        assert_eq!(b.char_at(100), 0);
    }

    #[test]
    fn re_registration_replaces() {
        let mut fm = FileManager::new();
        fm.add_virtual_file("a.c", "old");
        fm.add_virtual_file("a.c", "new");
        assert_eq!(fm.get_file("a.c").unwrap().data(), "new");
        assert_eq!(fm.num_buffers(), 1);
    }

    #[test]
    fn empty_buffer() {
        let b = MemoryBuffer::new("e", "");
        assert!(b.is_empty());
        assert_eq!(b.char_at(0), 0);
    }
}
