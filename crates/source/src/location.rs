//! Flat source locations, modeled after Clang's `SourceLocation`.
//!
//! A [`SourceLocation`] is a 32-bit offset into the [`crate::SourceManager`]'s
//! global address space (the concatenation of every loaded buffer). Offset `0`
//! is reserved for the *invalid* location; synthetic locations for
//! compiler-generated code live in a dedicated high range (see
//! [`SourceLocation::synthetic`]).

use std::fmt;

/// An opaque, cheap-to-copy handle identifying a position in the source.
///
/// Mirrors Clang's `SourceLocation`: the AST stores these 4-byte handles and
/// the `SourceManager` is required to decode them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceLocation(pub(crate) u32);

/// Offsets at or above this bound denote synthetic (compiler-generated)
/// locations rather than positions in a real buffer.
const SYNTHETIC_BASE: u32 = 0xF000_0000;

impl SourceLocation {
    /// The invalid location (Clang: `SourceLocation()`), used for nodes that
    /// have no corresponding source text at all.
    pub const INVALID: SourceLocation = SourceLocation(0);

    /// Creates a location from a raw global offset. Offset 0 is invalid.
    pub fn from_raw(raw: u32) -> Self {
        SourceLocation(raw)
    }

    /// The raw global offset.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this location points at real or synthetic source.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// Creates the `idx`-th synthetic location. Synthetic locations are
    /// produced for shadow-AST nodes; the `SourceManager` maps them back to a
    /// representative literal-loop location for diagnostics (paper §2).
    pub fn synthetic(idx: u32) -> Self {
        SourceLocation(
            SYNTHETIC_BASE
                .checked_add(idx)
                .expect("synthetic location overflow"),
        )
    }

    /// Whether this is a synthetic (compiler-generated) location.
    pub fn is_synthetic(self) -> bool {
        self.0 >= SYNTHETIC_BASE
    }

    /// Returns a location `n` bytes further into the buffer.
    pub fn offset(self, n: u32) -> Self {
        debug_assert!(self.is_valid() && !self.is_synthetic());
        SourceLocation(self.0 + n)
    }
}

impl fmt::Debug for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_valid() {
            write!(f, "<invalid loc>")
        } else if self.is_synthetic() {
            write!(f, "<synthetic #{}>", self.0 - SYNTHETIC_BASE)
        } else {
            write!(f, "loc({})", self.0)
        }
    }
}

/// A half-open character range `[begin, end)` in the global source space.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SourceRange {
    /// First character of the range.
    pub begin: SourceLocation,
    /// One past the last character of the range.
    pub end: SourceLocation,
}

impl SourceRange {
    /// An everywhere-invalid range.
    pub const INVALID: SourceRange = SourceRange {
        begin: SourceLocation::INVALID,
        end: SourceLocation::INVALID,
    };

    /// Builds a range from two endpoints.
    pub fn new(begin: SourceLocation, end: SourceLocation) -> Self {
        SourceRange { begin, end }
    }

    /// A zero-width range at `loc`.
    pub fn at(loc: SourceLocation) -> Self {
        SourceRange {
            begin: loc,
            end: loc,
        }
    }

    /// True when both endpoints are valid.
    pub fn is_valid(self) -> bool {
        self.begin.is_valid() && self.end.is_valid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_is_not_valid() {
        assert!(!SourceLocation::INVALID.is_valid());
        assert!(SourceLocation::from_raw(1).is_valid());
    }

    #[test]
    fn synthetic_round_trip() {
        let s = SourceLocation::synthetic(42);
        assert!(s.is_valid());
        assert!(s.is_synthetic());
        assert!(!SourceLocation::from_raw(17).is_synthetic());
    }

    #[test]
    fn offset_advances() {
        let l = SourceLocation::from_raw(10);
        assert_eq!(l.offset(5).raw(), 15);
    }

    #[test]
    fn range_validity() {
        assert!(!SourceRange::INVALID.is_valid());
        let r = SourceRange::new(SourceLocation::from_raw(1), SourceLocation::from_raw(4));
        assert!(r.is_valid());
        assert!(SourceRange::at(SourceLocation::from_raw(3)).is_valid());
    }

    #[test]
    fn ordering_follows_offsets() {
        assert!(SourceLocation::from_raw(3) < SourceLocation::from_raw(9));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", SourceLocation::INVALID), "<invalid loc>");
        assert_eq!(
            format!("{:?}", SourceLocation::synthetic(7)),
            "<synthetic #7>"
        );
        assert_eq!(format!("{:?}", SourceLocation::from_raw(12)), "loc(12)");
    }
}
