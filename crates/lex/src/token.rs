//! Token definitions shared by the lexer, preprocessor and parser.

use omplt_source::SourceLocation;

/// Reserved words of the base language subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Void,
    Bool,
    Char,
    Short,
    Int,
    Long,
    Unsigned,
    Signed,
    Float,
    Double,
    SizeT,
    PtrdiffT,
    Auto,
    Const,
    If,
    Else,
    While,
    Do,
    For,
    Return,
    Break,
    Continue,
    True,
    False,
    Sizeof,
    Extern,
    Static,
}

impl Keyword {
    /// Maps an identifier spelling to a keyword, if reserved.
    pub fn from_spelling(s: &str) -> Option<Keyword> {
        Some(match s {
            "void" => Keyword::Void,
            "bool" | "_Bool" => Keyword::Bool,
            "char" => Keyword::Char,
            "short" => Keyword::Short,
            "int" => Keyword::Int,
            "long" => Keyword::Long,
            "unsigned" => Keyword::Unsigned,
            "signed" => Keyword::Signed,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "size_t" => Keyword::SizeT,
            "ptrdiff_t" => Keyword::PtrdiffT,
            "auto" => Keyword::Auto,
            "const" => Keyword::Const,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "for" => Keyword::For,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "sizeof" => Keyword::Sizeof,
            "extern" => Keyword::Extern,
            "static" => Keyword::Static,
            _ => return None,
        })
    }

    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Void => "void",
            Keyword::Bool => "bool",
            Keyword::Char => "char",
            Keyword::Short => "short",
            Keyword::Int => "int",
            Keyword::Long => "long",
            Keyword::Unsigned => "unsigned",
            Keyword::Signed => "signed",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::SizeT => "size_t",
            Keyword::PtrdiffT => "ptrdiff_t",
            Keyword::Auto => "auto",
            Keyword::Const => "const",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::For => "for",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Sizeof => "sizeof",
            Keyword::Extern => "extern",
            Keyword::Static => "static",
        }
    }
}

/// Punctuators and operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    ShlAssign,
    ShrAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    PlusPlus,
    MinusMinus,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AmpAmp,
    PipePipe,
    Arrow,
    Dot,
    Hash,
    Ellipsis,
}

impl Punct {
    /// The source spelling.
    pub fn as_str(self) -> &'static str {
        use Punct::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Assign => "=",
            PlusAssign => "+=",
            MinusAssign => "-=",
            StarAssign => "*=",
            SlashAssign => "/=",
            PercentAssign => "%=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            AmpAssign => "&=",
            PipeAssign => "|=",
            CaretAssign => "^=",
            PlusPlus => "++",
            MinusMinus => "--",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            NotEq => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Arrow => "->",
            Dot => ".",
            Hash => "#",
            Ellipsis => "...",
        }
    }
}

/// Integer-literal suffix, determining the literal's type.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub enum IntSuffix {
    /// No suffix: `int` (or the first fitting wider type).
    #[default]
    None,
    /// `u` / `U`.
    Unsigned,
    /// `l` / `L`.
    Long,
    /// `ul` / `lu` / …
    UnsignedLong,
    /// `ll` / `LL`.
    LongLong,
    /// `ull` / …
    UnsignedLongLong,
}

/// The kind (and payload) of a token.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// An identifier that is not a keyword.
    Ident(String),
    /// A reserved word.
    Kw(Keyword),
    /// An integer literal with its parsed value and suffix.
    IntLit { value: u128, suffix: IntSuffix },
    /// A floating-point literal.
    FloatLit(f64),
    /// A string literal (contents, unescaped).
    StrLit(String),
    /// A character literal value.
    CharLit(u8),
    /// A punctuator or operator.
    Punct(Punct),
    /// Annotation token opening an OpenMP pragma region
    /// (Clang: `annot_pragma_openmp`).
    PragmaOmpStart,
    /// Annotation token closing an OpenMP pragma region
    /// (Clang: `annot_pragma_openmp_end`).
    PragmaOmpEnd,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True for `Punct(p)`.
    pub fn is_punct(&self, p: Punct) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// True for `Kw(k)`.
    pub fn is_kw(&self, k: Keyword) -> bool {
        matches!(self, TokenKind::Kw(q) if *q == k)
    }

    /// True for an identifier with this exact spelling (used for OpenMP
    /// directive/clause names, which are contextual keywords).
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokenKind::Ident(t) if t == s)
    }
}

/// A lexed token: kind, location of its first character, and whether it is
/// the first token on its line (needed for preprocessor-directive detection
/// and for finding the end of a pragma line).
#[derive(Clone, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Location of the first character.
    pub loc: SourceLocation,
    /// Whether a newline (or start of file) precedes this token.
    pub at_line_start: bool,
}

impl Token {
    /// A user-facing description used in parse diagnostics.
    pub fn describe(&self) -> String {
        match &self.kind {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Kw(k) => format!("'{}'", k.as_str()),
            TokenKind::IntLit { value, .. } => format!("integer literal '{value}'"),
            TokenKind::FloatLit(v) => format!("floating literal '{v}'"),
            TokenKind::StrLit(_) => "string literal".to_string(),
            TokenKind::CharLit(_) => "character literal".to_string(),
            TokenKind::Punct(p) => format!("'{}'", p.as_str()),
            TokenKind::PragmaOmpStart => "'#pragma omp'".to_string(),
            TokenKind::PragmaOmpEnd => "end of OpenMP pragma".to_string(),
            TokenKind::Eof => "end of file".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in ["int", "for", "unsigned", "size_t", "return", "extern"] {
            let k = Keyword::from_spelling(kw).unwrap();
            assert_eq!(k.as_str(), kw);
        }
        assert!(Keyword::from_spelling("omp").is_none());
        assert!(Keyword::from_spelling("unroll").is_none());
    }

    #[test]
    fn punct_spellings() {
        assert_eq!(Punct::PlusAssign.as_str(), "+=");
        assert_eq!(Punct::Ellipsis.as_str(), "...");
        assert_eq!(Punct::Shl.as_str(), "<<");
    }

    #[test]
    fn kind_predicates() {
        let k = TokenKind::Ident("unroll".into());
        assert!(k.is_ident("unroll"));
        assert!(!k.is_ident("tile"));
        assert!(TokenKind::Punct(Punct::Semi).is_punct(Punct::Semi));
        assert!(TokenKind::Kw(Keyword::For).is_kw(Keyword::For));
    }

    #[test]
    fn describe_is_human_readable() {
        let t = Token {
            kind: TokenKind::Punct(Punct::LParen),
            loc: SourceLocation::INVALID,
            at_line_start: false,
        };
        assert_eq!(t.describe(), "'('");
    }
}
