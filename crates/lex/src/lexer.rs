//! The hand-written lexer: bytes → raw [`Token`]s.
//!
//! Follows Clang's design: one lexer per buffer, sentinel-`'\0'` termination
//! via [`MemoryBuffer::char_at`], and a `at_line_start` flag on tokens instead
//! of explicit newline tokens (the preprocessor uses the flag to find
//! directive lines and pragma line ends).

use crate::token::{IntSuffix, Keyword, Punct, Token, TokenKind};
use omplt_source::{DiagnosticsEngine, FileId, MemoryBuffer, SourceLocation, SourceManager};
use std::sync::Arc;

/// Lexes a single [`MemoryBuffer`].
///
/// The lexer does not hold a borrow of the `SourceManager` (it captures the
/// buffer's base location instead) so the preprocessor can register
/// `#include`d files while lexers are live.
pub struct Lexer<'a> {
    buffer: Arc<MemoryBuffer>,
    base: SourceLocation,
    diags: &'a DiagnosticsEngine,
    pos: usize,
    at_line_start: bool,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over the file `file` registered in `sm`.
    pub fn new(sm: &SourceManager, file: FileId, diags: &'a DiagnosticsEngine) -> Self {
        Lexer::from_buffer(
            Arc::clone(sm.buffer(file)),
            sm.loc_for_offset(file, 0),
            diags,
        )
    }

    /// Creates a lexer from a buffer whose first byte has location `base`.
    pub fn from_buffer(
        buffer: Arc<MemoryBuffer>,
        base: SourceLocation,
        diags: &'a DiagnosticsEngine,
    ) -> Self {
        Lexer {
            buffer,
            base,
            diags,
            pos: 0,
            at_line_start: true,
        }
    }

    fn peek(&self) -> u8 {
        self.buffer.char_at(self.pos)
    }

    fn peek2(&self) -> u8 {
        self.buffer.char_at(self.pos + 1)
    }

    fn peek3(&self) -> u8 {
        self.buffer.char_at(self.pos + 2)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn loc(&self) -> SourceLocation {
        self.base.offset(self.pos as u32)
    }

    /// Skips whitespace and comments, updating the line-start flag.
    /// A backslash-newline continues the line (needed for long pragmas).
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                b'\n' => {
                    self.at_line_start = true;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'\\' if self.peek2() == b'\n' => {
                    self.pos += 2; // line continuation: does NOT set at_line_start
                }
                b'\\' if self.peek2() == b'\r' && self.peek3() == b'\n' => {
                    self.pos += 3;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.loc();
                    self.pos += 2;
                    loop {
                        if self.peek() == 0 {
                            self.diags.error(start, "unterminated /* comment");
                            break;
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Lexes the next token. Returns `Eof` forever at end of input.
    pub fn next_token(&mut self) -> Token {
        self.skip_trivia();
        let at_line_start = std::mem::replace(&mut self.at_line_start, false);
        let loc = self.loc();
        let kind = self.lex_kind();
        Token {
            kind,
            loc,
            at_line_start,
        }
    }

    fn lex_kind(&mut self) -> TokenKind {
        let c = self.peek();
        match c {
            0 => TokenKind::Eof,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            b'0'..=b'9' => self.lex_number(),
            b'.' if self.peek2().is_ascii_digit() => self.lex_number(),
            b'"' => self.lex_string(),
            b'\'' => self.lex_char(),
            _ => self.lex_punct(),
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let text = &self.buffer.data()[start..self.pos];
        match Keyword::from_spelling(text) {
            Some(k) => TokenKind::Kw(k),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.pos;
        let loc = self.loc();
        // Hex?
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.pos += 2;
            let hex_start = self.pos;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            let text = &self.buffer.data()[hex_start..self.pos];
            let value = u128::from_str_radix(text, 16).unwrap_or_else(|_| {
                self.diags.error(loc, "invalid hexadecimal literal");
                0
            });
            let suffix = self.lex_int_suffix();
            return TokenKind::IntLit { value, suffix };
        }
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if (self.peek() | 0x20) == b'e'
            && (self.peek2().is_ascii_digit()
                || ((self.peek2() == b'+' || self.peek2() == b'-')
                    && self.peek3().is_ascii_digit()))
        {
            is_float = true;
            self.pos += 1; // e
            if self.peek() == b'+' || self.peek() == b'-' {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = &self.buffer.data()[start..self.pos];
        if is_float {
            if (self.peek() | 0x20) == b'f' || (self.peek() | 0x20) == b'l' {
                self.pos += 1; // float/long-double suffix; type kept as double
            }
            match text.parse::<f64>() {
                Ok(v) => TokenKind::FloatLit(v),
                Err(_) => {
                    self.diags
                        .error(loc, format!("invalid floating literal '{text}'"));
                    TokenKind::FloatLit(0.0)
                }
            }
        } else {
            let value = text.parse::<u128>().unwrap_or_else(|_| {
                self.diags
                    .error(loc, format!("integer literal '{text}' is too large"));
                0
            });
            let suffix = self.lex_int_suffix();
            TokenKind::IntLit { value, suffix }
        }
    }

    fn lex_int_suffix(&mut self) -> IntSuffix {
        let mut unsigned = false;
        let mut longs = 0u8;
        loop {
            match self.peek() | 0x20 {
                b'u' if !unsigned => {
                    unsigned = true;
                    self.pos += 1;
                }
                b'l' if longs < 2 => {
                    longs += 1;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        match (unsigned, longs) {
            (false, 0) => IntSuffix::None,
            (true, 0) => IntSuffix::Unsigned,
            (false, 1) => IntSuffix::Long,
            (true, 1) => IntSuffix::UnsignedLong,
            (false, _) => IntSuffix::LongLong,
            (true, _) => IntSuffix::UnsignedLongLong,
        }
    }

    fn lex_string(&mut self) -> TokenKind {
        let loc = self.loc();
        self.pos += 1; // "
        let mut s = String::new();
        loop {
            match self.bump() {
                0 | b'\n' => {
                    self.diags.error(loc, "unterminated string literal");
                    break;
                }
                b'"' => break,
                b'\\' => s.push(unescape(self.bump())),
                c => s.push(c as char),
            }
        }
        TokenKind::StrLit(s)
    }

    fn lex_char(&mut self) -> TokenKind {
        let loc = self.loc();
        self.pos += 1; // '
        let c = match self.bump() {
            b'\\' => unescape(self.bump()) as u8,
            0 => {
                self.diags.error(loc, "unterminated character literal");
                0
            }
            c => c,
        };
        if self.peek() == b'\'' {
            self.pos += 1;
        } else {
            self.diags
                .error(loc, "expected closing ' in character literal");
        }
        TokenKind::CharLit(c)
    }

    fn lex_punct(&mut self) -> TokenKind {
        use Punct::*;
        let loc = self.loc();
        let c = self.bump();
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'~' => Tilde,
            b'#' => Hash,
            b':' => Colon,
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'+' => match self.peek() {
                b'+' => {
                    self.pos += 1;
                    PlusPlus
                }
                b'=' => {
                    self.pos += 1;
                    PlusAssign
                }
                _ => Plus,
            },
            b'-' => match self.peek() {
                b'-' => {
                    self.pos += 1;
                    MinusMinus
                }
                b'=' => {
                    self.pos += 1;
                    MinusAssign
                }
                b'>' => {
                    self.pos += 1;
                    Arrow
                }
                _ => Minus,
            },
            b'*' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    StarAssign
                } else {
                    Star
                }
            }
            b'/' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    SlashAssign
                } else {
                    Slash
                }
            }
            b'%' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    PercentAssign
                } else {
                    Percent
                }
            }
            b'^' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    CaretAssign
                } else {
                    Caret
                }
            }
            b'!' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    NotEq
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == b'=' {
                    self.pos += 1;
                    EqEq
                } else {
                    Assign
                }
            }
            b'&' => match self.peek() {
                b'&' => {
                    self.pos += 1;
                    AmpAmp
                }
                b'=' => {
                    self.pos += 1;
                    AmpAssign
                }
                _ => Amp,
            },
            b'|' => match self.peek() {
                b'|' => {
                    self.pos += 1;
                    PipePipe
                }
                b'=' => {
                    self.pos += 1;
                    PipeAssign
                }
                _ => Pipe,
            },
            b'<' => match self.peek() {
                b'<' => {
                    self.pos += 1;
                    if self.peek() == b'=' {
                        self.pos += 1;
                        ShlAssign
                    } else {
                        Shl
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Le
                }
                _ => Lt,
            },
            b'>' => match self.peek() {
                b'>' => {
                    self.pos += 1;
                    if self.peek() == b'=' {
                        self.pos += 1;
                        ShrAssign
                    } else {
                        Shr
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Ge
                }
                _ => Gt,
            },
            other => {
                if other >= 0x80 {
                    // Consume the remaining bytes of the UTF-8 sequence so a
                    // multi-byte character yields one diagnostic, not one per
                    // continuation byte.
                    while (0x80..0xC0).contains(&self.peek()) {
                        self.pos += 1;
                    }
                    self.diags.error(loc, "unexpected non-ASCII character");
                } else {
                    self.diags
                        .error(loc, format!("unexpected character '{}'", other as char));
                }
                // Recover by treating it as a semicolon-like separator.
                Semi
            }
        };
        TokenKind::Punct(p)
    }
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        b'\\' => '\\',
        b'\'' => '\'',
        b'"' => '"',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_source::FileManager;

    fn lex_all(src: &str) -> (Vec<Token>, DiagnosticsEngine) {
        let mut fm = FileManager::new();
        let buf = fm.add_virtual_file("t.c", src);
        let mut sm = SourceManager::new();
        let (id, _) = sm.add_file(buf);
        let diags = DiagnosticsEngine::new();
        let mut toks = Vec::new();
        {
            let mut lx = Lexer::new(&sm, id, &diags);
            loop {
                let t = lx.next_token();
                let eof = matches!(t.kind, TokenKind::Eof);
                toks.push(t);
                if eof {
                    break;
                }
            }
        }
        (toks, diags)
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex_all(src);
        assert!(
            !diags.has_errors(),
            "unexpected lex errors:\n{:?}",
            diags.all()
        );
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_keywords() {
        let k = kinds("int foo for4 for");
        assert_eq!(k[0], TokenKind::Kw(Keyword::Int));
        assert_eq!(k[1], TokenKind::Ident("foo".into()));
        assert_eq!(k[2], TokenKind::Ident("for4".into()));
        assert_eq!(k[3], TokenKind::Kw(Keyword::For));
    }

    #[test]
    fn integer_literals() {
        let k = kinds("0 42 0x2A 7u 9L 10ul");
        let vals: Vec<u128> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::IntLit { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![0, 42, 42, 7, 9, 10]);
        assert!(matches!(
            k[3],
            TokenKind::IntLit {
                suffix: IntSuffix::Unsigned,
                ..
            }
        ));
        assert!(matches!(
            k[4],
            TokenKind::IntLit {
                suffix: IntSuffix::Long,
                ..
            }
        ));
        assert!(matches!(
            k[5],
            TokenKind::IntLit {
                suffix: IntSuffix::UnsignedLong,
                ..
            }
        ));
    }

    #[test]
    fn float_literals() {
        let k = kinds("1.5 2. 3e2 4.5e-1 2.0f");
        let vals: Vec<f64> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::FloatLit(v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![1.5, 2.0, 300.0, 0.45, 2.0]);
    }

    #[test]
    fn float_vs_member_access() {
        let k = kinds("a.b");
        assert_eq!(k[0], TokenKind::Ident("a".into()));
        assert_eq!(k[1], TokenKind::Punct(Punct::Dot));
        assert_eq!(k[2], TokenKind::Ident("b".into()));
    }

    #[test]
    fn operators_maximal_munch() {
        let k = kinds("+= ++ + <<= << <= < ->");
        use Punct::*;
        let ps: Vec<Punct> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(
            ps,
            vec![PlusAssign, PlusPlus, Plus, ShlAssign, Shl, Le, Lt, Arrow]
        );
    }

    #[test]
    fn comments_are_trivia() {
        let k = kinds("a // line\n b /* block\n over lines */ c");
        assert_eq!(k.len(), 4); // a b c eof
    }

    #[test]
    fn line_start_flag() {
        let (toks, _) = lex_all("a b\nc");
        assert!(toks[0].at_line_start);
        assert!(!toks[1].at_line_start);
        assert!(toks[2].at_line_start);
    }

    #[test]
    fn backslash_newline_continues_line() {
        let (toks, _) = lex_all("a \\\nb");
        assert!(
            !toks[1].at_line_start,
            "continuation must not start a new line"
        );
    }

    #[test]
    fn string_and_char_literals() {
        let k = kinds(r#""hi\n" 'x' '\n'"#);
        assert_eq!(k[0], TokenKind::StrLit("hi\n".into()));
        assert_eq!(k[1], TokenKind::CharLit(b'x'));
        assert_eq!(k[2], TokenKind::CharLit(b'\n'));
    }

    #[test]
    fn unterminated_comment_diagnosed() {
        let (_, diags) = lex_all("a /* oops");
        assert!(diags.has_errors());
    }

    #[test]
    fn eof_is_sticky() {
        let (toks, _) = lex_all("");
        assert!(matches!(toks.last().unwrap().kind, TokenKind::Eof));
    }

    #[test]
    fn locations_point_at_token_start() {
        let (toks, _) = lex_all("ab cd");
        assert_eq!(toks[0].loc.raw(), 1);
        assert_eq!(toks[1].loc.raw(), 4);
    }
}
