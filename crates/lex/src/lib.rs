//! # omplt-lex
//!
//! The Lexer and Preprocessor layers of the pipeline (paper Fig. 1).
//!
//! The [`Lexer`] turns a [`omplt_source::MemoryBuffer`] into raw
//! [`Token`]s; the [`Preprocessor`] sits on top, handling `#include`,
//! object-like `#define` macro substitution, and — most importantly for this
//! reproduction — `#pragma omp` lines, which it re-emits bracketed between
//! [`TokenKind::PragmaOmpStart`] and [`TokenKind::PragmaOmpEnd`] annotation
//! tokens so the parser can treat a directive as a statement-level construct,
//! exactly like Clang's `annot_pragma_openmp`/`annot_pragma_openmp_end`
//! tokens.

pub mod lexer;
pub mod preprocessor;
pub mod token;

pub use lexer::Lexer;
pub use preprocessor::Preprocessor;
pub use token::{Keyword, Punct, Token, TokenKind};
