//! The Preprocessor layer: directive handling, object-like macro expansion,
//! and OpenMP pragma annotation.
//!
//! Supported directives:
//!
//! * `#include "file"` — pulls the file from the [`FileManager`] (virtual
//!   registrations first) and pushes a nested lexer.
//! * `#define NAME <replacement tokens>` / `#undef NAME` — object-like macros
//!   only; the paper motivates them as one way to select per-hardware
//!   transformation directives from the same algorithm source.
//! * `#pragma omp <...>` — re-emitted between [`TokenKind::PragmaOmpStart`]
//!   and [`TokenKind::PragmaOmpEnd`] annotation tokens (Clang's
//!   `annot_pragma_openmp` scheme). Pragma bodies are macro-expanded, so
//!   `#define TILE_SIZES sizes(32, 8)` works inside a directive.
//! * other `#pragma`s are dropped with a warning; unknown directives are
//!   errors.

use crate::lexer::Lexer;
use crate::token::{Punct, Token, TokenKind};
use omplt_source::{DiagnosticsEngine, FileManager, SourceManager};
use std::collections::HashMap;

/// The token-stream producer the parser consumes.
pub struct Preprocessor<'a> {
    sm: &'a mut SourceManager,
    fm: &'a mut FileManager,
    diags: &'a DiagnosticsEngine,
    /// Include stack; the innermost file is last. Each entry remembers the
    /// outer file's lookahead token to resume with once the include is done.
    stack: Vec<StackEntry<'a>>,
    macros: HashMap<String, Vec<Token>>,
    /// Tokens ready to be returned before pulling the lexer again.
    pending: std::collections::VecDeque<Token>,
    /// Lookahead slot for a token we pulled but did not consume.
    lookahead: Option<Token>,
    /// True while replaying pragma tokens (suppresses directive recursion).
    in_pragma: bool,
}

impl<'a> Preprocessor<'a> {
    /// Creates a preprocessor for the already-registered main file.
    pub fn new(
        sm: &'a mut SourceManager,
        fm: &'a mut FileManager,
        diags: &'a DiagnosticsEngine,
        main_file: omplt_source::FileId,
    ) -> Self {
        let lexer = Lexer::from_buffer(
            std::sync::Arc::clone(sm.buffer(main_file)),
            sm.loc_for_offset(main_file, 0),
            diags,
        );
        Preprocessor {
            sm,
            fm,
            diags,
            stack: vec![StackEntry {
                lexer,
                resume: None,
            }],
            macros: HashMap::new(),
            pending: std::collections::VecDeque::new(),
            lookahead: None,
            in_pragma: false,
        }
    }

    /// Defines an object-like macro programmatically (like `-D` on the
    /// command line). The replacement is lexed from `replacement`.
    pub fn define(&mut self, name: &str, replacement: &str) {
        let buf = self
            .fm
            .add_virtual_file(format!("<define:{name}>"), replacement.to_string());
        let (_, start) = self.sm.add_file(buf.clone());
        let mut lx = Lexer::from_buffer(buf, start, self.diags);
        let mut toks = Vec::new();
        loop {
            let t = lx.next_token();
            if matches!(t.kind, TokenKind::Eof) {
                break;
            }
            toks.push(t);
        }
        self.macros.insert(name.to_string(), toks);
    }

    /// Pulls the next raw token from the innermost lexer, popping finished
    /// includes (and restoring the including file's saved lookahead).
    fn raw_next(&mut self) -> Token {
        loop {
            if let Some(t) = self.lookahead.take() {
                return t;
            }
            let t = self
                .stack
                .last_mut()
                .expect("lexer stack never empty")
                .lexer
                .next_token();
            if matches!(t.kind, TokenKind::Eof) && self.stack.len() > 1 {
                let entry = self.stack.pop().expect("checked non-empty");
                self.lookahead = entry.resume;
                continue;
            }
            return t;
        }
    }

    fn raw_peek(&mut self) -> &Token {
        if self.lookahead.is_none() {
            let t = self.raw_next();
            self.lookahead = Some(t);
        }
        self.lookahead.as_ref().unwrap()
    }

    /// Produces the next preprocessed token.
    pub fn next_token(&mut self) -> Token {
        loop {
            if let Some(t) = self.pending.pop_front() {
                return t;
            }
            let t = self.raw_next();
            match &t.kind {
                TokenKind::Punct(Punct::Hash) if t.at_line_start && !self.in_pragma => {
                    self.handle_directive(t);
                }
                TokenKind::Ident(name) => {
                    if let Some(replacement) = self.macros.get(name) {
                        // Object-like expansion: replay the replacement with
                        // the use-site's line-start flag on the first token.
                        let mut rep = replacement.clone();
                        if let Some(first) = rep.first_mut() {
                            first.at_line_start = t.at_line_start;
                            first.loc = t.loc;
                        }
                        for tok in rep.into_iter().rev() {
                            self.pending.push_front(tok);
                        }
                        continue;
                    }
                    return t;
                }
                _ => return t,
            }
        }
    }

    /// Collects every remaining token including the final `Eof` — the
    /// convenience entry point used by the parser and tests.
    pub fn tokenize_all(&mut self) -> Vec<Token> {
        let _span = omplt_trace::span("lex.tokenize");
        let mut out = Vec::new();
        loop {
            // Fault site: COUNT selects which token's lexing panics.
            omplt_fault::panic_if_armed("lex.panic");
            let t = self.next_token();
            let eof = matches!(t.kind, TokenKind::Eof);
            out.push(t);
            if eof {
                omplt_trace::count("lex.tokens", out.len() as u64);
                return out;
            }
        }
    }

    /// Reads the rest of the current directive line (tokens until the next
    /// line-start token or EOF), leaving the follower in the lookahead.
    fn rest_of_line(&mut self) -> Vec<Token> {
        let mut toks = Vec::new();
        loop {
            let t = self.raw_peek();
            if matches!(t.kind, TokenKind::Eof) || t.at_line_start {
                return toks;
            }
            toks.push(self.raw_next());
        }
    }

    fn handle_directive(&mut self, hash: Token) {
        let name_tok = self.raw_peek();
        if name_tok.at_line_start || matches!(name_tok.kind, TokenKind::Eof) {
            return; // null directive: lone '#'
        }
        let name = match &self.raw_next().kind {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Kw(k) => k.as_str().to_string(),
            other => {
                self.diags.error(
                    hash.loc,
                    format!("expected directive name after '#', got {other:?}"),
                );
                self.rest_of_line();
                return;
            }
        };
        match name.as_str() {
            "pragma" => self.handle_pragma(),
            "define" => {
                let line = self.rest_of_line();
                match line.split_first() {
                    Some((
                        Token {
                            kind: TokenKind::Ident(n),
                            ..
                        },
                        rest,
                    )) => {
                        self.macros.insert(n.clone(), rest.to_vec());
                    }
                    _ => self.diags.error(hash.loc, "#define requires a macro name"),
                }
            }
            "undef" => {
                let line = self.rest_of_line();
                match line.first() {
                    Some(Token {
                        kind: TokenKind::Ident(n),
                        ..
                    }) => {
                        self.macros.remove(n);
                    }
                    _ => self.diags.error(hash.loc, "#undef requires a macro name"),
                }
            }
            "include" => {
                let line = self.rest_of_line();
                match line.first() {
                    Some(Token {
                        kind: TokenKind::StrLit(path),
                        loc,
                        ..
                    }) => {
                        let path = path.clone();
                        let loc = *loc;
                        match self.fm.get_file(&path) {
                            Ok(buf) => {
                                if self.stack.len() >= 64 {
                                    self.diags.error(loc, "#include nested too deeply");
                                    return;
                                }
                                let (_, start) = self.sm.add_file(buf.clone());
                                // The lookahead token (if any) belongs to the
                                // outer file; resume with it after the include.
                                let resume = self.lookahead.take();
                                self.stack.push(StackEntry {
                                    lexer: Lexer::from_buffer(buf, start, self.diags),
                                    resume,
                                });
                            }
                            Err(e) => {
                                self.diags.error(loc, format!("cannot open '{path}': {e}"));
                            }
                        }
                    }
                    _ => self.diags.error(hash.loc, "#include expects \"file\""),
                }
            }
            other => {
                self.diags.error(
                    hash.loc,
                    format!("unknown preprocessor directive '#{other}'"),
                );
                self.rest_of_line();
            }
        }
    }

    fn handle_pragma(&mut self) {
        let line = self.rest_of_line();
        let is_omp = matches!(line.first(), Some(t) if t.kind.is_ident("omp"));
        if !is_omp {
            let what = line
                .first()
                .map(|t| t.describe())
                .unwrap_or_else(|| "<empty>".to_string());
            self.diags.warning(
                line.first()
                    .map_or(omplt_source::SourceLocation::INVALID, |t| t.loc),
                format!("ignoring unsupported pragma starting with {what}"),
            );
            return;
        }
        let start_loc = line[0].loc;
        // Replay as: PragmaOmpStart, <body tokens after 'omp'>, PragmaOmpEnd.
        // Macro expansion of the body happens in next_token() when Ident
        // tokens are pulled from `pending`... but pending bypasses expansion,
        // so expand here instead.
        self.pending.push_back(Token {
            kind: TokenKind::PragmaOmpStart,
            loc: start_loc,
            at_line_start: true,
        });
        for t in line.into_iter().skip(1) {
            if let TokenKind::Ident(name) = &t.kind {
                if let Some(rep) = self.macros.get(name) {
                    for mut r in rep.clone() {
                        r.loc = t.loc;
                        r.at_line_start = false;
                        self.pending.push_back(r);
                    }
                    continue;
                }
            }
            self.pending.push_back(t);
        }
        self.pending.push_back(Token {
            kind: TokenKind::PragmaOmpEnd,
            loc: start_loc,
            at_line_start: false,
        });
    }
}

/// One level of the include stack.
struct StackEntry<'a> {
    lexer: Lexer<'a>,
    /// The including file's lookahead token, returned after this file's EOF.
    resume: Option<Token>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use omplt_source::FileManager;

    fn pp_all(src: &str) -> (Vec<Token>, String) {
        pp_all_with(src, &[])
    }

    fn pp_all_with(src: &str, extra_files: &[(&str, &str)]) -> (Vec<Token>, String) {
        let mut fm = FileManager::new();
        for (name, text) in extra_files {
            fm.add_virtual_file(*name, *text);
        }
        let main = fm.add_virtual_file("main.c", src);
        let mut sm = SourceManager::new();
        let (id, _) = sm.add_file(main);
        let diags = DiagnosticsEngine::new();
        let toks = {
            let mut pp = Preprocessor::new(&mut sm, &mut fm, &diags, id);
            pp.tokenize_all()
        };
        let rendered = diags.render(&sm);
        (toks, rendered)
    }

    fn spellings(toks: &[Token]) -> Vec<String> {
        toks.iter()
            .map(|t| match &t.kind {
                TokenKind::Ident(s) => s.clone(),
                TokenKind::Kw(k) => k.as_str().to_string(),
                TokenKind::IntLit { value, .. } => value.to_string(),
                TokenKind::FloatLit(v) => v.to_string(),
                TokenKind::StrLit(s) => format!("\"{s}\""),
                TokenKind::CharLit(c) => format!("'{}'", *c as char),
                TokenKind::Punct(p) => p.as_str().to_string(),
                TokenKind::PragmaOmpStart => "<omp>".to_string(),
                TokenKind::PragmaOmpEnd => "</omp>".to_string(),
                TokenKind::Eof => "<eof>".to_string(),
            })
            .collect()
    }

    #[test]
    fn passthrough() {
        let (toks, errs) = pp_all("int x = 1;");
        assert!(errs.is_empty(), "{errs}");
        assert_eq!(spellings(&toks), vec!["int", "x", "=", "1", ";", "<eof>"]);
    }

    #[test]
    fn object_macro_expansion() {
        let (toks, errs) = pp_all("#define N 100\nint a[N];");
        assert!(errs.is_empty(), "{errs}");
        assert_eq!(
            spellings(&toks),
            vec!["int", "a", "[", "100", "]", ";", "<eof>"]
        );
    }

    #[test]
    fn multi_token_macro() {
        let (toks, _) = pp_all("#define EXPR (1 + 2)\nint x = EXPR;");
        assert_eq!(
            spellings(&toks),
            vec!["int", "x", "=", "(", "1", "+", "2", ")", ";", "<eof>"]
        );
    }

    #[test]
    fn undef_stops_expansion() {
        let (toks, _) = pp_all("#define N 1\n#undef N\nint N;");
        assert_eq!(spellings(&toks), vec!["int", "N", ";", "<eof>"]);
    }

    #[test]
    fn omp_pragma_is_annotated() {
        let (toks, errs) = pp_all("#pragma omp unroll partial(2)\nfor(;;) ;");
        assert!(errs.is_empty(), "{errs}");
        assert_eq!(
            spellings(&toks),
            vec![
                "<omp>", "unroll", "partial", "(", "2", ")", "</omp>", "for", "(", ";", ";", ")",
                ";", "<eof>"
            ]
        );
    }

    #[test]
    fn omp_pragma_body_macro_expands() {
        let (toks, _) = pp_all("#define FACTOR 8\n#pragma omp unroll partial(FACTOR)\n;");
        assert_eq!(
            spellings(&toks),
            vec!["<omp>", "unroll", "partial", "(", "8", ")", "</omp>", ";", "<eof>"]
        );
    }

    #[test]
    fn non_omp_pragma_dropped_with_warning() {
        let (toks, rendered) = pp_all("#pragma once\nint x;");
        assert_eq!(spellings(&toks), vec!["int", "x", ";", "<eof>"]);
        assert!(
            rendered.contains("warning: ignoring unsupported pragma"),
            "{rendered}"
        );
    }

    #[test]
    fn include_splices_file() {
        let (toks, errs) = pp_all_with(
            "#include \"defs.h\"\nint x = M;",
            &[("defs.h", "#define M 5\nint from_header;\n")],
        );
        assert!(errs.is_empty(), "{errs}");
        assert_eq!(
            spellings(&toks),
            vec![
                "int",
                "from_header",
                ";",
                "int",
                "x",
                "=",
                "5",
                ";",
                "<eof>"
            ]
        );
    }

    #[test]
    fn missing_include_is_error() {
        let (_, rendered) = pp_all("#include \"nope.h\"\n");
        assert!(rendered.contains("cannot open 'nope.h'"), "{rendered}");
    }

    #[test]
    fn unknown_directive_is_error() {
        let (_, rendered) = pp_all("#frobnicate all the things\nint x;");
        assert!(rendered.contains("unknown preprocessor directive '#frobnicate'"));
    }

    #[test]
    fn pragma_line_ends_at_newline() {
        let (toks, _) = pp_all("#pragma omp parallel for\nint x;");
        let sp = spellings(&toks);
        let end = sp.iter().position(|s| s == "</omp>").unwrap();
        assert_eq!(&sp[end + 1..end + 3], &["int".to_string(), "x".to_string()]);
    }

    #[test]
    fn pragma_with_line_continuation() {
        let (toks, _) = pp_all("#pragma omp tile \\\n  sizes(4, 4)\nint x;");
        let sp = spellings(&toks);
        assert_eq!(
            sp,
            vec![
                "<omp>", "tile", "sizes", "(", "4", ",", "4", ")", "</omp>", "int", "x", ";",
                "<eof>"
            ]
        );
    }

    #[test]
    fn programmatic_define() {
        let mut fm = FileManager::new();
        let main = fm.add_virtual_file("main.c", "int a[WIDTH];");
        let mut sm = SourceManager::new();
        let (id, _) = sm.add_file(main);
        let diags = DiagnosticsEngine::new();
        let toks = {
            let mut pp = Preprocessor::new(&mut sm, &mut fm, &diags, id);
            pp.define("WIDTH", "32");
            pp.tokenize_all()
        };
        assert_eq!(
            spellings(&toks),
            vec!["int", "a", "[", "32", "]", ";", "<eof>"]
        );
    }
}
