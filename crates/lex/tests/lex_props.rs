//! Property tests for the lexer/preprocessor layer.

use omplt_lex::{Preprocessor, TokenKind};
use omplt_source::{DiagnosticsEngine, FileManager, SourceManager};
use proptest::prelude::*;

fn lex(src: &str) -> (Vec<TokenKind>, bool) {
    let mut fm = FileManager::new();
    let main = fm.add_virtual_file("p.c", src);
    let mut sm = SourceManager::new();
    let (id, _) = sm.add_file(main);
    let diags = DiagnosticsEngine::new();
    let toks = {
        let mut pp = Preprocessor::new(&mut sm, &mut fm, &diags, id);
        pp.tokenize_all()
    };
    (toks.into_iter().map(|t| t.kind).collect(), diags.has_errors())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn lexer_never_panics_on_arbitrary_ascii(src in "[ -~\n\t]{0,200}") {
        // Any printable-ASCII input must lex to EOF without panicking
        // (errors are fine; crashes are not).
        let (toks, _) = lex(&src);
        prop_assert!(matches!(toks.last(), Some(TokenKind::Eof)));
    }

    #[test]
    fn integer_literals_round_trip(v in 0u64..=u64::MAX / 2) {
        let (toks, errs) = lex(&format!("{v}"));
        prop_assert!(!errs);
        let ok = matches!(toks[0], TokenKind::IntLit { value, .. } if value == v as u128);
        prop_assert!(ok);
    }

    #[test]
    fn identifiers_survive_whitespace_and_comments(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,10}",
        pad in "[ \t\n]{0,5}",
    ) {
        let (toks, errs) = lex(&format!("{pad}{name}{pad}// trailing\n"));
        prop_assert!(!errs);
        match &toks[0] {
            TokenKind::Ident(s) => prop_assert_eq!(s, &name),
            TokenKind::Kw(_) => {} // reserved words are fine
            other => prop_assert!(false, "unexpected token {:?}", other),
        }
    }

    #[test]
    fn macro_substitution_is_literal(v in 0u32..1_000_000) {
        let (toks, errs) = lex(&format!("#define K {v}\nint a = K;"));
        prop_assert!(!errs);
        let found = toks
            .iter()
            .any(|t| matches!(t, TokenKind::IntLit { value, .. } if *value == v as u128));
        prop_assert!(found);
    }

    #[test]
    fn pragma_bodies_are_bracketed(factor in 1u32..64) {
        let (toks, errs) = lex(&format!("#pragma omp unroll partial({factor})\n;"));
        prop_assert!(!errs);
        let start = toks.iter().position(|t| matches!(t, TokenKind::PragmaOmpStart));
        let end = toks.iter().position(|t| matches!(t, TokenKind::PragmaOmpEnd));
        prop_assert!(start.is_some() && end.is_some() && start < end);
    }
}
