//! Property-style tests for the lexer/preprocessor layer.
//!
//! Formerly written with `proptest`; rewritten as deterministic pseudo-random
//! sweeps (fixed-seed xorshift) so the workspace builds without registry
//! access. Coverage is equivalent: each test drives the same predicates over
//! hundreds of generated inputs, and failures print the offending input.

use omplt_lex::{Preprocessor, TokenKind};
use omplt_source::{DiagnosticsEngine, FileManager, SourceManager};

/// Minimal deterministic PRNG (xorshift64*), good enough for input sweeps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

fn lex(src: &str) -> (Vec<TokenKind>, bool) {
    let mut fm = FileManager::new();
    let main = fm.add_virtual_file("p.c", src);
    let mut sm = SourceManager::new();
    let (id, _) = sm.add_file(main);
    let diags = DiagnosticsEngine::new();
    let toks = {
        let mut pp = Preprocessor::new(&mut sm, &mut fm, &diags, id);
        pp.tokenize_all()
    };
    (
        toks.into_iter().map(|t| t.kind).collect(),
        diags.has_errors(),
    )
}

/// `[ -~\n\t]{0,200}`: printable ASCII plus newline/tab.
fn arbitrary_ascii(rng: &mut Rng) -> String {
    let len = rng.below(201) as usize;
    (0..len)
        .map(|_| match rng.below(100) {
            0..=4 => '\n',
            5..=9 => '\t',
            _ => (b' ' + rng.below(95) as u8) as char,
        })
        .collect()
}

#[test]
fn lexer_never_panics_on_arbitrary_ascii() {
    let mut rng = Rng::new(0x1ECE_D01A);
    for case in 0..200 {
        // Any printable-ASCII input must lex to EOF without panicking
        // (errors are fine; crashes are not).
        let src = arbitrary_ascii(&mut rng);
        let (toks, _) = lex(&src);
        assert!(
            matches!(toks.last(), Some(TokenKind::Eof)),
            "case {case}: no EOF for input {src:?}"
        );
    }
}

#[test]
fn integer_literals_round_trip() {
    let mut rng = Rng::new(0xB16B00B5);
    let mut values: Vec<u64> = (0..200).map(|_| rng.next() % (u64::MAX / 2 + 1)).collect();
    values.extend([0, 1, 7, u64::MAX / 2]);
    for v in values {
        let (toks, errs) = lex(&format!("{v}"));
        assert!(!errs, "errors lexing literal {v}");
        let ok = matches!(toks[0], TokenKind::IntLit { value, .. } if value == v as u128);
        assert!(ok, "literal {v} did not round-trip: {:?}", toks[0]);
    }
}

#[test]
fn identifiers_survive_whitespace_and_comments() {
    let mut rng = Rng::new(0x5EED1D);
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    const PAD: &[u8] = b" \t\n";
    for _ in 0..200 {
        let mut name = String::new();
        name.push(FIRST[rng.below(FIRST.len() as u64) as usize] as char);
        for _ in 0..rng.below(11) {
            name.push(REST[rng.below(REST.len() as u64) as usize] as char);
        }
        let pad: String = (0..rng.below(6))
            .map(|_| PAD[rng.below(PAD.len() as u64) as usize] as char)
            .collect();
        let (toks, errs) = lex(&format!("{pad}{name}{pad}// trailing\n"));
        assert!(!errs, "errors lexing identifier {name:?}");
        match &toks[0] {
            TokenKind::Ident(s) => assert_eq!(s, &name),
            TokenKind::Kw(_) => {} // reserved words are fine
            other => panic!("unexpected token {other:?} for identifier {name:?}"),
        }
    }
}

#[test]
fn macro_substitution_is_literal() {
    let mut rng = Rng::new(0xDEF17E);
    for _ in 0..100 {
        let v = rng.below(1_000_000) as u32;
        let (toks, errs) = lex(&format!("#define K {v}\nint a = K;"));
        assert!(!errs, "errors expanding macro K = {v}");
        let found = toks
            .iter()
            .any(|t| matches!(t, TokenKind::IntLit { value, .. } if *value == v as u128));
        assert!(found, "macro value {v} not substituted");
    }
}

#[test]
fn pragma_bodies_are_bracketed() {
    let mut rng = Rng::new(0x0F_0A_66_A5);
    for _ in 0..63 {
        let factor = rng.range(1, 64) as u32;
        let (toks, errs) = lex(&format!("#pragma omp unroll partial({factor})\n;"));
        assert!(!errs, "errors lexing pragma with factor {factor}");
        let start = toks
            .iter()
            .position(|t| matches!(t, TokenKind::PragmaOmpStart));
        let end = toks
            .iter()
            .position(|t| matches!(t, TokenKind::PragmaOmpEnd));
        assert!(
            start.is_some() && end.is_some() && start < end,
            "pragma not bracketed for factor {factor}: start {start:?} end {end:?}"
        );
    }
}
