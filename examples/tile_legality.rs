//! Transformation legality: `#pragma omp tile sizes(4, 4)` requires a
//! perfectly nested loop nest of depth 2 (OpenMP 5.1 §4.4.2). This example
//! runs the `--analyze` legality pass over a *negative* case — a statement
//! between the two loops that depends on the outer iteration variable — and
//! over the corrected perfectly nested version.
//!
//! ```text
//! cargo run --example tile_legality
//! ```

use omplt::{CompilerInstance, Options};

/// `int t = i * 8;` sits between the loops. Sema's transformation machinery
/// would hoist it out of the nest, but `t` depends on `i`, so the hoisted
/// value would be stale for every tile except the first — the legality pass
/// rejects the nest instead.
const IMPERFECT: &str = r#"
int main(void) {
  int a[64];
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < 8; i += 1) {
    int t = i * 8;
    for (int j = 0; j < 8; j += 1)
      a[t + j] = t;
  }
  return 0;
}
"#;

/// The same computation with the intervening statement folded into the
/// innermost body — a perfectly nested, tileable nest.
const PERFECT: &str = r#"
int main(void) {
  int a[64];
  #pragma omp tile sizes(4, 4)
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 8; j += 1)
      a[i * 8 + j] = i * 8;
  return 0;
}
"#;

fn analyze(name: &str, source: &str) {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source(name, source).expect("parse");
    let report = ci.analyze(&tu);
    if report.has_findings() {
        println!("{} error(s):\n", report.errors);
        print!("{}", ci.render_diags());
    } else {
        println!("no findings — the nest is legal to tile ✓");
    }
}

fn main() {
    println!("=== imperfect nest (rejected) ===\n{IMPERFECT}");
    analyze("imperfect.c", IMPERFECT);

    println!("\n=== perfectly nested (accepted) ===\n{PERFECT}");
    analyze("perfect.c", PERFECT);
}
