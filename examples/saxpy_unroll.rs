//! SAXPY with `parallel for` + `unroll partial` — the paper's §1 motivation
//! of separating algorithm from optimization: the same loop body is tried
//! with several unroll factors (via the preprocessor, exactly as the paper
//! suggests) without ever editing the algorithm.
//!
//! ```text
//! cargo run --example saxpy_unroll
//! ```

use omplt::{CompilerInstance, Options};

fn saxpy_source() -> &'static str {
    r#"
void print_i64(long v);
double x[256];
double y[256];

int main(void) {
  for (int i = 0; i < 256; i += 1) {
    x[i] = i;
    y[i] = 256 - i;
  }

  #pragma omp parallel for
  #pragma omp unroll partial(FACTOR)
  for (int i = 0; i < 256; i += 1)
    y[i] = 2.0 * x[i] + y[i];

  double sum = 0.0;
  for (int i = 0; i < 256; i += 1)
    sum = sum + y[i];
  print_i64((long)sum);
  return 0;
}
"#
}

fn main() {
    let mut reference: Option<String> = None;
    for factor in [1u64, 2, 4, 8] {
        for threads in [1u32, 4] {
            let mut ci = CompilerInstance::new(Options {
                num_threads: threads,
                ..Options::default()
            });
            // -D FACTOR=<n>, like trying optimization variants from a build
            // system (paper §1.1: "easier to experiment with different
            // optimizations to find the best-performing").
            let src = saxpy_source().replace("FACTOR", &factor.to_string());
            let r = ci.compile_and_run("saxpy.c", &src, true).expect("pipeline");
            println!(
                "factor {factor}, {threads} thread(s): checksum = {}, tasks/steps ok",
                r.stdout.trim()
            );
            match &reference {
                None => reference = Some(r.stdout.clone()),
                Some(expect) => assert_eq!(&r.stdout, expect, "factor {factor} diverged"),
            }
        }
    }
    println!("\nevery (factor × team size) combination computed the same checksum ✓");
}
