//! Transformation legality: `#pragma omp interchange` may only permute a
//! loop nest when no dependence has direction `(<, >)` under the new loop
//! order — swapping such a nest would run the sink before its source. This
//! example runs the `--analyze` dependence pass over a *negative* case (a
//! wavefront stencil whose flow dependence flips sign under interchange)
//! and over a legal permutation of an independent nest.
//!
//! ```text
//! cargo run --example interchange_legality
//! ```

use omplt::{CompilerInstance, Options};

/// `a[i][j]` is written at iteration `(i, j)` and read at `(i+1, j-1)`: the
/// flow dependence has distance vector `(1, -1)`, direction `(<, >)`.
/// Interchanging the loops would make the reader run *before* the writer —
/// the dependence pass rejects the permutation.
const ILLEGAL: &str = r#"
int main(void) {
  int a[9][9];
  #pragma omp interchange
  for (int i = 1; i < 8; i += 1)
    for (int j = 1; j < 8; j += 1)
      a[i][j] = a[i - 1][j + 1] + 1;
  return 0;
}
"#;

/// Every iteration touches a distinct cell, so all direction vectors are
/// `(=, =)` and any permutation is legal — here the classic locality motive
/// for interchange: making the stride-1 subscript the inner loop.
const LEGAL: &str = r#"
int main(void) {
  int a[72];
  #pragma omp interchange permutation(2, 1)
  for (int j = 0; j < 9; j += 1)
    for (int i = 0; i < 8; i += 1)
      a[i * 9 + j] = i + j;
  return 0;
}
"#;

fn analyze(name: &str, source: &str) {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source(name, source).expect("parse");
    let report = ci.analyze(&tu);
    if report.has_findings() {
        println!("{} error(s):\n", report.errors);
        print!("{}", ci.render_diags());
    } else {
        println!("no findings — the permutation is legal ✓");
    }
}

fn main() {
    println!("=== wavefront dependence (rejected) ===\n{ILLEGAL}");
    analyze("wavefront.c", ILLEGAL);

    println!("\n=== independent nest (accepted) ===\n{LEGAL}");
    analyze("independent.c", LEGAL);
}
