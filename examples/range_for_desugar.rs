//! The paper's §3 range-based for-loop story (Fig. lst:rangeloop): the
//! *loop user variable*, the *loop iteration variable*, and the *logical
//! iteration counter* are three different things, and the
//! `OMPCanonicalLoop` meta node carries exactly the functions needed to
//! translate between them.
//!
//! ```text
//! cargo run --example range_for_desugar
//! ```

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

const SOURCE: &str = r#"
void print_i64(long v);
double container[6];

int main(void) {
  for (int i = 0; i < 6; i += 1)
    container[i] = i * 1.5;

  #pragma omp unroll partial(2)
  for (double &val : container)
    print_i64((long)(val * 2.0));
  return 0;
}
"#;

fn main() {
    println!("=== source (stage (a) of the paper's Fig. lst:rangeloop) ===\n{SOURCE}");

    let mut ci = CompilerInstance::new(Options {
        codegen_mode: OpenMpCodegenMode::IrBuilder,
        ..Options::default()
    });
    let tu = ci.parse_source("range.c", SOURCE).expect("parse");

    println!("=== CXXForRangeStmt with its de-sugared helpers (stage (b)) ===");
    let dump = ci.ast_dump(&tu);
    print!("{dump}");
    for marker in ["__range", "__begin", "__end", "OMPCanonicalLoop"] {
        assert!(dump.contains(marker), "expected {marker} in dump");
    }

    println!("\nThe OMPCanonicalLoop's children carry the three meta-information items:");
    println!("  1. distance function:        Result = __end - __begin");
    println!("  2. loop user value function: double &val = *(__begin + __i)   (stage (c), line 6)");
    println!("  3. user variable reference:  'val'");

    let module = ci.codegen(&tu).expect("codegen");
    let r = ci.run(&module).expect("run");
    println!("\n=== output ===\n{}", r.stdout);
    assert_eq!(r.stdout, "0\n3\n6\n9\n12\n15\n");

    // Same semantics through the classic path.
    let mut classic = CompilerInstance::new(Options::default());
    let r2 = classic
        .compile_and_run("range.c", SOURCE, true)
        .expect("classic pipeline");
    assert_eq!(r.stdout, r2.stdout);
    println!("classic and canonical paths agree on the iterator loop ✓");
}
