//! Race detection: run the `--analyze` suite over a shared-accumulator
//! parallel loop (a classic data race), then over the `reduction` fix, and
//! show the Clang-style `-Wrace` diagnostics.
//!
//! ```text
//! cargo run --example race_detection
//! ```

use omplt::{CompilerInstance, Options};

/// Every iteration read-modify-writes `sum`, which is shared by default:
/// two threads can interleave between the load and the store and lose
/// updates.
const RACY: &str = r#"
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i += 1)
    a[i] = i;

  int sum = 0;
  #pragma omp parallel for
  for (int i = 0; i < 64; i += 1)
    sum += a[i];
  return sum;
}
"#;

/// The same loop with the accumulator declared as a `+` reduction: each
/// thread sums privately and the runtime combines the partial results.
const FIXED: &str = r#"
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i += 1)
    a[i] = i;

  int sum = 0;
  #pragma omp parallel for reduction(+: sum)
  for (int i = 0; i < 64; i += 1)
    sum += a[i];
  return sum;
}
"#;

fn analyze(name: &str, source: &str) {
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source(name, source).expect("parse");
    let report = ci.analyze(&tu);
    if report.has_findings() {
        println!(
            "{} finding(s) — {} error(s), {} warning(s):\n",
            report.errors + report.warnings,
            report.errors,
            report.warnings
        );
        print!("{}", ci.render_diags());
    } else {
        println!("no findings — the loop is race-free ✓");
    }
}

fn main() {
    println!("=== shared-accumulator loop (racy) ===\n{RACY}");
    analyze("racy.c", RACY);

    println!("\n=== with reduction(+: sum) (fixed) ===\n{FIXED}");
    analyze("fixed.c", FIXED);
}
