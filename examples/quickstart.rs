//! Quickstart: compile the paper's running example through both
//! representations and watch each pipeline stage's artifact.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};

const SOURCE: &str = r#"
void print_i64(long v);

int main(void) {
  #pragma omp unroll partial(2)
  for (int i = 7; i < 17; i += 3)
    print_i64(i);
  return 0;
}
"#;

fn main() {
    println!("=== source ===\n{SOURCE}");

    // ---- Shadow-AST representation (paper §2) ----
    let mut ci = CompilerInstance::new(Options::default());
    let tu = ci.parse_source("quickstart.c", SOURCE).expect("parse");

    println!("=== syntactic AST (clang -ast-dump style) ===");
    print!("{}", ci.ast_dump(&tu));

    println!("\n=== with the shadow (transformed) AST made visible ===");
    print!("{}", ci.ast_dump_transformed(&tu));

    let mut module = ci.codegen(&tu).expect("codegen");
    println!("\n=== classic-path IR (unroll deferred via metadata) ===");
    print!("{}", omplt::ir::print_module(&module));

    let stats = ci.optimize(&mut module);
    println!("\n=== after the mid-end LoopUnroll pass {stats:?} ===");
    print!("{}", omplt::ir::print_module(&module));

    let result = ci.run(&module).expect("run");
    println!("\n=== program output (classic) ===\n{}", result.stdout);

    // ---- Canonical-loop representation (paper §3) ----
    let mut ci2 = CompilerInstance::new(Options {
        codegen_mode: OpenMpCodegenMode::IrBuilder,
        ..Options::default()
    });
    let tu2 = ci2.parse_source("quickstart.c", SOURCE).expect("parse");
    println!("=== OMPCanonicalLoop AST (irbuilder mode) ===");
    print!("{}", ci2.ast_dump(&tu2));

    let module2 = ci2.codegen(&tu2).expect("codegen");
    println!("\n=== OpenMPIRBuilder-path IR (createCanonicalLoop skeleton) ===");
    print!("{}", omplt::ir::print_module(&module2));

    let result2 = ci2.run(&module2).expect("run");
    println!("\n=== program output (irbuilder) ===\n{}", result2.stdout);

    assert_eq!(result.stdout, result2.stdout, "both representations agree");
    println!("both representations produced identical output ✓");
}
