//! Prints the paper's representation-cost comparison (experiment C1): how
//! many Sema-built helper nodes each representation needs for the same
//! worksharing construct, per collapse depth.
//!
//! ```text
//! cargo run --example representation_compare
//! ```

use omplt::{ast, CompilerInstance, OpenMpCodegenMode, Options};
use omplt_ast::StmtKind;

fn source(depth: usize) -> String {
    let mut loops = String::new();
    for k in 0..depth {
        loops.push_str(&format!("  for (int i{k} = 0; i{k} < 32; i{k} += 1)\n"));
    }
    format!(
        "void body(int x);\nvoid f(void) {{\n  #pragma omp for collapse({depth})\n{loops}    body(i0);\n}}\n"
    )
}

fn directive(tu: &ast::TranslationUnit) -> ast::P<ast::OMPDirective> {
    let f = tu.function("f").unwrap();
    let body = f.body.borrow();
    let StmtKind::Compound(stmts) = &body.as_ref().unwrap().kind else {
        panic!()
    };
    let StmtKind::OMP(d) = &stmts[0].kind else {
        panic!()
    };
    ast::P::clone(d)
}

fn main() {
    println!("Sema-resolved helper nodes per representation (paper §3: \"reduced");
    println!("from the 36 shadow AST nodes required by OMPLoopDirective\" to 3):\n");
    println!(
        "{:<10} {:>28} {:>26}",
        "collapse", "classic OMPLoopDirective", "OMPCanonicalLoop items"
    );
    println!("{:-<66}", "");
    for depth in 1..=4usize {
        let src = source(depth);

        let mut classic = CompilerInstance::new(Options::default());
        let tu = classic.parse_source("c.c", &src).expect("parse");
        let d = directive(&tu);
        let classic_nodes = d.loop_helpers.as_ref().map_or(0, |h| h.node_count());

        let mut irb = CompilerInstance::new(Options {
            codegen_mode: OpenMpCodegenMode::IrBuilder,
            ..Options::default()
        });
        let tu2 = irb.parse_source("c.c", &src).expect("parse");
        let d2 = directive(&tu2);
        assert!(d2.loop_helpers.is_none());
        let canonical_items = ast::OMPCanonicalLoop::META_NODE_COUNT;

        println!("{depth:<10} {classic_nodes:>28} {canonical_items:>26}");
    }
    println!("\n(Our classic bundle models 17 nest-wide + 6 per-loop helpers; Clang's");
    println!("additional distribute/doacross helpers are out of scope — DESIGN.md §7.)");
}
