/* 2D 5-point stencil (Jacobi sweep), tiled with `#pragma omp tile` and
 * distributed over a thread team with `#pragma omp parallel for` — the
 * driver-corpus twin of `examples/stencil_tiling.rs`.
 *
 *   ompltc --opt --run examples/c/stencil_tiling.c
 *   ompltc --time-trace=stencil.json --opt --run examples/c/stencil_tiling.c
 */
void print_i64(long v);
double grid[16][16];
double next[16][16];

int main(void) {
  for (int i = 0; i < 16; i += 1)
    for (int j = 0; j < 16; j += 1)
      grid[i][j] = (i * 31 + j * 17) % 97;

  #pragma omp parallel for
  #pragma omp tile sizes(4, 4)
  for (int i = 1; i < 15; i += 1)
    for (int j = 1; j < 15; j += 1)
      next[i][j] = 0.25 * (grid[i - 1][j] + grid[i + 1][j]
                         + grid[i][j - 1] + grid[i][j + 1]);

  double checksum = 0.0;
  for (int i = 0; i < 16; i += 1)
    for (int j = 0; j < 16; j += 1)
      checksum = checksum + next[i][j] * (i + 2 * j + 1);
  print_i64((long)checksum);
  return 0;
}
