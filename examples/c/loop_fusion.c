/* Loop fusion: two independent sweeps over adjacent arrays are merged by
 * `#pragma omp fuse` into a single loop, which `#pragma omp parallel for`
 * then distributes over the thread team — one worksharing region instead of
 * two, so a single barrier and one schedule covering both sweeps.
 *
 *   ompltc --opt --run examples/c/loop_fusion.c
 *   ompltc --analyze examples/c/loop_fusion.c
 */
void print_i64(long v);
long weights[24];
long offsets[18];

int main(void) {
  #pragma omp parallel for schedule(static)
  #pragma omp fuse
  {
    for (int i = 0; i < 24; i += 1)
      weights[i] = i * 7 + 3;
    for (int j = 0; j < 18; j += 1)
      offsets[j] = 200 - j * 5;
  }

  long checksum = 0;
  for (int k = 0; k < 24; k += 1)
    checksum += weights[k] * (k + 1);
  for (int k = 0; k < 18; k += 1)
    checksum += offsets[k];
  print_i64(checksum);
  return 0;
}
