/* Lane-parallel saxpy: `#pragma omp simd reduction(+: checksum)` marks the
 * update loop vectorizable, and the bytecode backend widens it into
 * vload/vbin/vstore lanes at `--vector-width=N` with a scalar epilogue for
 * the trip-count remainder (the interpreter always stays scalar and serves
 * as the oracle). The reduction is an *integer* accumulator: integer adds
 * reassociate freely, so the lane-parallel sum is bit-identical to the
 * scalar one — a float accumulator would be refused by the widening pass.
 *
 *   ompltc --backend=vm --vector-width=4 --run examples/c/saxpy_simd.c
 *   ompltc --backend=vm --vector-width=4 --emit-bytecode examples/c/saxpy_simd.c
 *   ompltc --analyze examples/c/saxpy_simd.c
 */
void print_i64(long v);
int x[103];
int y[103];

int main(void) {
  for (int i = 0; i < 103; i += 1) {
    x[i] = i - 50;
    y[i] = 3 * i + 1;
  }

  long checksum = 0;
  #pragma omp simd reduction(+: checksum) simdlen(4)
  for (int i = 0; i < 103; i += 1) {
    y[i] = y[i] + 7 * x[i];
    checksum += y[i];
  }

  print_i64(checksum);
  return 0;
}
