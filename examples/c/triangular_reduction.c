/* Triangular (imbalanced) reduction: iteration `i` of the worksharing loop
 * costs O(i), so the schedule kind/chunk decides how evenly the team splits
 * the work — the canonical autotuning workload (the bench twin runs the same
 * shape at N=600).
 *
 *   ompltc --run examples/c/triangular_reduction.c
 *   ompltc --autotune examples/c/triangular_reduction.c
 */
void print_i64(long v);

int main(void) {
  long sum = 0;
  #pragma omp parallel for reduction(+: sum) schedule(static)
  for (int i = 0; i < 48; i += 1)
    for (int j = 0; j < i; j += 1)
      sum = sum + (j % 7) + 1;
  print_i64(sum);
  return 0;
}
