//! `CompilerInstance`: the user-facing pipeline façade (the equivalent of
//! Clang's driver + CompilerInstance).

use omplt_ast::{DumpOptions, TranslationUnit};
use omplt_codegen::{codegen_translation_unit, CodegenOptions};
use omplt_interp::{Interpreter, RunResult, RuntimeConfig};
use omplt_ir::Module;
use omplt_lex::Preprocessor;
use omplt_parse::parse_translation_unit;
use omplt_sema::{OpenMpCodegenMode, Sema};
use omplt_source::{DiagnosticsEngine, FileManager, SourceManager};
use std::cell::RefCell;

/// Which execution engine `--run` uses (`ompltc --backend=...`).
///
/// The tree-walking interpreter is the default and the semantic oracle; the
/// bytecode VM is the fast path. Both share guest memory, arithmetic helpers,
/// and the whole OpenMP runtime, so observable behaviour is identical — the
/// differential test suite (`tests/backend_differential.rs`) enforces it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Tree-walking IR interpreter (`omplt-interp`).
    #[default]
    Interp,
    /// Register-based bytecode VM (`omplt-vm`). If bytecode compilation or
    /// verification fails, the run degrades gracefully: a warning is
    /// emitted and the interpreter executes the module instead.
    Vm,
    /// The VM with fallback disabled: any bytecode compile/verify failure
    /// is fatal (`--backend=vm:strict`).
    VmStrict,
}

impl Backend {
    /// Parses a `--backend=` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "interp" => Some(Backend::Interp),
            "vm" => Some(Backend::Vm),
            "vm:strict" => Some(Backend::VmStrict),
            _ => None,
        }
    }

    /// The flag spelling (`interp` / `vm` / `vm:strict`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Vm => "vm",
            Backend::VmStrict => "vm:strict",
        }
    }
}

/// Pipeline options (the interesting subset of `clang`'s flags).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Options {
    /// `-fopenmp` (default true) — honor OpenMP pragmas.
    pub openmp: bool,
    /// `-fopenmp-enable-irbuilder` — select the canonical-loop path.
    pub codegen_mode: OpenMpCodegenMode,
    /// Thread-team size for `parallel` regions.
    pub num_threads: u32,
    /// Serialize `parallel` regions (deterministic output for goldens).
    pub serial: bool,
    /// Interpreter step budget.
    pub max_steps: u64,
    /// `--verify-each` — re-check IR (including the canonical-loop skeleton
    /// invariants) after every `OpenMPIRBuilder` transformation and between
    /// every mid-end pass.
    pub verify_each: bool,
    /// What `schedule(runtime)` resolves to; `None` means the balanced
    /// static libomp default. Drivers resolve `OMP_SCHEDULE` exactly once
    /// at CLI/client entry — the runtime itself never reads the environment
    /// (a daemon's tenants must not see the server's env).
    pub runtime_schedule: Option<omplt_interp::RuntimeSchedule>,
    /// `--backend=interp|vm` — which engine executes `--run`.
    pub backend: Backend,
    /// Record every worksharing chunk served (for differential testing).
    pub log_chunks: bool,
    /// Cooperative wall-clock run deadline in milliseconds, enforced inside
    /// the engines at fuel-refill boundaries. The one-shot CLI keeps its
    /// process-exit watchdog instead; the daemon sets this so a runaway job
    /// aborts alone while the server keeps serving.
    pub deadline_ms: Option<u64>,
    /// `--vector-width=N` — widen `simd`-annotated loops to N lanes in the
    /// bytecode backend (`2..=8`; `0` disables the widening pass). The
    /// interpreter always stays scalar and serves as the oracle.
    pub vector_width: u8,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            openmp: true,
            codegen_mode: OpenMpCodegenMode::Classic,
            num_threads: 4,
            serial: false,
            max_steps: 500_000_000,
            verify_each: false,
            runtime_schedule: None,
            backend: Backend::Interp,
            log_chunks: false,
            deadline_ms: None,
            vector_width: 0,
        }
    }
}

/// Owns the shared compiler state for one or more compilations.
pub struct CompilerInstance {
    /// Options.
    pub opts: Options,
    /// File manager (register virtual files here before parsing).
    pub fm: FileManager,
    /// Source manager.
    pub sm: RefCell<SourceManager>,
    /// Diagnostics.
    pub diags: DiagnosticsEngine,
}

impl CompilerInstance {
    /// Creates a fresh instance.
    pub fn new(opts: Options) -> CompilerInstance {
        CompilerInstance {
            opts,
            fm: FileManager::new(),
            sm: RefCell::new(SourceManager::new()),
            diags: DiagnosticsEngine::new(),
        }
    }

    /// Parses `source` (registered under `name`) into an AST. On error
    /// returns the rendered diagnostics.
    pub fn parse_source(&mut self, name: &str, source: &str) -> Result<TranslationUnit, String> {
        let _span = omplt_trace::span_detail("frontend", name);
        omplt_fault::set_stage("parse");
        let buf = self.fm.add_virtual_file(name, source);
        let file_id = self.sm.borrow_mut().add_file(buf).0;
        let tokens = {
            let mut sm = self.sm.borrow_mut();
            let mut pp = Preprocessor::new(&mut sm, &mut self.fm, &self.diags, file_id);
            pp.tokenize_all()
        };
        let mut sema = Sema::new(
            &self.diags,
            &self.sm,
            self.opts.codegen_mode,
            self.opts.openmp,
        );
        let tu = parse_translation_unit(tokens, &mut sema);
        if self.diags.has_errors() {
            return Err(self.render_diags());
        }
        Ok(tu)
    }

    /// Renders all collected diagnostics.
    pub fn render_diags(&self) -> String {
        self.diags.render(&self.sm.borrow())
    }

    /// Renders all collected diagnostics as JSON (`--diag-format=json`).
    pub fn render_diags_json(&self) -> String {
        self.diags.render_json(&self.sm.borrow())
    }

    /// Runs the static-analysis suite (`--analyze`): transformation legality
    /// and `parallel for` race detection. Findings are reported through
    /// [`CompilerInstance::diags`]; the returned report counts what the
    /// analyses added.
    pub fn analyze(&self, tu: &TranslationUnit) -> omplt_analysis::AnalysisReport {
        omplt_analysis::run_analyses(tu, &self.diags)
    }

    /// Dumps the syntactic AST (`clang -ast-dump` style).
    pub fn ast_dump(&self, tu: &TranslationUnit) -> String {
        omplt_ast::dump_translation_unit(tu, DumpOptions::default())
    }

    /// Dumps the AST including shadow (transformed) subtrees.
    pub fn ast_dump_transformed(&self, tu: &TranslationUnit) -> String {
        omplt_ast::dump_translation_unit(
            tu,
            DumpOptions {
                show_transformed: true,
            },
        )
    }

    /// Lowers the AST to IR. On error returns rendered diagnostics.
    pub fn codegen(&self, tu: &TranslationUnit) -> Result<Module, String> {
        omplt_fault::set_stage("codegen");
        let r = codegen_translation_unit(
            tu,
            CodegenOptions {
                mode: self.opts.codegen_mode,
                verify_each: self.opts.verify_each,
            },
            &self.diags,
        );
        if self.diags.has_errors() {
            return Err(self.render_diags());
        }
        for f in &r.module.functions {
            let errs = omplt_ir::verify_function(f);
            if !errs.is_empty() {
                return Err(format!(
                    "internal error: IR verification failed for @{}:\n{}",
                    f.name,
                    errs.iter()
                        .map(|e| format!("  {e}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                ));
            }
        }
        Ok(r.module)
    }

    /// Runs the mid-end pipeline (SimplifyCfg, ConstFold, LoopUnroll). With
    /// `verify_each` set, the full verifier (structural + canonical-loop
    /// skeleton invariants) re-checks every function after every pass and
    /// reports violations as error diagnostics.
    pub fn optimize(&self, module: &mut Module) -> omplt_midend::UnrollStats {
        let _span = omplt_trace::span("midend");
        omplt_fault::set_stage("midend");
        if self.opts.verify_each {
            let (stats, errs) = omplt_midend::run_default_pipeline_verified(module);
            for e in errs {
                self.diags.error(
                    omplt_source::SourceLocation::INVALID,
                    format!("--verify-each: {e}"),
                );
            }
            stats
        } else {
            omplt_midend::run_default_pipeline(module)
        }
    }

    /// The engine configuration derived from [`Options`], with any armed
    /// `runtime.fuel` fault applied. Shared by [`CompilerInstance::run`] and
    /// the daemon's warm-cache path so both execute under identical rules.
    pub fn runtime_config(&self) -> RuntimeConfig {
        let mut cfg = RuntimeConfig {
            num_threads: self.opts.num_threads,
            max_steps: self.opts.max_steps,
            serial: self.opts.serial,
            runtime_schedule: self.opts.runtime_schedule,
            log_chunks: self.opts.log_chunks,
            deadline: self.opts.deadline_ms.map(omplt_interp::Deadline::in_ms),
        };
        if omplt_fault::fire("runtime.fuel") {
            // Zero budget: the first batch refill in either backend fails
            // with `ExecError::FuelExhausted`.
            cfg.max_steps = 0;
        }
        cfg
    }

    /// Executes `main` on the selected backend (`--backend=interp|vm|vm:strict`).
    pub fn run(&self, module: &Module) -> Result<RunResult, omplt_interp::ExecError> {
        omplt_fault::set_stage("runtime");
        let cfg = self.runtime_config();
        match self.opts.backend {
            Backend::Interp => Interpreter::new(module, cfg).run_main(),
            Backend::Vm => match self.compile_bytecode(module) {
                Ok(code) => match omplt_vm::VmEngine::new(module, &code, cfg) {
                    Ok(engine) => engine.run_main(),
                    Err(e) => self.run_interp_fallback(module, cfg, &e),
                },
                Err(e) => self.run_interp_fallback(module, cfg, &e),
            },
            Backend::VmStrict => {
                let code = self.compile_bytecode(module)?;
                omplt_vm::VmEngine::new(module, &code, cfg)?.run_main()
            }
        }
    }

    /// Executes `main` from already-compiled bytecode — the daemon's
    /// warm-cache path, where the front end, mid end, and VM compiler have
    /// all been skipped. Behaviour matches [`CompilerInstance::run`] for the
    /// VM backends: `--backend=vm` degrades to the interpreter oracle if the
    /// engine rejects the module, `vm:strict` keeps that fatal. With
    /// `Backend::Interp` the bytecode is ignored and the interpreter runs
    /// `module` directly.
    pub fn run_precompiled(
        &self,
        module: &Module,
        code: &omplt_vm::VmModule,
    ) -> Result<RunResult, omplt_interp::ExecError> {
        omplt_fault::set_stage("runtime");
        let cfg = self.runtime_config();
        match self.opts.backend {
            Backend::Interp => Interpreter::new(module, cfg).run_main(),
            Backend::Vm => match omplt_vm::VmEngine::new(module, code, cfg) {
                Ok(engine) => engine.run_main(),
                Err(e) => self.run_interp_fallback(module, cfg, &e),
            },
            Backend::VmStrict => omplt_vm::VmEngine::new(module, code, cfg)?.run_main(),
        }
    }

    /// Graceful degradation for `--backend=vm`: warns that the bytecode
    /// path is unavailable and runs the interpreter oracle instead. The
    /// interpreter shares the exact `RuntimeConfig`, so the fallback run is
    /// observably identical to a clean interpreter run.
    fn run_interp_fallback(
        &self,
        module: &Module,
        cfg: RuntimeConfig,
        err: &omplt_interp::ExecError,
    ) -> Result<RunResult, omplt_interp::ExecError> {
        let reason: String = err
            .to_string()
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .join("; ");
        self.diags.warning(
            omplt_source::SourceLocation::INVALID,
            format!(
                "bytecode backend unavailable ({reason}); falling back to the interpreter \
                 ['--backend=vm:strict' keeps this fatal]"
            ),
        );
        if omplt_trace::active() {
            omplt_trace::count("backend.fallback", 1);
        }
        let _span = omplt_trace::span("fallback");
        Interpreter::new(module, cfg).run_main()
    }

    /// Lowers `module` to bytecode and runs the bytecode verifier over the
    /// result (always once at load time; a second time under `--verify-each`,
    /// mirroring the IR verifier's re-check discipline).
    pub fn compile_bytecode(
        &self,
        module: &Module,
    ) -> Result<omplt_vm::VmModule, omplt_interp::ExecError> {
        omplt_fault::set_stage("vm");
        let code = omplt_vm::compile_module_with(module, self.opts.vector_width)
            .map_err(|e| omplt_interp::ExecError::Malformed(format!("bytecode compile: {e}")))?;
        let passes = if self.opts.verify_each { 2 } else { 1 };
        for _ in 0..passes {
            let errs = omplt_vm::verify_module(&code);
            if !errs.is_empty() {
                return Err(omplt_interp::ExecError::Malformed(format!(
                    "bytecode verification failed:\n{}",
                    errs.iter()
                        .map(|e| format!("  {e}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                )));
            }
        }
        Ok(code)
    }

    /// Convenience: parse + codegen + (optional optimize) + run.
    pub fn compile_and_run(
        &mut self,
        name: &str,
        source: &str,
        optimize: bool,
    ) -> Result<RunResult, String> {
        let tu = self.parse_source(name, source)?;
        let mut module = self.codegen(&tu)?;
        if optimize {
            self.optimize(&mut module);
            for f in &module.functions {
                let errs = omplt_ir::verify_function(f);
                if !errs.is_empty() {
                    return Err(format!(
                        "post-optimization verification failed for @{}",
                        f.name
                    ));
                }
            }
        }
        self.run(&module).map_err(|e| format!("runtime error: {e}"))
    }
}
