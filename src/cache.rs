//! The daemon's content-addressed artifact cache.
//!
//! Compiled artifacts (the optimized IR module plus, for the VM backends,
//! serialized verified bytecode) are keyed by a 128-bit hash of the source
//! text crossed with a canonical fingerprint of the *compile-relevant*
//! options. Runtime-only options — thread count, serial mode, fuel, the
//! resolved `schedule(runtime)`, chunk logging — deliberately stay out of
//! the key: two jobs that run the same compiled code under different runtime
//! configurations share one artifact. Flag order never matters because the
//! fingerprint is derived from the parsed [`Options`] struct, not from argv.
//!
//! Only *clean* compiles are cached (no diagnostics at all), which keeps
//! replay trivially byte-exact: a warm hit has no compile diagnostics to
//! reproduce, and every diagnostic-producing compile takes the cold path.
//!
//! Eviction is least-recently-used under a byte budget; sizes are real
//! serialized bytes (source + printed IR + bytecode image), so the budget
//! bounds actual memory, not entry counts. All traffic is recorded in
//! `daemon.cache.{hits,misses,evictions}` counters.

use crate::compiler::{Backend, Options};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 128-bit FNV-1a — not cryptographic, but content-addressing within one
/// trusted process only needs collision resistance against accident, and the
/// wide variant makes birthday collisions astronomically unlikely.
pub fn hash128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The canonical compile-options fingerprint. Every field that changes the
/// compiled artifact appears exactly once, in a fixed order; everything else
/// is excluded so equivalent requests converge on one cache line.
pub fn options_fingerprint(opts: &Options, optimize: bool) -> String {
    format!(
        "openmp={};mode={:?};opt={};verify={};bc={};vw={}",
        opts.openmp,
        opts.codegen_mode,
        optimize,
        opts.verify_each,
        opts.backend != Backend::Interp,
        opts.vector_width,
    )
}

/// A cache key: source content hash × options fingerprint.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// 128-bit content hash of the source text.
    pub source: u128,
    /// Canonical options fingerprint ([`options_fingerprint`]).
    pub options: String,
}

impl CacheKey {
    /// Builds the key for a compile request.
    pub fn new(source: &str, opts: &Options, optimize: bool) -> CacheKey {
        CacheKey {
            source: hash128(source.as_bytes()),
            options: options_fingerprint(opts, optimize),
        }
    }
}

/// One cached compile result. Cheap to clone — the heavy members are shared.
#[derive(Clone)]
pub struct Artifact {
    /// The post-codegen (and post-mid-end, if requested) IR module. Engines
    /// need it even when executing bytecode (symbol names, globals).
    pub module: Arc<omplt_ir::Module>,
    /// Serialized, verifier-approved bytecode image (`omplt_vm::encode`);
    /// `None` when the job's backend never wanted bytecode.
    pub bytecode: Option<Arc<Vec<u8>>>,
    /// Accounted size in bytes (computed once at insert).
    pub size: usize,
}

impl Artifact {
    /// Integrity checksum over the serialized bytecode image — the part of
    /// the artifact that is replayed bit-for-bit into an engine. Artifacts
    /// without bytecode checksum to a fixed sentinel and trivially verify.
    fn checksum(&self) -> u128 {
        match &self.bytecode {
            Some(bc) => hash128(bc),
            None => 0,
        }
    }
}

struct Entry {
    artifact: Artifact,
    /// [`Artifact::checksum`] recorded at insert; re-verified on every hit.
    checksum: u128,
    last_used: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// The shared LRU artifact cache. `Send + Sync`; one per [`crate::service::Service`].
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    integrity_failures: AtomicU64,
}

/// Default byte budget (`ompltd --cache-bytes` overrides): 64 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

impl ArtifactCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            integrity_failures: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency. Records a hit or miss.
    ///
    /// Every hit is integrity-checked against the checksum recorded at
    /// insert. A mismatch means the in-memory artifact was corrupted after
    /// insertion (injected via `daemon.cache-corrupt`, or a real memory
    /// fault): the entry is quarantined — removed so it can never serve
    /// again — `daemon.cache.integrity_failures` is bumped, and the call
    /// reports a miss so the caller recompiles and re-inserts a clean copy.
    pub fn lookup(&self, key: &CacheKey) -> Option<Artifact> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                if entry.artifact.checksum() != entry.checksum {
                    let dead = inner.map.remove(key).expect("entry just observed");
                    inner.bytes -= dead.artifact.size;
                    self.integrity_failures.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.artifact.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fault-injection hook for `daemon.cache-corrupt`: flips one byte in
    /// the cached bytecode image for `key`, cloning the buffer first so
    /// outstanding `Artifact` clones keep their pristine copy. Returns
    /// `false` when the key is absent or carries no bytecode (nothing to
    /// corrupt). The next [`ArtifactCache::lookup`] for the key detects the
    /// mismatch and quarantines the entry.
    pub fn corrupt(&self, key: &CacheKey) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(entry) = inner.map.get_mut(key) else {
            return false;
        };
        let Some(bc) = &entry.artifact.bytecode else {
            return false;
        };
        let mut bytes = bc.as_ref().clone();
        if bytes.is_empty() {
            return false;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5a;
        entry.artifact.bytecode = Some(Arc::new(bytes));
        true
    }

    /// Inserts an artifact, evicting least-recently-used entries until the
    /// budget holds. An artifact larger than the whole budget is not cached.
    pub fn insert(&self, key: CacheKey, artifact: Artifact) {
        if artifact.size > self.budget {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.artifact.size;
        }
        inner.bytes += artifact.size;
        let checksum = artifact.checksum();
        inner.map.insert(
            key,
            Entry {
                artifact,
                checksum,
                last_used: tick,
            },
        );
        while inner.bytes > self.budget {
            // O(entries) scan per eviction: entry counts are small (tens to
            // low thousands) and eviction is off the hit path.
            let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let e = inner.map.remove(&lru).expect("lru key just observed");
            inner.bytes -= e.artifact.size;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current `daemon.cache.*` counter values, sorted by name — the shape
    /// the drift guard pins.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let inner = self.inner.lock().unwrap();
        vec![
            ("daemon.cache.bytes", inner.bytes as u64),
            ("daemon.cache.entries", inner.map.len() as u64),
            (
                "daemon.cache.evictions",
                self.evictions.load(Ordering::Relaxed),
            ),
            ("daemon.cache.hits", self.hits.load(Ordering::Relaxed)),
            (
                "daemon.cache.integrity_failures",
                self.integrity_failures.load(Ordering::Relaxed),
            ),
            ("daemon.cache.misses", self.misses.load(Ordering::Relaxed)),
        ]
    }

    /// Renders [`ArtifactCache::counters`] in the same deterministic
    /// document shape as `TraceData::to_counters_json`.
    pub fn counters_json(&self) -> String {
        let body = self
            .counters()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"counters\":{{{body}}}}}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(size: usize) -> Artifact {
        Artifact {
            module: Arc::new(omplt_ir::Module::default()),
            bytecode: None,
            size,
        }
    }

    fn key(src: &str) -> CacheKey {
        CacheKey::new(src, &Options::default(), true)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ArtifactCache::new(1000);
        assert!(c.lookup(&key("a")).is_none());
        c.insert(key("a"), artifact(10));
        assert!(c.lookup(&key("a")).is_some());
        let counters: std::collections::HashMap<_, _> = c.counters().into_iter().collect();
        assert_eq!(counters["daemon.cache.hits"], 1);
        assert_eq!(counters["daemon.cache.misses"], 1);
    }

    #[test]
    fn single_token_mutation_misses() {
        // The cache is content-addressed: any textual difference is a
        // different key, even one character.
        let a = key("int main(void) { return 1; }");
        let b = key("int main(void) { return 2; }");
        assert_ne!(a, b);
    }

    #[test]
    fn runtime_options_do_not_split_the_key() {
        let mut runtime_variant = Options {
            num_threads: 9,
            serial: true,
            max_steps: 123,
            log_chunks: true,
            deadline_ms: Some(5),
            ..Options::default()
        };
        runtime_variant.runtime_schedule = Some(omplt_interp::RuntimeSchedule::default_static());
        assert_eq!(
            CacheKey::new("src", &Options::default(), false),
            CacheKey::new("src", &runtime_variant, false)
        );
        // Compile-relevant options do split it.
        let vm = Options {
            backend: Backend::Vm,
            ..Options::default()
        };
        assert_ne!(
            CacheKey::new("src", &Options::default(), false),
            CacheKey::new("src", &vm, false)
        );
        assert_ne!(
            CacheKey::new("src", &Options::default(), false),
            CacheKey::new("src", &Options::default(), true)
        );
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let c = ArtifactCache::new(100);
        c.insert(key("a"), artifact(40));
        c.insert(key("b"), artifact(40));
        // Touch "a" so "b" is the LRU entry.
        assert!(c.lookup(&key("a")).is_some());
        c.insert(key("c"), artifact(40));
        assert!(c.lookup(&key("b")).is_none(), "LRU entry evicted");
        assert!(c.lookup(&key("a")).is_some());
        assert!(c.lookup(&key("c")).is_some());
        let counters: std::collections::HashMap<_, _> = c.counters().into_iter().collect();
        assert_eq!(counters["daemon.cache.evictions"], 1);
        assert!(counters["daemon.cache.bytes"] <= 100);
    }

    #[test]
    fn oversized_artifacts_are_not_cached() {
        let c = ArtifactCache::new(10);
        c.insert(key("a"), artifact(11));
        assert!(c.lookup(&key("a")).is_none());
    }

    fn bytecode_artifact(image: &[u8]) -> Artifact {
        Artifact {
            module: Arc::new(omplt_ir::Module::default()),
            bytecode: Some(Arc::new(image.to_vec())),
            size: image.len(),
        }
    }

    #[test]
    fn corrupted_entry_is_quarantined_not_served() {
        let c = ArtifactCache::new(1000);
        c.insert(key("a"), bytecode_artifact(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(c.lookup(&key("a")).is_some(), "clean hit first");
        assert!(c.corrupt(&key("a")), "injection point flips a byte");
        assert!(
            c.lookup(&key("a")).is_none(),
            "corrupted entry must not be served"
        );
        assert!(
            c.lookup(&key("a")).is_none(),
            "quarantine removed the entry entirely"
        );
        let counters: std::collections::HashMap<_, _> = c.counters().into_iter().collect();
        assert_eq!(counters["daemon.cache.integrity_failures"], 1);
        assert_eq!(counters["daemon.cache.hits"], 1);
        assert_eq!(counters["daemon.cache.misses"], 2);
        assert_eq!(counters["daemon.cache.entries"], 0);
        assert_eq!(counters["daemon.cache.bytes"], 0);
        // Reinsertion after recompile serves clean hits again.
        c.insert(key("a"), bytecode_artifact(&[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(c.lookup(&key("a")).is_some());
    }

    #[test]
    fn corrupt_reports_missing_or_bytecode_free_entries() {
        let c = ArtifactCache::new(1000);
        assert!(!c.corrupt(&key("absent")));
        c.insert(key("a"), artifact(10));
        assert!(!c.corrupt(&key("a")), "no bytecode image to corrupt");
        assert!(c.lookup(&key("a")).is_some(), "entry unharmed");
    }
}
