//! The directive autotuner's orchestration layer (`ompltc --autotune`).
//!
//! `omplt-tune` owns the search-space machinery (directive extraction,
//! mutation axes, enumeration, reports); this module wires it to the real
//! pipeline:
//!
//! 1. the **baseline** (the program as written) is compiled and executed
//!    first — it anchors the cost scale and the correctness cross-check;
//! 2. candidates come from the deterministic grid [`omplt_tune::Enumerator`]
//!    (or the seeded [`omplt_tune::Sampler`] when a seed is given) and are
//!    re-synthesized to full C sources;
//! 3. each candidate is parsed and **pruned** through the batch legality API
//!    ([`omplt_analysis::verdict`]): any parse/Sema error or `--analyze`
//!    finding (legality, dependence gating, `-Wrace`) rejects it before it
//!    ever executes — an illegal mutation is *diagnosed*, never miscompiled;
//! 4. survivors execute on their candidate backend under safety rails: a
//!    fuel budget derived from the baseline's own op count (a mutation that
//!    blows the program up runs out of fuel instead of hanging the search)
//!    and a per-candidate ICE containment wall (a candidate that panics the
//!    pipeline is recorded as failed; the search continues);
//! 5. every observable of a survivor (stdout, exit code, final global
//!    memory, task count) is cross-checked against the baseline — a
//!    divergence disqualifies the candidate and is reported loudly, making
//!    the tuner double as a randomized differential stress harness;
//! 6. the ranked [`TuneReport`] and the winning annotated source come back
//!    to the driver.
//!
//! Trace integration: the run is wrapped in a `tuner` span with
//! per-candidate `tuner.candidate` spans, and `tuner.{candidates, evaluated,
//! pruned, diverged, failed, duplicate, ice}` counters land in any active
//! `--counters-json` session.

use crate::compiler::{Backend, CompilerInstance, Options};
use omplt_interp::RunResult;
use omplt_tune::{
    enumerate, sample, BackendChoice, Candidate, CandidateOutcome, CostModel, EnumConfig,
    Measurement, SourceModel, Status, TuneReport,
};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

/// Default evaluation budget for a bare `--autotune`.
pub const DEFAULT_BUDGET: usize = 32;

/// Fuel headroom granted to candidates, as a multiple of the baseline's
/// retired ops: a candidate configuration may legitimately execute more ops
/// than the baseline (tile/unroll overhead), but not orders of magnitude
/// more — anything past the rail is reported as failed, not waited for.
const FUEL_HEADROOM: u64 = 32;

/// Configuration for one [`autotune`] run.
#[derive(Clone, Debug)]
pub struct TuneConfig {
    /// Maximum number of candidates *executed* (pruned and duplicate
    /// candidates do not consume budget).
    pub budget: usize,
    /// `Some(seed)` switches from the deterministic grid to seeded random
    /// sampling (the stress-corpus mode).
    pub seed: Option<u64>,
    /// What ranks candidates.
    pub cost: CostModel,
    /// Pipeline options candidates inherit (threads, backend, fuel caps…).
    /// Under the `ops` cost model evaluation is forced serial so op counts
    /// — and therefore reports — are deterministic.
    pub opts: Options,
    /// Axis construction knobs.
    pub enum_config: EnumConfig,
}

impl Default for TuneConfig {
    fn default() -> TuneConfig {
        TuneConfig {
            budget: DEFAULT_BUDGET,
            seed: None,
            cost: CostModel::Ops,
            opts: Options::default(),
            enum_config: EnumConfig::default(),
        }
    }
}

/// A finished tuning run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The ranked report.
    pub report: TuneReport,
    /// The winning annotated source (`None` when nothing survived).
    pub best_source: Option<String>,
}

/// Why a tuning run could not even start.
#[derive(Clone, Debug)]
pub enum TuneError {
    /// The input program itself failed to compile, analyze cleanly, or run;
    /// the payload is the rendered explanation.
    Baseline(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Baseline(msg) => {
                write!(f, "cannot autotune: baseline program failed: {msg}")
            }
        }
    }
}

/// How one candidate evaluation ended.
enum Eval {
    Ok(RunResult, u64),
    Pruned(Vec<String>),
    Failed(String),
}

/// Compiles, analyzes, and runs one full source. The returned `Eval`
/// distinguishes "rejected by the legality gate" from "crashed past it".
fn evaluate(name: &str, source: &str, opts: Options) -> Eval {
    let mut ci = CompilerInstance::new(opts);
    let tu = match ci.parse_source(name, source) {
        Ok(tu) => tu,
        Err(_) => {
            let msgs: Vec<String> = ci
                .diags
                .all()
                .iter()
                .map(|d| format!("{}: {}", d.level.as_str(), d.message))
                .collect();
            return Eval::Pruned(msgs);
        }
    };
    let verdict = omplt_analysis::verdict(&tu);
    if !verdict.is_legal() {
        return Eval::Pruned(verdict.messages());
    }
    let mut module = match ci.codegen(&tu) {
        Ok(m) => m,
        Err(rendered) => return Eval::Failed(rendered.lines().next().unwrap_or("").to_string()),
    };
    ci.optimize(&mut module);
    if ci.diags.has_errors() {
        return Eval::Failed("mid-end pipeline reported errors".to_string());
    }
    let start = Instant::now();
    match ci.run(&module) {
        Ok(r) => {
            let wall = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            Eval::Ok(r, wall)
        }
        Err(e) => Eval::Failed(format!("runtime error: {e}")),
    }
}

/// [`evaluate`] behind a per-candidate ICE wall: a pipeline panic is
/// contained to the candidate (the search continues) instead of aborting
/// the whole tuning run.
fn evaluate_contained(name: &str, source: &str, opts: Options) -> Eval {
    match std::panic::catch_unwind(AssertUnwindSafe(|| evaluate(name, source, opts))) {
        Ok(e) => e,
        Err(_) => {
            omplt_trace::count("tuner.ice", 1);
            Eval::Failed("internal compiler error (contained; candidate dropped)".to_string())
        }
    }
}

/// Whether two runs agree on every backend-differential observable. Stdout
/// is compared exactly for serial/single-thread runs and as a sorted line
/// multiset otherwise (interleaving is allowed to differ, content is not).
fn observables_agree(a: &RunResult, b: &RunResult, opts: &Options) -> Result<(), String> {
    if a.exit_code != b.exit_code {
        return Err(format!(
            "exit code {} vs baseline {}",
            b.exit_code, a.exit_code
        ));
    }
    if a.final_globals != b.final_globals {
        return Err("final global memory differs from baseline".to_string());
    }
    if a.tasks_created != b.tasks_created {
        return Err(format!(
            "tasks created {} vs baseline {}",
            b.tasks_created, a.tasks_created
        ));
    }
    let exact = opts.serial || opts.num_threads == 1;
    if exact {
        if a.stdout != b.stdout {
            return Err("stdout differs from baseline".to_string());
        }
    } else {
        let mut la: Vec<&str> = a.stdout.lines().collect();
        let mut lb: Vec<&str> = b.stdout.lines().collect();
        la.sort_unstable();
        lb.sort_unstable();
        if la != lb {
            return Err("stdout line multiset differs from baseline".to_string());
        }
    }
    Ok(())
}

/// Runs the whole search. See the module docs for the phase breakdown.
pub fn autotune(name: &str, source: &str, cfg: &TuneConfig) -> Result<TuneOutcome, TuneError> {
    let _span = omplt_trace::span("tuner");
    let mut base_opts = cfg.opts;
    base_opts.log_chunks = false;
    if cfg.cost == CostModel::Ops {
        // Deterministic scores ⇒ deterministic (goldenable) reports.
        base_opts.serial = true;
    }

    // Phase 1: the baseline anchors everything. It must itself pass the
    // legality gate — tuning a program whose hand-written annotation is
    // already illegal (or racy) would cross-check candidates against
    // undefined behaviour.
    let model = SourceModel::parse(source);
    let (baseline_run, baseline_wall) = {
        let _span = omplt_trace::span_detail("tuner.candidate", "baseline");
        match evaluate_contained(name, source, base_opts) {
            Eval::Ok(r, w) => (r, w),
            Eval::Pruned(msgs) => {
                return Err(TuneError::Baseline(format!(
                    "the input itself fails the legality/analysis gate:\n  {}",
                    msgs.join("\n  ")
                )))
            }
            Eval::Failed(msg) => return Err(TuneError::Baseline(msg)),
        }
    };
    let baseline = Measurement {
        ops_retired: baseline_run.ops_retired,
        wall_us: baseline_wall,
        exit_code: baseline_run.exit_code,
    };

    // Safety rail: candidates get baseline-proportional fuel.
    let fuel_rail = baseline_run
        .ops_retired
        .saturating_mul(FUEL_HEADROOM)
        .saturating_add(100_000)
        .min(base_opts.max_steps);

    // Phase 2–5: enumerate, prune, execute, cross-check.
    let candidates: Box<dyn Iterator<Item = Candidate>> = match cfg.seed {
        None => Box::new(enumerate(&model, &cfg.enum_config)),
        Some(seed) => Box::new(sample(
            &model,
            &cfg.enum_config,
            seed,
            cfg.enum_config.max_enumerated,
        )),
    };
    let mut outcomes: Vec<CandidateOutcome> = Vec::new();
    let mut seen: HashMap<(String, &'static str, u8), usize> = HashMap::new();
    let mut evaluated = 0usize;
    for c in candidates {
        if evaluated >= cfg.budget {
            break;
        }
        omplt_trace::count("tuner.candidates", 1);
        let backend = match c.backend {
            None => base_opts.backend,
            Some(BackendChoice::Interp) => Backend::Interp,
            // Strict: a bytecode compile/verify failure must fail the
            // candidate, not silently re-measure it on the interpreter.
            Some(BackendChoice::Vm) => Backend::VmStrict,
        };
        let choice = match backend {
            Backend::Interp => BackendChoice::Interp,
            Backend::Vm | Backend::VmStrict => BackendChoice::Vm,
        };
        // The widening pass only exists in the bytecode tier, so on the
        // interpreter every width is the same program — fold it to 0 in the
        // dedup key so interp candidates differing only in width collapse.
        let vector_width = c.vector_width.unwrap_or(base_opts.vector_width);
        let dedup_width = match choice {
            BackendChoice::Vm => vector_width,
            BackendChoice::Interp => 0,
        };
        let status = match model.apply(&c.mutations) {
            Err(e) => Some(Status::Failed(format!("re-synthesis error: {e}"))),
            Ok(mutated) => match seen.entry((mutated.clone(), choice.name(), dedup_width)) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    Some(Status::Duplicate(*first.get()))
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(c.id);
                    let _span = omplt_trace::span_detail("tuner.candidate", c.label.clone());
                    let mut opts = base_opts;
                    opts.backend = backend;
                    opts.vector_width = vector_width;
                    opts.max_steps = fuel_rail;
                    match evaluate_contained(name, &mutated, opts) {
                        Eval::Pruned(msgs) => Some(Status::Pruned(msgs)),
                        Eval::Failed(msg) => Some(Status::Failed(msg)),
                        Eval::Ok(run, wall) => {
                            evaluated += 1;
                            match observables_agree(&baseline_run, &run, &opts) {
                                Err(why) => Some(Status::Diverged(why)),
                                Ok(()) => Some(Status::Evaluated(Measurement {
                                    ops_retired: run.ops_retired,
                                    wall_us: wall,
                                    exit_code: run.exit_code,
                                })),
                            }
                        }
                    }
                }
            },
        };
        let status = status.expect("every branch yields a status");
        let counter = match &status {
            Status::Evaluated(_) => "tuner.evaluated",
            Status::Pruned(_) => "tuner.pruned",
            Status::Diverged(_) => "tuner.diverged",
            Status::Failed(_) => "tuner.failed",
            Status::Duplicate(_) => "tuner.duplicate",
        };
        omplt_trace::count(counter, 1);
        outcomes.push(CandidateOutcome {
            id: c.id,
            label: c.label,
            backend: choice,
            status,
        });
    }

    // Phase 6: report + winning source.
    let report = TuneReport {
        input: name.to_string(),
        cost_model: cfg.cost,
        budget: cfg.budget,
        seed: cfg.seed,
        baseline,
        outcomes,
    };
    let best_source = report.winner().map(|w| {
        // Ids are enumeration-dense only until the budget cut, so re-walk
        // the generator to recover the winner's mutations.
        let mutations = match cfg.seed {
            None => enumerate(&model, &cfg.enum_config)
                .nth(w.id)
                .map(|c| c.mutations),
            Some(seed) => sample(
                &model,
                &cfg.enum_config,
                seed,
                cfg.enum_config.max_enumerated,
            )
            .nth(w.id)
            .map(|c| c.mutations),
        };
        mutations
            .and_then(|m| model.apply(&m).ok())
            .unwrap_or_else(|| source.to_string())
    });
    Ok(TuneOutcome {
        report,
        best_source,
    })
}
