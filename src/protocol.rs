//! The `ompltd` wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or reply, socket or stdio — is one *frame*: a
//! 4-byte little-endian byte length followed by exactly that many bytes of
//! UTF-8 JSON. Frames larger than [`MAX_FRAME`] are rejected before any
//! allocation, so a hostile or corrupt prefix cannot balloon memory; a
//! truncated frame is an explicit [`FrameError::Truncated`], never a hang on
//! garbage. The JSON layer reuses `omplt_trace::json` (the workspace builds
//! without registry access, so there is no serde) and renders documents by
//! hand in a fixed field order, making replies byte-deterministic.
//!
//! Exit-code contract (mirrors `ompltc` exactly): `0` success, `1` compile
//! or runtime failure, `2` driver/usage error, `3` contained internal
//! compiler error. A malformed *frame* never takes the server down — the
//! reply is `{"id":null,"error":...}` and the connection is closed.

use crate::compiler::{Backend, Options};
use omplt_interp::{ChunkRecord, DispatchKind, RuntimeSchedule};
use omplt_sema::OpenMpCodegenMode;
use omplt_trace::json::{self, Value};
use std::io::{Read, Write};

/// Upper bound on a frame body. Large enough for any real translation unit
/// plus its stdout; small enough that a corrupt length prefix cannot OOM the
/// server.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// The length prefix names a body larger than [`MAX_FRAME`].
    TooLarge(u64),
    /// The stream ended mid-prefix or mid-body.
    Truncated,
    /// The transport's read timeout expired. `mid_frame` distinguishes a
    /// slowloris peer (bytes of a frame arrived, then the stream stalled —
    /// the connection must be cut) from plain idleness (no bytes at all —
    /// the server may simply poll again or reclaim the thread).
    TimedOut {
        /// Whether any bytes of the current frame had already arrived.
        mid_frame: bool,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TimedOut { mid_frame: true } => write!(f, "frame read timed out"),
            FrameError::TimedOut { mid_frame: false } => write!(f, "idle read timed out"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame: length prefix, body, flush. `?Sized` so trait-object
/// writers (the daemon's shared connection sinks) work directly.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at a
/// frame boundary); EOF anywhere else is [`FrameError::Truncated`]. On a
/// transport with a read timeout configured, a timeout surfaces as
/// [`FrameError::TimedOut`] with `mid_frame` telling whether the peer had
/// already sent part of a frame.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(FrameError::TimedOut { mid_frame: got > 0 }),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len as u64));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(FrameError::TimedOut { mid_frame: true }),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(body))
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One file-less diagnostic object in `DiagnosticsEngine::render_json`'s
/// shape — shared by the CLI driver and the daemon so driver-level errors
/// are byte-identical wherever they are produced.
pub fn json_diag_object(level: &str, msg: &str, notes: &[String]) -> String {
    let notes = notes
        .iter()
        .map(|n| json_diag_object("note", n, &[]))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"level\":\"{level}\",\"message\":\"{}\",\"file\":null,\"notes\":[{notes}]}}",
        json_escape(msg)
    )
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    }
}

/// Renders a [`RuntimeSchedule`] in `OMP_SCHEDULE` syntax (`kind[,chunk]`),
/// the protocol's schedule encoding.
pub fn schedule_to_string(s: &RuntimeSchedule) -> String {
    let kind = match s.kind {
        DispatchKind::Static => "static",
        DispatchKind::Dynamic => "dynamic",
        DispatchKind::Guided => "guided",
    };
    if s.chunk > 0 {
        format!("{kind},{}", s.chunk)
    } else {
        kind.to_string()
    }
}

/// Renders a chunk log as deterministic text, one record per line
/// (`kind lo..=hi`), for byte-for-byte comparison between local and remote
/// runs.
pub fn render_chunk_log(log: &[ChunkRecord]) -> String {
    let mut out = String::new();
    for r in log {
        out.push_str(&format!("{:?} {}..={}\n", r.kind, r.lo, r.hi));
    }
    out
}

/// One compile/run job. Carries the source text itself — the daemon never
/// touches the client's filesystem — plus the compile- and runtime-relevant
/// options. Environment is deliberately absent: `OMP_SCHEDULE` and friends
/// are resolved once at the *client*, then travel as `schedule`.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// Display name for diagnostics (the client's input path).
    pub name: String,
    /// The C source text.
    pub source: String,
    /// Compile/runtime options (see [`Options`]).
    pub opts: Options,
    /// Run the mid-end pipeline (`--opt`).
    pub optimize: bool,
    /// Execute `main` after compiling (`--run`).
    pub run: bool,
    /// Stop after parse/sema (`--syntax-only`).
    pub syntax_only: bool,
    /// Print the (possibly optimized) IR to stdout (`--emit-ir`).
    pub emit_ir: bool,
    /// Render diagnostics as JSON (`--diag-format=json`).
    pub json_diags: bool,
    /// Return a `--counters-json` document for this job.
    pub want_counters: bool,
    /// Fault-injection spec (`--inject-fault=site[:count]`), armed in the
    /// worker's own scope. Pipeline sites bypass the artifact cache;
    /// `daemon.*` sites do not (they target the service layer itself, and
    /// e.g. `daemon.cache-corrupt` needs the cache to be live).
    pub inject_fault: Option<String>,
    /// Warning produced while the *client* resolved `OMP_SCHEDULE`; the
    /// server records it in the job's diagnostics before running so remote
    /// stderr is byte-identical to an in-process run.
    pub schedule_warning: Option<String>,
}

impl JobRequest {
    /// A job with default options for `source`, ready to customize.
    pub fn new(id: u64, name: &str, source: &str) -> JobRequest {
        JobRequest {
            id,
            name: name.to_string(),
            source: source.to_string(),
            opts: Options::default(),
            optimize: false,
            run: false,
            syntax_only: false,
            emit_ir: false,
            json_diags: false,
            want_counters: false,
            inject_fault: None,
            schedule_warning: None,
        }
    }

    /// Renders the job as a request document (`"op":"job"`).
    pub fn render(&self) -> String {
        let o = &self.opts;
        let mode = match o.codegen_mode {
            OpenMpCodegenMode::Classic => "classic",
            OpenMpCodegenMode::IrBuilder => "irbuilder",
        };
        let schedule = o.runtime_schedule.as_ref().map(schedule_to_string);
        let deadline = match o.deadline_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"op\":\"job\",\"id\":{},\"name\":\"{}\",\"source\":\"{}\",",
                "\"openmp\":{},\"mode\":\"{}\",\"threads\":{},\"serial\":{},",
                "\"max_steps\":\"{}\",\"verify_each\":{},\"schedule\":{},",
                "\"backend\":\"{}\",\"vector_width\":{},\"log_chunks\":{},",
                "\"deadline_ms\":{},",
                "\"optimize\":{},\"run\":{},\"syntax_only\":{},\"emit_ir\":{},",
                "\"json_diags\":{},\"want_counters\":{},\"inject_fault\":{},",
                "\"schedule_warning\":{}}}"
            ),
            self.id,
            json_escape(&self.name),
            json_escape(&self.source),
            o.openmp,
            mode,
            o.num_threads,
            o.serial,
            o.max_steps,
            o.verify_each,
            opt_str(&schedule),
            o.backend.name(),
            o.vector_width,
            o.log_chunks,
            deadline,
            self.optimize,
            self.run,
            self.syntax_only,
            self.emit_ir,
            self.json_diags,
            self.want_counters,
            opt_str(&self.inject_fault),
            opt_str(&self.schedule_warning),
        )
    }
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Compile (and maybe run) one job.
    Job(Box<JobRequest>),
    /// Report the daemon's `daemon.cache.*` counters.
    Stats,
    /// Report the daemon's survivability snapshot ([`HealthReport`]).
    Health,
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Renders a request document.
    pub fn render(&self) -> String {
        match self {
            Request::Job(j) => j.render(),
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Health => "{\"op\":\"health\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }

    /// Parses a request frame body. Every malformation is an `Err` message
    /// (turned into an error reply by the server), never a panic.
    pub fn parse(body: &str) -> Result<Request, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing or non-string 'op'")?;
        match op {
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            "job" => Ok(Request::Job(Box::new(parse_job(&v)?))),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("'{key}' must be a boolean")),
        None => Err(format!("missing '{key}'")),
    }
}

fn need_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn opt_string(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' must be a string or null")),
    }
}

fn parse_job(v: &Value) -> Result<JobRequest, String> {
    let id = v
        .get("id")
        .and_then(Value::as_u64)
        .ok_or("missing or non-integer 'id'")?;
    let mut opts = Options {
        openmp: need_bool(v, "openmp")?,
        serial: need_bool(v, "serial")?,
        verify_each: need_bool(v, "verify_each")?,
        log_chunks: need_bool(v, "log_chunks")?,
        ..Options::default()
    };
    opts.codegen_mode = match need_str(v, "mode")? {
        "classic" => OpenMpCodegenMode::Classic,
        "irbuilder" => OpenMpCodegenMode::IrBuilder,
        other => return Err(format!("unknown codegen mode '{other}'")),
    };
    opts.num_threads = v
        .get("threads")
        .and_then(Value::as_u64)
        .ok_or("missing or non-integer 'threads'")? as u32;
    // u64 fuel travels as a string: the JSON number lane is f64 and would
    // silently round the default budget.
    opts.max_steps = need_str(v, "max_steps")?
        .parse::<u64>()
        .map_err(|_| "invalid 'max_steps'".to_string())?;
    opts.runtime_schedule = match opt_string(v, "schedule")? {
        Some(s) => Some(RuntimeSchedule::parse(&s).map_err(|e| format!("bad 'schedule': {e}"))?),
        None => None,
    };
    opts.backend =
        Backend::parse(need_str(v, "backend")?).ok_or_else(|| "unknown 'backend'".to_string())?;
    // Absent in frames from older clients: the scalar default is exactly
    // what those clients meant.
    opts.vector_width = match v.get("vector_width") {
        None | Some(Value::Null) => 0,
        Some(n) => u8::try_from(n.as_u64().ok_or("'vector_width' must be an integer")?)
            .map_err(|_| "'vector_width' out of range".to_string())?,
    };
    opts.deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(n) => Some(
            n.as_u64()
                .ok_or("'deadline_ms' must be a non-negative integer or null")?,
        ),
    };
    Ok(JobRequest {
        id,
        name: need_str(v, "name")?.to_string(),
        source: need_str(v, "source")?.to_string(),
        opts,
        optimize: need_bool(v, "optimize")?,
        run: need_bool(v, "run")?,
        syntax_only: need_bool(v, "syntax_only")?,
        emit_ir: need_bool(v, "emit_ir")?,
        json_diags: need_bool(v, "json_diags")?,
        want_counters: need_bool(v, "want_counters")?,
        inject_fault: opt_string(v, "inject_fault")?,
        schedule_warning: opt_string(v, "schedule_warning")?,
    })
}

/// A contained internal compiler error, reported structurally so the
/// *client* can render the ICE diagnostic (and write its `--crash-report`
/// bundle) with exactly the bytes an in-process run would have produced.
#[derive(Clone, Debug, PartialEq)]
pub struct IceInfo {
    /// Pipeline stage that was active when the panic escaped.
    pub stage: String,
    /// Panic message (with source location when available).
    pub message: String,
    /// Captured backtrace (crash bundles only; never printed to stderr).
    pub backtrace: String,
}

/// How a job interacted with the artifact cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Front end + mid end + VM compile all skipped.
    Hit,
    /// Full compile; the artifact was stored (if clean).
    Miss,
    /// The job was ineligible (fault injection, syntax-only, …).
    Bypass,
}

impl CacheOutcome {
    fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// The reply to a [`JobRequest`]. `stdout`/`stderr` hold the exact bytes an
/// in-process `ompltc` invocation would have written (diagnostics already
/// rendered in the requested format); the client replays them verbatim.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Process exit code under the `ompltc` contract.
    pub exit_code: u8,
    /// Program/driver stdout bytes.
    pub stdout: String,
    /// Diagnostic stderr bytes (empty on ICE — see `ice`).
    pub stderr: String,
    /// Cache interaction.
    pub cache: CacheOutcome,
    /// The job's `--counters-json` document, when requested.
    pub counters_json: Option<String>,
    /// Rendered chunk log ([`render_chunk_log`]), when chunk logging ran.
    pub chunk_log: Option<String>,
    /// Present iff the job ICEd; the client renders the report.
    pub ice: Option<IceInfo>,
}

impl JobResponse {
    /// Renders the reply document.
    pub fn render(&self) -> String {
        let ice = match &self.ice {
            None => "null".to_string(),
            Some(i) => format!(
                "{{\"stage\":\"{}\",\"message\":\"{}\",\"backtrace\":\"{}\"}}",
                json_escape(&i.stage),
                json_escape(&i.message),
                json_escape(&i.backtrace)
            ),
        };
        format!(
            concat!(
                "{{\"id\":{},\"exit_code\":{},\"stdout\":\"{}\",\"stderr\":\"{}\",",
                "\"cache\":\"{}\",\"counters_json\":{},\"chunk_log\":{},\"ice\":{}}}"
            ),
            self.id,
            self.exit_code,
            json_escape(&self.stdout),
            json_escape(&self.stderr),
            self.cache.name(),
            opt_str(&self.counters_json),
            opt_str(&self.chunk_log),
            ice,
        )
    }

    /// Parses a reply document (the client side).
    pub fn parse(body: &str) -> Result<JobResponse, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        if let Some(err) = v.get("error").and_then(Value::as_str) {
            return Err(format!("server error: {err}"));
        }
        JobResponse::from_value(&v)
    }

    fn from_value(v: &Value) -> Result<JobResponse, String> {
        let cache = match need_str(v, "cache")? {
            "hit" => CacheOutcome::Hit,
            "miss" => CacheOutcome::Miss,
            "bypass" => CacheOutcome::Bypass,
            other => return Err(format!("unknown cache outcome '{other}'")),
        };
        let ice = match v.get("ice") {
            None | Some(Value::Null) => None,
            Some(i) => Some(IceInfo {
                stage: need_str(i, "stage")?.to_string(),
                message: need_str(i, "message")?.to_string(),
                backtrace: need_str(i, "backtrace")?.to_string(),
            }),
        };
        Ok(JobResponse {
            id: v
                .get("id")
                .and_then(Value::as_u64)
                .ok_or("missing or non-integer 'id'")?,
            exit_code: v
                .get("exit_code")
                .and_then(Value::as_u64)
                .ok_or("missing or non-integer 'exit_code'")? as u8,
            stdout: need_str(v, "stdout")?.to_string(),
            stderr: need_str(v, "stderr")?.to_string(),
            cache,
            counters_json: opt_string(v, "counters_json")?,
            chunk_log: opt_string(v, "chunk_log")?,
            ice,
        })
    }
}

/// An admission-control rejection: the daemon's bounded job queue is full
/// (or the daemon is draining), so the job was shed instead of accepted.
/// Clients with retry budget wait `retry_after_ms` and resubmit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// Server's backoff hint in milliseconds.
    pub retry_after_ms: u64,
    /// Queue depth observed when the job was shed.
    pub queue_depth: u64,
}

/// Renders the load-shedding reply for a job that was refused admission.
/// `id` is `None` for connections refused wholesale during drain.
pub fn overloaded_reply(id: Option<u64>, o: &Overloaded) -> String {
    let id = id.map_or_else(|| "null".to_string(), |i| i.to_string());
    format!(
        "{{\"id\":{id},\"overloaded\":{{\"retry_after_ms\":{},\"queue_depth\":{}}}}}",
        o.retry_after_ms, o.queue_depth
    )
}

/// The daemon's survivability snapshot, served for `{"op":"health"}`.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthReport {
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Jobs queued but not yet picked up by a worker.
    pub queue_depth: u64,
    /// Admission-control bound on the queue.
    pub queue_capacity: u64,
    /// Jobs currently executing on workers.
    pub running: u64,
    /// Live worker threads (respawns keep this at the configured count).
    pub workers_alive: u64,
    /// Worker count the daemon was started with.
    pub workers_configured: u64,
    /// Whether the daemon is draining (refusing new work).
    pub draining: bool,
    /// Workers respawned after an uncontained panic.
    pub respawns: u64,
    /// In-flight jobs requeued after their worker died (at most once each).
    pub requeued: u64,
    /// Jobs abandoned after dying twice; their clients got an error reply.
    pub abandoned: u64,
    /// `daemon.cache.*` counters, sorted by name.
    pub cache: Vec<(String, u64)>,
}

impl HealthReport {
    /// Renders the health reply document.
    pub fn render(&self) -> String {
        let cache = self
            .cache
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"health\":{{\"uptime_ms\":{},\"queue_depth\":{},",
                "\"queue_capacity\":{},\"running\":{},\"workers_alive\":{},",
                "\"workers_configured\":{},\"draining\":{},",
                "\"supervisor\":{{\"respawns\":{},\"requeued\":{},\"abandoned\":{}}},",
                "\"counters\":{{{}}}}}}}"
            ),
            self.uptime_ms,
            self.queue_depth,
            self.queue_capacity,
            self.running,
            self.workers_alive,
            self.workers_configured,
            self.draining,
            self.respawns,
            self.requeued,
            self.abandoned,
            cache,
        )
    }

    /// Parses a health reply document (the client side).
    pub fn parse(body: &str) -> Result<HealthReport, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        if let Some(err) = v.get("error").and_then(Value::as_str) {
            return Err(format!("server error: {err}"));
        }
        let h = v.get("health").ok_or("missing 'health'")?;
        let field = |obj: &Value, key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer '{key}'"))
        };
        let sup = h.get("supervisor").ok_or("missing 'supervisor'")?;
        let cache = h
            .get("counters")
            .and_then(Value::as_object)
            .ok_or("missing 'counters'")?
            .iter()
            .map(|(k, val)| {
                val.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("non-integer counter '{k}'"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(HealthReport {
            uptime_ms: field(h, "uptime_ms")?,
            queue_depth: field(h, "queue_depth")?,
            queue_capacity: field(h, "queue_capacity")?,
            running: field(h, "running")?,
            workers_alive: field(h, "workers_alive")?,
            workers_configured: field(h, "workers_configured")?,
            draining: match h.get("draining") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("missing or non-boolean 'draining'".to_string()),
            },
            respawns: field(sup, "respawns")?,
            requeued: field(sup, "requeued")?,
            abandoned: field(sup, "abandoned")?,
            cache,
        })
    }
}

/// Every frame a client can receive in answer to a job submission. The
/// retry loop in `ompltc --remote` needs to see [`Reply::Overloaded`]
/// structurally (it is retryable), whereas [`JobResponse::parse`] folds all
/// non-job replies into errors.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The job executed (any exit code, possibly an ICE) — terminal.
    Job(Box<JobResponse>),
    /// The job was shed by admission control — retryable.
    Overloaded(Overloaded),
}

impl Reply {
    /// Parses a reply frame body. Server error replies (`{"id":null,
    /// "error":...}`) surface as `Err`, like [`JobResponse::parse`].
    pub fn parse(body: &str) -> Result<Reply, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        if let Some(err) = v.get("error").and_then(Value::as_str) {
            return Err(format!("server error: {err}"));
        }
        if let Some(o) = v.get("overloaded") {
            let field = |key: &str| -> Result<u64, String> {
                o.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("missing or non-integer '{key}'"))
            };
            return Ok(Reply::Overloaded(Overloaded {
                retry_after_ms: field("retry_after_ms")?,
                queue_depth: field("queue_depth")?,
            }));
        }
        Ok(Reply::Job(Box::new(JobResponse::from_value(&v)?)))
    }
}

/// Renders the error reply for an unparseable or oversized frame.
pub fn error_reply(message: &str) -> String {
    format!("{{\"id\":null,\"error\":\"{}\"}}", json_escape(message))
}

/// Renders an error reply correlated to a specific job id — used when an
/// *accepted* job cannot produce a normal reply (e.g. its worker died twice
/// and the job was abandoned), so the client still gets exactly one answer.
pub fn error_reply_for(id: u64, message: &str) -> String {
    format!("{{\"id\":{id},\"error\":\"{}\"}}", json_escape(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_and_reject_garbage() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"stats\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\":\"stats\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Truncated prefix.
        let mut r: &[u8] = &[0x05, 0x00];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Truncated body.
        let mut r: &[u8] = &[0x05, 0x00, 0x00, 0x00, b'a'];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Oversized length prefix refuses before allocating.
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn job_request_roundtrips() {
        let mut job = JobRequest::new(7, "t.c", "int main(void){return 0;}\n\"quoted\"");
        job.opts.backend = Backend::Vm;
        job.opts.num_threads = 3;
        job.opts.max_steps = u64::MAX;
        job.opts.runtime_schedule = Some(RuntimeSchedule::parse("dynamic,4").unwrap());
        job.opts.deadline_ms = Some(250);
        job.run = true;
        job.optimize = true;
        job.want_counters = true;
        job.inject_fault = Some("parse:1".to_string());
        let parsed = match Request::parse(&job.render()).unwrap() {
            Request::Job(j) => *j,
            other => panic!("parsed as {other:?}"),
        };
        assert_eq!(parsed, job);
        assert_eq!(parsed.opts.max_steps, u64::MAX, "fuel survives as string");
    }

    #[test]
    fn stats_shutdown_and_errors() {
        assert_eq!(
            Request::parse("{\"op\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse("{\"op\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert!(Request::parse("not json").is_err());
        assert!(
            Request::parse("{\"op\":\"job\"}").is_err(),
            "missing fields"
        );
        assert!(Request::parse("{\"id\":1}").is_err(), "missing op");
    }

    #[test]
    fn job_response_roundtrips() {
        let resp = JobResponse {
            id: 9,
            exit_code: 3,
            stdout: "1\n2\n".to_string(),
            stderr: String::new(),
            cache: CacheOutcome::Bypass,
            counters_json: Some("{\"counters\":{}}\n".to_string()),
            chunk_log: Some("StaticInit 0..=9\n".to_string()),
            ice: Some(IceInfo {
                stage: "parse".to_string(),
                message: "injected fault [at src/x.rs:1:1]".to_string(),
                backtrace: "frame 0\nframe 1".to_string(),
            }),
        };
        assert_eq!(JobResponse::parse(&resp.render()).unwrap(), resp);
        // The error-reply shape surfaces as Err on the client.
        assert!(JobResponse::parse(&error_reply("bad frame"))
            .unwrap_err()
            .contains("bad frame"));
    }

    #[test]
    fn health_request_parses() {
        assert_eq!(
            Request::parse("{\"op\":\"health\"}").unwrap(),
            Request::Health
        );
        assert_eq!(Request::Health.render(), "{\"op\":\"health\"}");
    }

    #[test]
    fn overloaded_reply_roundtrips_via_reply_parse() {
        let o = Overloaded {
            retry_after_ms: 50,
            queue_depth: 64,
        };
        let body = overloaded_reply(Some(12), &o);
        assert_eq!(
            body,
            "{\"id\":12,\"overloaded\":{\"retry_after_ms\":50,\"queue_depth\":64}}"
        );
        assert_eq!(Reply::parse(&body).unwrap(), Reply::Overloaded(o));
        let anon = overloaded_reply(None, &o);
        assert!(anon.starts_with("{\"id\":null,"));
        assert_eq!(Reply::parse(&anon).unwrap(), Reply::Overloaded(o));
    }

    #[test]
    fn reply_parse_covers_jobs_and_errors() {
        let resp = JobResponse {
            id: 4,
            exit_code: 0,
            stdout: "ok\n".to_string(),
            stderr: String::new(),
            cache: CacheOutcome::Hit,
            counters_json: None,
            chunk_log: None,
            ice: None,
        };
        assert_eq!(
            Reply::parse(&resp.render()).unwrap(),
            Reply::Job(Box::new(resp))
        );
        assert!(Reply::parse(&error_reply_for(4, "job abandoned"))
            .unwrap_err()
            .contains("job abandoned"));
    }

    #[test]
    fn health_report_roundtrips() {
        let h = HealthReport {
            uptime_ms: 1234,
            queue_depth: 2,
            queue_capacity: 64,
            running: 1,
            workers_alive: 4,
            workers_configured: 4,
            draining: true,
            respawns: 3,
            requeued: 2,
            abandoned: 1,
            cache: vec![
                ("daemon.cache.hits".to_string(), 7),
                ("daemon.cache.misses".to_string(), 9),
            ],
        };
        assert_eq!(HealthReport::parse(&h.render()).unwrap(), h);
        assert!(HealthReport::parse(&error_reply("nope")).is_err());
    }

    #[test]
    fn timed_out_frame_errors_render_distinctly() {
        assert_eq!(
            FrameError::TimedOut { mid_frame: true }.to_string(),
            "frame read timed out"
        );
        assert_eq!(
            FrameError::TimedOut { mid_frame: false }.to_string(),
            "idle read timed out"
        );
    }
}
