//! # omplt — OpenMP loop transformations on a Clang-style AST, in Rust
//!
//! Reproduction of M. Kruse, *"Loop Transformations using Clang's Abstract
//! Syntax Tree"* (ICPP Workshops 2021). This facade crate wires the layer
//! crates into a [`CompilerInstance`] with the same user-visible workflow as
//! the paper's Clang prototype:
//!
//! ```
//! use omplt::{CompilerInstance, Options};
//!
//! let src = r#"
//! void body(int i);
//! void f(int n) {
//!   #pragma omp unroll partial(2)
//!   for (int i = 0; i < n; i += 1)
//!     body(i);
//! }
//! "#;
//! let mut ci = CompilerInstance::new(Options::default());
//! let tu = ci.parse_source("demo.c", src).expect("parses");
//! let dump = ci.ast_dump(&tu);
//! assert!(dump.contains("OMPUnrollDirective"));
//! ```
//!
//! See `DESIGN.md` for the complete system inventory and `EXPERIMENTS.md`
//! for the paper-artifact ↔ reproduction map.

pub mod cache;
pub mod compiler;
pub mod pipeline;
pub mod protocol;
pub mod service;
pub mod tuner;

pub use compiler::{Backend, CompilerInstance, Options};
pub use omplt_analysis::AnalysisReport;
pub use omplt_sema::OpenMpCodegenMode;
pub use pipeline::{assert_matrix_output, run_matrix, run_source, run_source_with};
pub use service::Service;

pub use omplt_analysis as analysis;
pub use omplt_ast as ast;
pub use omplt_codegen as codegen;
pub use omplt_fault as fault;
pub use omplt_interp as interp;
pub use omplt_ir as ir;
pub use omplt_lex as lex;
pub use omplt_midend as midend;
pub use omplt_ompirb as ompirb;
pub use omplt_parse as parse;
pub use omplt_sema as sema;
pub use omplt_source as source;
pub use omplt_trace as trace;
pub use omplt_tune as tune;
pub use omplt_vm as vm;
