//! `omplt::service` — the reentrant compile-as-a-service core behind
//! `ompltd`.
//!
//! [`Service`] is `Send + Sync` and owns no process-global state: each job
//! gets its own [`CompilerInstance`], its own fault-injection scope, its own
//! trace session, and its own ICE boundary, so any number of workers can
//! execute jobs concurrently on one service without observing each other.
//! The transport (Unix socket or stdio, in `src/bin/ompltd.rs`) is a thin
//! loop over [`Service::handle_frame`]; everything protocol-visible lives
//! here so tests can drive the daemon without spawning a process.
//!
//! ## Output parity
//!
//! [`Service::execute`] reproduces the `ompltc` driver's observable bytes
//! exactly — same stdout, same rendered diagnostics, same exit codes — by
//! walking the same pipeline in the same order. A remote run must be
//! indistinguishable from a local one; the differential suite in
//! `tests/daemon.rs` enforces that over every example program.
//!
//! ## The artifact cache
//!
//! Clean compiles land in an [`ArtifactCache`] keyed by source hash ×
//! canonical options fingerprint. A warm hit skips lexing, parsing, sema,
//! codegen, the mid end, and the VM compiler entirely: the module is shared
//! by `Arc` and the bytecode image is decoded from its serialized form.
//! Jobs that inject pipeline faults, stop at `--syntax-only`, or produce
//! any diagnostic bypass or skip the cache, which is what keeps hit replay
//! byte-exact (there are no compile diagnostics to reproduce). Jobs that
//! inject `daemon.*` faults keep the cache live: those sites exercise the
//! service layer (corrupted entries, killed workers), not the pipeline.

use crate::cache::{Artifact, ArtifactCache, CacheKey};
use crate::compiler::{Backend, CompilerInstance};
use crate::protocol::{
    error_reply, json_diag_object, render_chunk_log, CacheOutcome, HealthReport, IceInfo,
    JobRequest, JobResponse, Request,
};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Per-job output buffers. Mutex-wrapped so the bytes produced before a
/// panic survive the unwind — a job that prints IR and then ICEs in the
/// runtime stage still delivers the IR, exactly like a local process whose
/// stdout was already written.
#[derive(Default)]
struct JobBuf {
    stdout: Mutex<String>,
    stderr: Mutex<String>,
}

impl JobBuf {
    fn out(&self, s: &str) {
        self.stdout.lock().unwrap().push_str(s);
    }
    fn err(&self, s: &str) {
        self.stderr.lock().unwrap().push_str(s);
    }
    fn take(self) -> (String, String) {
        let stdout = self
            .stdout
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let stderr = self
            .stderr
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (stdout, stderr)
    }
}

/// What [`Service::handle_frame`] produced: the reply body to send back,
/// and whether the server should drain its connections and exit.
pub struct FrameOutcome {
    /// Reply frame body (JSON document).
    pub reply: String,
    /// True only for an accepted shutdown request.
    pub shutdown: bool,
}

/// The compile service: one shared artifact cache plus stateless per-job
/// execution. Construct once, share by reference across workers.
pub struct Service {
    cache: ArtifactCache,
    started: Instant,
}

impl Service {
    /// A service with an artifact cache of `cache_bytes` capacity. Installs
    /// the per-thread panic capture hook (idempotent) so job ICEs are
    /// recorded per worker instead of spraying the daemon's stderr.
    pub fn new(cache_bytes: usize) -> Service {
        omplt_fault::install_panic_capture();
        Service {
            cache: ArtifactCache::new(cache_bytes),
            started: Instant::now(),
        }
    }

    /// The artifact cache (counters, direct inspection in tests).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// A health snapshot with the service-level fields (uptime, cache
    /// counters) filled in and the transport-level fields (queue, workers,
    /// supervisor) zeroed. `ompltd`'s transport loop overlays its pool
    /// state before rendering; a bare [`Service`] answers with this as-is.
    pub fn base_health(&self) -> HealthReport {
        HealthReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: 0,
            queue_capacity: 0,
            running: 0,
            workers_alive: 0,
            workers_configured: 0,
            draining: false,
            respawns: 0,
            requeued: 0,
            abandoned: 0,
            cache: self
                .cache
                .counters()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Handles one already-read frame body and says whether the server
    /// should drain and exit. Never panics on malformed input: bad frames
    /// get an `{"id":null,"error":...}` reply.
    pub fn handle_frame(&self, payload: &[u8]) -> FrameOutcome {
        let keep = |reply: String| FrameOutcome {
            reply,
            shutdown: false,
        };
        let Ok(text) = std::str::from_utf8(payload) else {
            return keep(error_reply("frame is not valid UTF-8"));
        };
        match Request::parse(text) {
            Err(e) => keep(error_reply(&e)),
            Ok(Request::Stats) => keep(self.cache.counters_json().trim_end().to_string()),
            Ok(Request::Health) => keep(self.base_health().render()),
            Ok(Request::Shutdown) => FrameOutcome {
                reply: "{\"ok\":true}".to_string(),
                shutdown: true,
            },
            Ok(Request::Job(job)) => keep(self.execute(&job).render()),
        }
    }

    /// Executes one job with full isolation: a fresh fault scope (armed
    /// from the job's own `inject_fault`, reset afterwards), an optional
    /// per-job trace session, and a `catch_unwind` ICE boundary that turns
    /// a panic anywhere in the pipeline into a structured reply while the
    /// worker thread lives on.
    pub fn execute(&self, job: &JobRequest) -> JobResponse {
        omplt_fault::reset();
        if let Some(spec) = &job.inject_fault {
            if let Err(msg) = omplt_fault::arm(spec) {
                // Same bytes as the CLI's `driver_error`.
                let stderr = if job.json_diags {
                    format!("[{}]\n", json_diag_object("error", &msg, &[]))
                } else {
                    format!("ompltc: {msg}\n")
                };
                return JobResponse {
                    id: job.id,
                    exit_code: 2,
                    stdout: String::new(),
                    stderr,
                    cache: CacheOutcome::Bypass,
                    counters_json: None,
                    chunk_log: None,
                    ice: None,
                };
            }
        }
        let session = job.want_counters.then(omplt_trace::Session::begin);
        let buf = JobBuf::default();
        let contain = omplt_fault::contain_panics();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.run_job(job, &buf)));
        drop(contain);
        if outcome.is_err() {
            omplt_trace::count("ice", 1);
        }
        let data = session.map(omplt_trace::Session::finish);
        let counters_json = data.as_ref().map(omplt_trace::TraceData::to_counters_json);
        let (exit_code, cache, chunk_log, ice) = match outcome {
            Ok((exit, cache, chunk)) => (exit, cache, chunk, None),
            Err(_) => {
                let stage = omplt_fault::current_stage().to_string();
                let (message, backtrace) = omplt_fault::take_panic()
                    .unwrap_or_else(|| ("<panic details unavailable>".to_string(), String::new()));
                (
                    3,
                    CacheOutcome::Bypass,
                    None,
                    Some(IceInfo {
                        stage,
                        message,
                        backtrace,
                    }),
                )
            }
        };
        omplt_fault::reset();
        let (stdout, stderr) = buf.take();
        JobResponse {
            id: job.id,
            exit_code,
            stdout,
            stderr,
            cache,
            counters_json,
            chunk_log,
            ice,
        }
    }

    /// The pipeline proper, mirroring the `ompltc` driver's `drive()` byte
    /// for byte. Returns (exit code, cache outcome, rendered chunk log).
    fn run_job(&self, job: &JobRequest, buf: &JobBuf) -> (u8, CacheOutcome, Option<String>) {
        let json = job.json_diags;
        let mut ci = CompilerInstance::new(job.opts);
        let emit_diags = |ci: &CompilerInstance| {
            if ci.diags.is_empty() {
                return;
            }
            if json {
                buf.err(&ci.render_diags_json());
            } else {
                buf.err(&ci.render_diags());
            }
        };

        // Pipeline fault-injection jobs bypass the cache entirely: an armed
        // site can fire anywhere in the pipeline, so neither serving a hit
        // (which would skip the site) nor storing the result is sound.
        // `daemon.*` sites target the service layer itself and keep the
        // cache live — `daemon.cache-corrupt` needs an entry to corrupt,
        // and a job requeued after `daemon.worker-kill` must still warm-hit.
        let daemon_fault = job
            .inject_fault
            .as_deref()
            .is_some_and(|s| s.starts_with("daemon."));
        let key = ((job.inject_fault.is_none() || daemon_fault) && !job.syntax_only)
            .then(|| CacheKey::new(&job.source, &job.opts, job.optimize));
        let mut cache_outcome = CacheOutcome::Bypass;
        let mut cached = None;
        if let Some(k) = &key {
            // Injected corruption lands immediately before the lookup that
            // would have served the entry, exercising the verify path.
            if omplt_fault::fire("daemon.cache-corrupt")
                || omplt_fault::fire_global("daemon.cache-corrupt")
            {
                self.cache.corrupt(k);
            }
            cached = self.cache.lookup(k);
            cache_outcome = if cached.is_some() {
                CacheOutcome::Hit
            } else {
                CacheOutcome::Miss
            };
        }

        let (module, code) = match cached {
            // Warm path: the whole front end, mid end, and VM compiler are
            // skipped. Cached compiles are diagnostic-free by construction,
            // so there is nothing to replay.
            Some(art) => {
                let code = art
                    .bytecode
                    .as_deref()
                    .and_then(|b| omplt_vm::decode(b).ok());
                (art.module, code)
            }
            None => {
                let tu = match ci.parse_source(&job.name, &job.source) {
                    Ok(tu) => tu,
                    Err(_) => {
                        emit_diags(&ci);
                        return (1, cache_outcome, None);
                    }
                };
                if job.syntax_only {
                    emit_diags(&ci);
                    return (0, cache_outcome, None);
                }
                let mut module = match ci.codegen(&tu) {
                    Ok(m) => m,
                    Err(rendered) => {
                        if ci.diags.is_empty() {
                            // Internal verifier failures are not diagnostics.
                            buf.err(&rendered);
                        } else {
                            emit_diags(&ci);
                        }
                        return (1, cache_outcome, None);
                    }
                };
                if job.optimize {
                    ci.optimize(&mut module);
                    if ci.diags.has_errors() {
                        emit_diags(&ci);
                        return (1, cache_outcome, None);
                    }
                }
                // The VM backends pre-compile bytecode exactly once here;
                // the run below reuses it instead of recompiling. A compile
                // failure leaves `code` empty and the run path degrades the
                // same way `ompltc` does (vm falls back, vm:strict is fatal).
                let mut code = None;
                if ci.opts.backend != Backend::Interp {
                    code = ci.compile_bytecode(&module).ok();
                }
                let module = Arc::new(module);
                if let Some(k) = key {
                    let vm_ready = ci.opts.backend == Backend::Interp || code.is_some();
                    if ci.diags.is_empty() && vm_ready {
                        let bytecode = code.as_ref().map(|c| Arc::new(omplt_vm::encode(c)));
                        let size = job.source.len()
                            + omplt_ir::print_module(&module).len()
                            + bytecode.as_deref().map_or(0, |b| b.len());
                        self.cache.insert(
                            k,
                            Artifact {
                                module: module.clone(),
                                bytecode,
                                size,
                            },
                        );
                    }
                }
                (module, code)
            }
        };

        if job.emit_ir {
            buf.out(&omplt_ir::print_module(&module));
        }
        if !job.run {
            emit_diags(&ci);
            return (0, cache_outcome, None);
        }
        // The client resolved `OMP_SCHEDULE` at its own entry point; if that
        // produced a warning it is recorded here, pre-run, in the exact slot
        // the in-process driver uses.
        if let Some(w) = &job.schedule_warning {
            ci.diags
                .warning(omplt_source::SourceLocation::INVALID, w.clone());
        }
        let result = match &code {
            Some(c) => ci.run_precompiled(&module, c),
            None => ci.run(&module),
        };
        emit_diags(&ci);
        match result {
            Ok(r) => {
                buf.out(&r.stdout);
                let chunk = job.opts.log_chunks.then(|| render_chunk_log(&r.chunk_log));
                (r.exit_code as u8, cache_outcome, chunk)
            }
            Err(e) => {
                if json {
                    buf.err(&format!(
                        "[{}]\n",
                        json_diag_object("error", &format!("runtime error: {e}"), &[])
                    ));
                } else {
                    buf.err(&format!("ompltc: runtime error: {e}\n"));
                }
                (1, cache_outcome, None)
            }
        }
    }
}

/// Throughput bench configuration (`ompltd --bench`).
pub struct BenchConfig {
    /// Distinct jobs per pass.
    pub jobs: usize,
    /// Worker counts to measure on the warm pass.
    pub worker_counts: Vec<usize>,
    /// Artifact cache budget.
    pub cache_bytes: usize,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            jobs: 32,
            worker_counts: vec![1, 4, 8],
            cache_bytes: crate::cache::DEFAULT_CACHE_BYTES,
        }
    }
}

/// One generated bench job: a parallel-for workload with per-variant
/// constants so every job is a distinct cache key.
fn bench_job(id: u64) -> JobRequest {
    let k = id + 1;
    let source = format!(
        "void print_i64(long v);\n\
         int a[128];\n\
         int main(void) {{\n\
           #pragma omp parallel for schedule(static)\n\
           for (int i = 0; i < 128; i += 1)\n\
             a[i] = i * {k};\n\
           long s = 0;\n\
           for (int i = 0; i < 128; i += 1)\n\
             s += a[i];\n\
           print_i64(s);\n\
           return 0;\n\
         }}\n"
    );
    let mut job = JobRequest::new(id, &format!("bench_{id}.c"), &source);
    job.opts.backend = Backend::Vm;
    // Serial guest execution: the bench measures service/worker throughput,
    // not guest thread-team scheduling, so each job stays on its worker.
    job.opts.serial = true;
    job.optimize = true;
    job.run = true;
    job
}

fn bench_pass(service: &Service, jobs: &[JobRequest], workers: usize) -> f64 {
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(job) = jobs.get(i) else { break };
                let resp = service.execute(job);
                assert_eq!(resp.exit_code, 0, "bench job failed: {}", resp.stderr);
            });
        }
    });
    jobs.len() as f64 / start.elapsed().as_secs_f64()
}

/// Runs the daemon throughput bench: one cold pass (every job a cache
/// miss), then a warm pass per requested worker count (every job a hit).
/// Returns the JSON artifact CI archives.
pub fn throughput_bench(cfg: &BenchConfig) -> String {
    let service = Service::new(cfg.cache_bytes);
    let jobs: Vec<JobRequest> = (0..cfg.jobs as u64).map(bench_job).collect();
    let cold = bench_pass(&service, &jobs, 1);
    let warm: Vec<String> = cfg
        .worker_counts
        .iter()
        .map(|&w| {
            let jps = bench_pass(&service, &jobs, w);
            format!("{{\"workers\":{w},\"jobs_per_sec\":{jps:.2}}}")
        })
        .collect();
    let counters: std::collections::HashMap<_, _> = service.cache.counters().into_iter().collect();
    format!(
        "{{\"bench\":\"ompltd.throughput\",\"jobs\":{},\"cache_bytes\":{},\
         \"cold\":{{\"workers\":1,\"jobs_per_sec\":{cold:.2}}},\"warm\":[{}],\
         \"cache\":{{\"hits\":{},\"misses\":{}}}}}\n",
        cfg.jobs,
        cfg.cache_bytes,
        warm.join(","),
        counters["daemon.cache.hits"],
        counters["daemon.cache.misses"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DEFAULT_CACHE_BYTES;

    const PRAGMA_SRC: &str = "void print_i64(long v);\n\
        int a[8];\n\
        int main(void) {\n\
          #pragma omp parallel for schedule(static)\n\
          for (int i = 0; i < 8; i += 1)\n\
            a[i] = i * 3;\n\
          long s = 0;\n\
          for (int i = 0; i < 8; i += 1)\n\
            s += a[i];\n\
          print_i64(s);\n\
          return 0;\n\
        }\n";

    fn run_request(id: u64) -> JobRequest {
        let mut job = JobRequest::new(id, "t.c", PRAGMA_SRC);
        job.opts.backend = Backend::Vm;
        job.opts.serial = true;
        job.optimize = true;
        job.run = true;
        job
    }

    #[test]
    fn warm_hit_skips_the_front_end_with_identical_output() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        let mut job = run_request(1);
        job.want_counters = true;
        let cold = service.execute(&job);
        assert_eq!(cold.exit_code, 0, "stderr: {}", cold.stderr);
        assert_eq!(cold.cache, CacheOutcome::Miss);
        let warm = service.execute(&job);
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(warm.stdout, cold.stdout);
        assert_eq!(warm.stderr, cold.stderr);
        assert_eq!(warm.exit_code, cold.exit_code);
        // The cold run's counters show sema doing transformation work; the
        // warm run never enters the front end, so they are absent.
        let cold_counters = cold.counters_json.unwrap();
        let warm_counters = warm.counters_json.unwrap();
        assert!(
            cold_counters.contains("sema."),
            "cold counters: {cold_counters}"
        );
        assert!(
            !warm_counters.contains("sema."),
            "warm counters must lack front-end work: {warm_counters}"
        );
    }

    #[test]
    fn fault_jobs_bypass_the_cache_and_yield_structured_ices() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        // Prime the cache so a hit *would* be available.
        assert_eq!(service.execute(&run_request(1)).cache, CacheOutcome::Miss);
        let mut job = run_request(2);
        job.inject_fault = Some("parse.panic".to_string());
        let resp = service.execute(&job);
        assert_eq!(resp.cache, CacheOutcome::Bypass);
        assert_eq!(resp.exit_code, 3);
        let ice = resp.ice.expect("ICE info");
        assert_eq!(ice.stage, "parse");
        assert!(ice.message.contains("injected fault"), "{}", ice.message);
        // The service survives and still serves hits.
        assert_eq!(service.execute(&run_request(3)).cache, CacheOutcome::Hit);
    }

    #[test]
    fn corrupted_cache_entry_is_quarantined_and_recompiled() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        let clean = service.execute(&run_request(1));
        assert_eq!(clean.cache, CacheOutcome::Miss);
        // `daemon.cache-corrupt` flips a byte in the cached artifact right
        // before lookup; the integrity check must refuse to serve it and
        // recompile instead of replaying a miscompile.
        let mut job = run_request(2);
        job.inject_fault = Some("daemon.cache-corrupt".to_string());
        let resp = service.execute(&job);
        assert_eq!(resp.cache, CacheOutcome::Miss, "quarantine forces a miss");
        assert_eq!(resp.exit_code, 0, "stderr: {}", resp.stderr);
        assert_eq!(resp.stdout, clean.stdout, "recompiled output is clean");
        let counters: std::collections::HashMap<_, _> =
            service.cache().counters().into_iter().collect();
        assert_eq!(counters["daemon.cache.integrity_failures"], 1);
        // The recompiled entry serves clean hits again.
        let warm = service.execute(&run_request(3));
        assert_eq!(warm.cache, CacheOutcome::Hit);
        assert_eq!(warm.stdout, clean.stdout);
    }

    #[test]
    fn health_frames_answer_with_service_level_snapshot() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        service.execute(&run_request(1));
        let out = service.handle_frame(b"{\"op\":\"health\"}");
        assert!(!out.shutdown);
        let h = crate::protocol::HealthReport::parse(&out.reply).unwrap();
        assert_eq!(h.workers_configured, 0, "bare service has no pool");
        let cache: std::collections::HashMap<_, _> = h.cache.into_iter().collect();
        assert_eq!(cache["daemon.cache.misses"], 1);
    }

    #[test]
    fn concurrent_fault_jobs_each_name_their_own_stage() {
        // Regression test for the old process-global PANIC_INFO slot: two
        // jobs ICEing concurrently in different stages must each report
        // their own stage and message, not the last writer's.
        let service = Service::new(DEFAULT_CACHE_BYTES);
        std::thread::scope(|s| {
            let sites = [("parse.panic", "parse"), ("codegen.panic", "codegen")];
            let handles: Vec<_> = sites
                .iter()
                .map(|&(site, stage)| {
                    let service = &service;
                    s.spawn(move || {
                        let mut worst = None;
                        for round in 0..8 {
                            let mut job = run_request(round);
                            job.inject_fault = Some(site.to_string());
                            let resp = service.execute(&job);
                            if resp.exit_code != 3
                                || resp.ice.as_ref().map(|i| i.stage.as_str()) != Some(stage)
                            {
                                worst = Some(resp);
                            }
                        }
                        worst
                    })
                })
                .collect();
            for h in handles {
                if let Some(bad) = h.join().unwrap() {
                    panic!(
                        "cross-thread ICE mixup: exit={} ice={:?}",
                        bad.exit_code, bad.ice
                    );
                }
            }
        });
    }

    #[test]
    fn malformed_frames_get_error_replies_not_crashes() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        for bad in [
            &b"not json"[..],
            b"{\"op\":\"job\"}",
            b"{}",
            b"[1,2,3]",
            b"\xff\xfe\x00",
        ] {
            let out = service.handle_frame(bad);
            assert!(!out.shutdown);
            assert!(
                out.reply.starts_with("{\"id\":null,\"error\":"),
                "reply for {bad:?}: {}",
                out.reply
            );
        }
        // And the service still works afterwards.
        let out = service.handle_frame(run_request(9).render().as_bytes());
        let resp = JobResponse::parse(&out.reply).unwrap();
        assert_eq!(resp.exit_code, 0, "stderr: {}", resp.stderr);
    }

    #[test]
    fn shutdown_and_stats_frames() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        let stats = service.handle_frame(b"{\"op\":\"stats\"}");
        assert!(stats.reply.contains("daemon.cache.hits"));
        assert!(!stats.shutdown);
        let bye = service.handle_frame(b"{\"op\":\"shutdown\"}");
        assert!(bye.shutdown);
    }

    #[test]
    fn fuel_exhaustion_is_a_structured_per_job_error() {
        let service = Service::new(DEFAULT_CACHE_BYTES);
        let mut job = run_request(1);
        job.opts.max_steps = 10;
        let resp = service.execute(&job);
        assert_eq!(resp.exit_code, 1);
        assert!(
            resp.stderr.contains("runtime error"),
            "stderr: {}",
            resp.stderr
        );
        assert!(resp.ice.is_none());
        // Unlimited-fuel jobs on the same service still succeed.
        let ok = service.execute(&run_request(2));
        assert_eq!(ok.exit_code, 0, "stderr: {}", ok.stderr);
    }
}
