//! Convenience helpers for tests, examples and benchmarks: run a source
//! snippet through the whole pipeline in one call.

use crate::compiler::{CompilerInstance, Options};
use omplt_interp::RunResult;
use omplt_sema::OpenMpCodegenMode;

/// Compiles and runs `source` with default options; panics on any error
/// (test helper).
pub fn run_source(source: &str) -> RunResult {
    run_source_with(source, Options::default(), true)
}

/// Compiles and runs with explicit options.
pub fn run_source_with(source: &str, opts: Options, optimize: bool) -> RunResult {
    let mut ci = CompilerInstance::new(opts);
    match ci.compile_and_run("input.c", source, optimize) {
        Ok(r) => r,
        Err(e) => panic!("pipeline failed:\n{e}"),
    }
}

/// Runs the same source through every configuration matrix point the
/// reproduction cares about: {classic, irbuilder} × {unoptimized,
/// optimized}, returning the four outputs for equivalence checks.
pub fn run_matrix(source: &str) -> [RunResult; 4] {
    let mk = |mode: OpenMpCodegenMode, opt: bool| {
        run_source_with(
            source,
            Options {
                codegen_mode: mode,
                serial: true,
                ..Options::default()
            },
            opt,
        )
    };
    [
        mk(OpenMpCodegenMode::Classic, false),
        mk(OpenMpCodegenMode::Classic, true),
        mk(OpenMpCodegenMode::IrBuilder, false),
        mk(OpenMpCodegenMode::IrBuilder, true),
    ]
}

/// Asserts that every matrix point produces `expected` on stdout.
pub fn assert_matrix_output(source: &str, expected: &str) {
    let labels = ["classic", "classic+opt", "irbuilder", "irbuilder+opt"];
    for (r, label) in run_matrix(source).iter().zip(labels) {
        assert_eq!(r.stdout, expected, "configuration '{label}' diverged");
    }
}
