//! ompltd — the compile server.
//!
//! Serves `omplt::service` over length-prefixed JSON frames (see
//! `src/protocol.rs` for the frame format and exit-code contract), either on
//! a Unix-domain socket (`--listen=PATH`) or over stdin/stdout (`--stdio`).
//! Jobs execute on a fixed worker pool (`--workers=N`); compiled artifacts
//! are shared through the content-addressed LRU cache (`--cache-bytes=N`).
//!
//! Two additional driver modes support CI:
//!
//! * `--warmup` runs a fixed, scripted job sequence against a fresh cache
//!   and prints the `daemon.cache.*` counters — `ci/check_counter_drift.sh`
//!   pins the exact hit/miss counts.
//! * `--bench` runs the throughput benchmark (cold pass, then warm passes at
//!   each `--bench-workers` count) and emits a JSON artifact.

use omplt::protocol::{error_reply, read_frame, write_frame};
use omplt::service::{throughput_bench, BenchConfig, Service};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

struct Config {
    listen: Option<String>,
    stdio: bool,
    workers: usize,
    cache_bytes: usize,
    warmup: bool,
    bench: bool,
    bench_out: Option<String>,
    bench_jobs: usize,
}

fn usage() -> u8 {
    eprintln!(
        "usage: ompltd (--listen=PATH | --stdio) [--workers=N] [--cache-bytes=N]\n\
         \x20      ompltd --warmup [--cache-bytes=N]\n\
         \x20      ompltd --bench [--bench-jobs=N] [--bench-out=FILE] [--cache-bytes=N]"
    );
    2
}

fn parse_args(args: &[String]) -> Result<Config, u8> {
    let mut cfg = Config {
        listen: None,
        stdio: false,
        workers: 4,
        cache_bytes: omplt::cache::DEFAULT_CACHE_BYTES,
        warmup: false,
        bench: false,
        bench_out: None,
        bench_jobs: 32,
    };
    for a in args {
        match a.as_str() {
            "--stdio" => cfg.stdio = true,
            "--warmup" => cfg.warmup = true,
            "--bench" => cfg.bench = true,
            other if other.starts_with("--listen=") => {
                cfg.listen = Some(other["--listen=".len()..].to_string());
            }
            other if other.starts_with("--workers=") => {
                let v = &other["--workers=".len()..];
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.workers = n,
                    _ => {
                        eprintln!(
                            "ompltd: invalid value '{v}' for '--workers': expected a \
                             positive integer"
                        );
                        return Err(2);
                    }
                }
            }
            other if other.starts_with("--cache-bytes=") => {
                let v = &other["--cache-bytes=".len()..];
                match v.parse::<usize>() {
                    Ok(n) => cfg.cache_bytes = n,
                    Err(_) => {
                        eprintln!(
                            "ompltd: invalid value '{v}' for '--cache-bytes': expected a \
                             byte count"
                        );
                        return Err(2);
                    }
                }
            }
            other if other.starts_with("--bench-jobs=") => {
                let v = &other["--bench-jobs=".len()..];
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.bench_jobs = n,
                    _ => {
                        eprintln!("ompltd: invalid value '{v}' for '--bench-jobs'");
                        return Err(2);
                    }
                }
            }
            other if other.starts_with("--bench-out=") => {
                cfg.bench_out = Some(other["--bench-out=".len()..].to_string());
            }
            other => {
                eprintln!("ompltd: unknown option '{other}'");
                return Err(usage());
            }
        }
    }
    let modes = usize::from(cfg.stdio)
        + usize::from(cfg.listen.is_some())
        + usize::from(cfg.warmup)
        + usize::from(cfg.bench);
    if modes != 1 {
        return Err(usage());
    }
    Ok(cfg)
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of job-execution threads fed from one shared queue.
struct Pool {
    tx: mpsc::Sender<Task>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn new(workers: usize) -> Pool {
        let (tx, rx) = mpsc::channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || loop {
                    // Hold the queue lock only while dequeuing, never while
                    // running a task.
                    let task = rx.lock().unwrap_or_else(|p| p.into_inner()).recv();
                    match task {
                        Ok(t) => t(),
                        Err(_) => break,
                    }
                })
            })
            .collect();
        Pool { tx, handles }
    }

    fn submit(&self, task: Task) {
        let _ = self.tx.send(task);
    }

    fn join(self) {
        drop(self.tx);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// Reads frames from `reader`, dispatches them to the pool, and writes
/// replies (in completion order — replies carry the request id) to
/// `writer`. Returns true if a shutdown request was honored.
fn serve_stream<R, W>(
    reader: &mut R,
    writer: Arc<Mutex<W>>,
    service: &Arc<Service>,
    pool: &Pool,
) -> bool
where
    R: std::io::Read,
    W: Write + Send + 'static,
{
    let (done_tx, done_rx) = mpsc::channel::<bool>();
    let mut outstanding = 0usize;
    let mut shutdown = false;
    loop {
        match read_frame(reader) {
            Ok(None) => break,
            Ok(Some(body)) => {
                let service = service.clone();
                let writer = writer.clone();
                let done = done_tx.clone();
                pool.submit(Box::new(move || {
                    let out = service.handle_frame(&body);
                    {
                        let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                        let _ = write_frame(&mut *w, out.reply.as_bytes());
                    }
                    let _ = done.send(out.shutdown);
                }));
                outstanding += 1;
                // Stop reading as soon as a completed request asked for
                // shutdown; later frames on this stream are not consumed.
                while let Ok(flag) = done_rx.try_recv() {
                    outstanding -= 1;
                    shutdown |= flag;
                }
                if shutdown {
                    break;
                }
            }
            Err(e) => {
                // A malformed frame desynchronizes the stream: reply with a
                // structured error, then close this connection. The server
                // itself keeps serving.
                let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
                let _ = write_frame(&mut *w, error_reply(&e.to_string()).as_bytes());
                break;
            }
        }
    }
    for _ in 0..outstanding {
        if let Ok(flag) = done_rx.recv() {
            shutdown |= flag;
        }
    }
    shutdown
}

fn serve_socket(path: &str, cfg: &Config) -> ExitCode {
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompltd: cannot bind '{path}': {e}");
            return ExitCode::from(1);
        }
    };
    let service = Arc::new(Service::new(cfg.cache_bytes));
    let pool = Pool::new(cfg.workers);
    let shutdown = Arc::new(AtomicBool::new(false));
    eprintln!("ompltd: listening on {path} ({} workers)", cfg.workers);
    std::thread::scope(|scope| {
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let service = &service;
            let pool = &pool;
            let shutdown = &shutdown;
            let path = path.to_string();
            scope.spawn(move || {
                let mut reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => return,
                };
                let writer = Arc::new(Mutex::new(stream));
                if serve_stream(&mut reader, writer, service, pool) {
                    shutdown.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can observe the flag.
                    let _ = UnixStream::connect(&path);
                }
            });
        }
    });
    let _ = std::fs::remove_file(path);
    pool.join();
    eprintln!("ompltd: shutting down");
    ExitCode::SUCCESS
}

fn serve_stdio(cfg: &Config) -> ExitCode {
    let service = Arc::new(Service::new(cfg.cache_bytes));
    let pool = Pool::new(cfg.workers);
    let mut stdin = std::io::stdin().lock();
    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    serve_stream(&mut stdin, stdout, &service, &pool);
    pool.join();
    ExitCode::SUCCESS
}

/// The scripted warm-up `ci/check_counter_drift.sh` pins: four distinct
/// compile jobs replayed in a fixed pattern. The expected counters are part
/// of the CI contract — if this script changes, the pin must change with it.
fn warmup(cfg: &Config) -> ExitCode {
    let service = Service::new(cfg.cache_bytes);
    let a = "void print_i64(long v);\n\
             int main(void) { print_i64(41); return 0; }\n";
    let a_mutated = "void print_i64(long v);\n\
             int main(void) { print_i64(42); return 0; }\n";
    let b = "int main(void) { return 7; }\n";
    // A(miss) A(hit) B(miss) A'(miss) A(hit) A'(hit) => 3 hits, 3 misses.
    for (id, src) in [a, a, b, a_mutated, a, a_mutated].iter().enumerate() {
        let mut job = omplt::protocol::JobRequest::new(id as u64, "warmup.c", src);
        job.run = true;
        let resp = service.execute(&job);
        if resp.exit_code != 0 && resp.exit_code != 7 {
            eprintln!(
                "ompltd: warmup job {id} failed with exit {}: {}",
                resp.exit_code, resp.stderr
            );
            return ExitCode::from(1);
        }
    }
    print!("{}", service.cache().counters_json());
    ExitCode::SUCCESS
}

fn bench(cfg: &Config) -> ExitCode {
    let artifact = throughput_bench(&BenchConfig {
        jobs: cfg.bench_jobs,
        worker_counts: vec![1, 4, 8],
        cache_bytes: cfg.cache_bytes,
    });
    match &cfg.bench_out {
        None => print!("{artifact}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &artifact) {
                eprintln!("ompltd: cannot write bench artifact to '{path}': {e}");
                return ExitCode::from(1);
            }
            eprint!("{artifact}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(code) => return ExitCode::from(code),
    };
    if cfg.warmup {
        return warmup(&cfg);
    }
    if cfg.bench {
        return bench(&cfg);
    }
    if cfg.stdio {
        return serve_stdio(&cfg);
    }
    match &cfg.listen {
        Some(path) => serve_socket(path, &cfg),
        None => ExitCode::from(usage()),
    }
}
