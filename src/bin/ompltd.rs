//! ompltd — the compile server.
//!
//! Serves `omplt::service` over length-prefixed JSON frames (see
//! `src/protocol.rs` for the frame format and exit-code contract), either on
//! a Unix-domain socket (`--listen=PATH`) or over stdin/stdout (`--stdio`).
//! Jobs execute on a supervised worker pool (`--workers=N`); compiled
//! artifacts are shared through the content-addressed LRU cache
//! (`--cache-bytes=N`).
//!
//! ## Survivability
//!
//! The daemon is built to keep serving under partial failure:
//!
//! * **Worker supervision** — a worker that dies of an uncontained panic
//!   (injected via `daemon.worker-kill`, or a genuine bug outside the ICE
//!   boundary) is respawned; its in-flight job is requeued at the front of
//!   the queue *at most once*. A job whose worker dies twice is abandoned
//!   with a correlated error reply so the client never hangs. Counted in
//!   `daemon.supervisor.{respawns,requeued,abandoned}`.
//! * **Admission control** — the job queue is bounded (`--queue-depth=N`).
//!   A job arriving at a full queue (or while draining) is shed with a
//!   structured `Overloaded{retry_after_ms,queue_depth}` reply instead of
//!   growing the queue without bound. `{"op":"health"}` reports queue
//!   depth, worker liveness, supervisor counters, cache counters, uptime.
//! * **Deadlines** — `--job-deadline-ms=N` imposes a server-side wall-clock
//!   budget on every job (composed with the client's `--exec-timeout` by
//!   taking the minimum); `--frame-timeout-ms=N` bounds how long a
//!   connection may stall mid-frame (slowloris) or sit idle before its
//!   thread is reclaimed.
//! * **Graceful drain** — SIGTERM/SIGINT (or a `shutdown` frame) stops
//!   accepting work, finishes everything queued and running, refuses new
//!   jobs with `Overloaded`, and exits 0 within `--drain-ms` (a daemon that
//!   cannot drain in time exits 1 rather than hang).
//! * **Cache integrity** — see `src/cache.rs`: artifacts are checksummed at
//!   insert, verified on hit, and quarantined + recompiled on mismatch.
//!
//! Three additional driver modes support CI:
//!
//! * `--warmup` runs a fixed, scripted job sequence against a fresh cache
//!   and prints the `daemon.cache.*` counters — `ci/check_counter_drift.sh`
//!   pins the exact hit/miss counts.
//! * `--selftest` drives the supervised pool through a scripted
//!   kill/requeue/abandon/corrupt sequence in-process and prints the
//!   `daemon.cache.*` + `daemon.supervisor.*` counters (also pinned).
//! * `--bench` runs the throughput benchmark (cold pass, then warm passes at
//!   each `--bench-workers` count) and emits a JSON artifact.

use omplt::protocol::{
    error_reply, error_reply_for, overloaded_reply, read_frame, write_frame, FrameError,
    HealthReport, JobRequest, Overloaded, Reply, Request,
};
use omplt::service::{throughput_bench, BenchConfig, Service};
use std::collections::VecDeque;
use std::io::Write;
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Config {
    listen: Option<String>,
    stdio: bool,
    workers: usize,
    cache_bytes: usize,
    queue_depth: usize,
    job_deadline_ms: Option<u64>,
    frame_timeout_ms: u64,
    drain_ms: u64,
    inject_faults: Vec<String>,
    warmup: bool,
    selftest: bool,
    bench: bool,
    bench_out: Option<String>,
    bench_jobs: usize,
}

fn usage() -> u8 {
    eprintln!(
        "usage: ompltd (--listen=PATH | --stdio) [--workers=N] [--cache-bytes=N]\n\
         \x20              [--queue-depth=N] [--job-deadline-ms=N] [--frame-timeout-ms=N]\n\
         \x20              [--drain-ms=N] [--inject-fault=daemon.SITE[:N]]...\n\
         \x20      ompltd --warmup [--cache-bytes=N]\n\
         \x20      ompltd --selftest [--cache-bytes=N]\n\
         \x20      ompltd --bench [--bench-jobs=N] [--bench-out=FILE] [--cache-bytes=N]"
    );
    2
}

fn parse_args(args: &[String]) -> Result<Config, u8> {
    let mut cfg = Config {
        listen: None,
        stdio: false,
        workers: 4,
        cache_bytes: omplt::cache::DEFAULT_CACHE_BYTES,
        queue_depth: 64,
        job_deadline_ms: None,
        frame_timeout_ms: 10_000,
        drain_ms: 5_000,
        inject_faults: Vec::new(),
        warmup: false,
        selftest: false,
        bench: false,
        bench_out: None,
        bench_jobs: 32,
    };
    let parse_num = |flag: &str, v: &str, min: usize| -> Result<usize, u8> {
        match v.parse::<usize>() {
            Ok(n) if n >= min => Ok(n),
            _ => {
                eprintln!("ompltd: invalid value '{v}' for '{flag}': expected an integer >= {min}");
                Err(2)
            }
        }
    };
    for a in args {
        match a.as_str() {
            "--stdio" => cfg.stdio = true,
            "--warmup" => cfg.warmup = true,
            "--selftest" => cfg.selftest = true,
            "--bench" => cfg.bench = true,
            other if other.starts_with("--listen=") => {
                cfg.listen = Some(other["--listen=".len()..].to_string());
            }
            other if other.starts_with("--workers=") => {
                cfg.workers = parse_num("--workers", &other["--workers=".len()..], 1)?;
            }
            other if other.starts_with("--cache-bytes=") => {
                let v = &other["--cache-bytes=".len()..];
                match v.parse::<usize>() {
                    Ok(n) => cfg.cache_bytes = n,
                    Err(_) => {
                        eprintln!(
                            "ompltd: invalid value '{v}' for '--cache-bytes': expected a \
                             byte count"
                        );
                        return Err(2);
                    }
                }
            }
            other if other.starts_with("--queue-depth=") => {
                cfg.queue_depth = parse_num("--queue-depth", &other["--queue-depth=".len()..], 1)?;
            }
            other if other.starts_with("--job-deadline-ms=") => {
                cfg.job_deadline_ms = Some(parse_num(
                    "--job-deadline-ms",
                    &other["--job-deadline-ms=".len()..],
                    1,
                )? as u64);
            }
            other if other.starts_with("--frame-timeout-ms=") => {
                // 0 disables the frame timeout.
                cfg.frame_timeout_ms = parse_num(
                    "--frame-timeout-ms",
                    &other["--frame-timeout-ms=".len()..],
                    0,
                )? as u64;
            }
            other if other.starts_with("--drain-ms=") => {
                cfg.drain_ms = parse_num("--drain-ms", &other["--drain-ms=".len()..], 1)? as u64;
            }
            other if other.starts_with("--inject-fault=") => {
                let spec = other["--inject-fault=".len()..].to_string();
                if let Err(e) = omplt::fault::parse_spec(&spec) {
                    eprintln!("ompltd: {e}");
                    return Err(2);
                }
                if !spec.starts_with("daemon.") {
                    eprintln!(
                        "ompltd: --inject-fault only accepts daemon.* sites; \
                         '{spec}' is a per-job pipeline site (pass it via ompltc)"
                    );
                    return Err(2);
                }
                cfg.inject_faults.push(spec);
            }
            other if other.starts_with("--bench-jobs=") => {
                cfg.bench_jobs = parse_num("--bench-jobs", &other["--bench-jobs=".len()..], 1)?;
            }
            other if other.starts_with("--bench-out=") => {
                cfg.bench_out = Some(other["--bench-out=".len()..].to_string());
            }
            other => {
                eprintln!("ompltd: unknown option '{other}'");
                return Err(usage());
            }
        }
    }
    let modes = usize::from(cfg.stdio)
        + usize::from(cfg.listen.is_some())
        + usize::from(cfg.warmup)
        + usize::from(cfg.selftest)
        + usize::from(cfg.bench);
    if modes != 1 {
        return Err(usage());
    }
    Ok(cfg)
}

/// A reply sink shared between the connection's reader and the workers
/// answering its jobs (and, for an abandoned job, the supervisor).
type SharedWriter = Arc<Mutex<dyn Write + Send>>;

/// One admitted job traveling through the pool.
struct QueuedJob {
    job: Box<JobRequest>,
    writer: SharedWriter,
    /// Completion signal back to the connection that admitted the job;
    /// fired exactly once (normal reply or abandonment).
    done: mpsc::Sender<()>,
    /// 0 on admission; 1 after a supervisor requeue. Never exceeds 1.
    attempt: u32,
}

struct PoolQueue {
    jobs: VecDeque<QueuedJob>,
    closed: bool,
}

/// State shared by the workers, the supervisor (worker drop guards), and
/// the transport (admission control, health).
struct PoolShared {
    queue: Mutex<PoolQueue>,
    cv: Condvar,
    capacity: usize,
    workers_configured: usize,
    alive: AtomicUsize,
    running: AtomicUsize,
    respawns: AtomicU64,
    requeued: AtomicU64,
    abandoned: AtomicU64,
    service: Arc<Service>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl PoolShared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, PoolQueue> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A supervised, bounded pool of job-execution threads.
struct Pool {
    shared: Arc<PoolShared>,
}

/// What [`Pool::close_and_join`] observed over the pool's lifetime.
struct PoolReport {
    respawns: u64,
    requeued: u64,
    abandoned: u64,
}

impl Pool {
    fn new(workers: usize, capacity: usize, service: Arc<Service>) -> Pool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
            workers_configured: workers,
            alive: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            respawns: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            service,
            handles: Mutex::new(Vec::new()),
        });
        for _ in 0..workers {
            spawn_worker(&shared);
        }
        Pool { shared }
    }

    /// Admits a job unless the queue is full or closed; the rejected job is
    /// handed back so the caller can shed it with an `Overloaded` reply.
    fn try_submit(&self, qj: QueuedJob) -> Result<(), QueuedJob> {
        {
            let mut q = self.shared.lock_queue();
            if q.closed || q.jobs.len() >= self.shared.capacity {
                return Err(qj);
            }
            q.jobs.push_back(qj);
        }
        self.shared.cv.notify_one();
        Ok(())
    }

    fn depth(&self) -> usize {
        self.shared.lock_queue().jobs.len()
    }

    /// True when nothing is queued and nothing is running.
    fn idle(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst) == 0 && self.depth() == 0
    }

    /// Closes the queue and joins every worker (including respawned ones),
    /// reporting the supervisor counters so a pool that lost workers can
    /// never exit silently. Queued jobs are still executed before workers
    /// observe the close.
    fn close_and_join(self) -> PoolReport {
        {
            let mut q = self.shared.lock_queue();
            q.closed = true;
        }
        self.shared.cv.notify_all();
        // A panicking worker pushes its replacement's handle before its own
        // thread terminates, and `join` waits for termination — so looping
        // until the vector is empty joins every worker ever spawned.
        loop {
            let handle = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        PoolReport {
            respawns: self.shared.respawns.load(Ordering::SeqCst),
            requeued: self.shared.requeued.load(Ordering::SeqCst),
            abandoned: self.shared.abandoned.load(Ordering::SeqCst),
        }
    }
}

fn spawn_worker(shared: &Arc<PoolShared>) {
    shared.alive.fetch_add(1, Ordering::SeqCst);
    let worker_shared = shared.clone();
    let handle = std::thread::Builder::new()
        .name("ompltd-worker".to_string())
        .spawn(move || worker_loop(worker_shared))
        .expect("spawn pool worker");
    shared
        .handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(handle);
}

/// Decrements the live-worker count when the worker thread ends, however it
/// ends.
struct AliveGuard {
    shared: Arc<PoolShared>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.shared.alive.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Owns the job a worker is executing. Dropped normally it only releases
/// the running count; dropped during an unwind (the worker is dying) it
/// *supervises*: respawn a replacement worker, then requeue the job at the
/// front of the queue if this was its first attempt, or abandon it with a
/// correlated error reply so the client still gets exactly one answer.
struct InFlight {
    shared: Arc<PoolShared>,
    job: Option<QueuedJob>,
}

impl Drop for InFlight {
    fn drop(&mut self) {
        self.shared.running.fetch_sub(1, Ordering::SeqCst);
        if !std::thread::panicking() {
            return;
        }
        self.shared.respawns.fetch_add(1, Ordering::SeqCst);
        if let Some(mut qj) = self.job.take() {
            if qj.attempt == 0 {
                qj.attempt = 1;
                self.shared.requeued.fetch_add(1, Ordering::SeqCst);
                {
                    let mut q = self.shared.lock_queue();
                    q.jobs.push_front(qj);
                }
                self.shared.cv.notify_one();
            } else {
                self.shared.abandoned.fetch_add(1, Ordering::SeqCst);
                let reply = error_reply_for(
                    qj.job.id,
                    "job abandoned: worker died twice while executing it",
                );
                {
                    let mut w = qj.writer.lock().unwrap_or_else(|p| p.into_inner());
                    let _ = write_frame(&mut *w, reply.as_bytes());
                }
                let _ = qj.done.send(());
            }
        }
        spawn_worker(&self.shared);
    }
}

/// Shots the job's own `--inject-fault` spec devotes to killing its worker
/// (0 when it targets another site). `daemon.worker-kill:N` kills the first
/// N workers that pick the job up, so `:1` exercises requeue-and-recover
/// and `:2` exercises abandonment.
fn injected_kill_shots(job: &JobRequest) -> u64 {
    job.inject_fault
        .as_deref()
        .and_then(|spec| omplt::fault::parse_spec(spec).ok())
        .filter(|(site, _)| *site == "daemon.worker-kill")
        .map_or(0, |(_, n)| n)
}

fn worker_loop(shared: Arc<PoolShared>) {
    let _alive = AliveGuard {
        shared: shared.clone(),
    };
    loop {
        let qj = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break j;
                }
                if q.closed {
                    return;
                }
                q = shared.cv.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        shared.running.fetch_add(1, Ordering::SeqCst);
        let mut flight = InFlight {
            shared: shared.clone(),
            job: Some(qj),
        };
        let (attempt, kill_shots) = {
            let qj = flight.job.as_ref().expect("job just stored");
            (qj.attempt, injected_kill_shots(&qj.job))
        };
        // Injected worker death. Per-job shots kill every attempt they
        // cover; a globally armed kill only ever takes a job's *first*
        // attempt, so chaos runs lose no jobs to unlucky double kills.
        if u64::from(attempt) < kill_shots
            || (attempt == 0 && omplt::fault::fire_global("daemon.worker-kill"))
        {
            panic!("injected fault at site 'daemon.worker-kill'");
        }
        // The job stays owned by `flight` through execution so an
        // uncontained panic inside the pipeline still requeues it; it is
        // taken out before the reply is written so a (hypothetical) panic
        // while replying can never double-execute it.
        let reply = shared
            .service
            .execute(&flight.job.as_ref().expect("job in flight").job)
            .render();
        let qj = flight.job.take().expect("job in flight");
        {
            let mut w = qj.writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = write_frame(&mut *w, reply.as_bytes());
        }
        let _ = qj.done.send(());
        drop(flight);
    }
}

/// SIGTERM/SIGINT land here; the accept loop polls the flag.
static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_sig: i32) {
    SIGNAL_DRAIN.store(true, Ordering::SeqCst);
}

// `std` links libc; declaring `signal` directly keeps the workspace free of
// external crates. Registering an atomic-store handler is async-signal-safe.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn install_drain_signals() {
    unsafe {
        signal(SIGTERM, on_drain_signal);
        signal(SIGINT, on_drain_signal);
    }
}

/// Everything a connection thread needs: the service, the pool, and the
/// drain state.
struct DaemonCtx {
    service: Arc<Service>,
    pool: Pool,
    drain: AtomicBool,
    job_deadline_ms: Option<u64>,
}

impl DaemonCtx {
    fn new(cfg: &Config) -> DaemonCtx {
        let service = Arc::new(Service::new(cfg.cache_bytes));
        let pool = Pool::new(cfg.workers, cfg.queue_depth, service.clone());
        DaemonCtx {
            service,
            pool,
            drain: AtomicBool::new(false),
            job_deadline_ms: cfg.job_deadline_ms,
        }
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || SIGNAL_DRAIN.load(Ordering::SeqCst)
    }

    fn health(&self) -> HealthReport {
        let s = &self.pool.shared;
        let mut h = self.service.base_health();
        h.queue_depth = self.pool.depth() as u64;
        h.queue_capacity = s.capacity as u64;
        h.running = s.running.load(Ordering::SeqCst) as u64;
        h.workers_alive = s.alive.load(Ordering::SeqCst) as u64;
        h.workers_configured = s.workers_configured as u64;
        h.draining = self.draining();
        h.respawns = s.respawns.load(Ordering::SeqCst);
        h.requeued = s.requeued.load(Ordering::SeqCst);
        h.abandoned = s.abandoned.load(Ordering::SeqCst);
        h
    }
}

/// The server's wall-clock deadline composes with the client's by taking
/// the minimum: whichever budget is tighter governs the job.
fn compose_deadline(client: Option<u64>, server: Option<u64>) -> Option<u64> {
    match (client, server) {
        (Some(c), Some(s)) => Some(c.min(s)),
        (c, s) => c.or(s),
    }
}

/// Reads frames from `reader`, answering control requests inline and
/// admitting jobs to the pool (replies are written by the workers, in
/// completion order — replies carry the request id). A shutdown frame sets
/// the drain flag; the accept loop observes it.
fn serve_stream<R: std::io::Read>(reader: &mut R, writer: SharedWriter, ctx: &DaemonCtx) {
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let mut outstanding = 0usize;
    let write_reply = |body: &str| {
        let mut w = writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = write_frame(&mut *w, body.as_bytes());
    };
    loop {
        while done_rx.try_recv().is_ok() {
            outstanding -= 1;
        }
        match read_frame(reader) {
            Ok(None) => break,
            Err(FrameError::TimedOut { mid_frame: false }) => {
                // Plain idleness: keep waiting while this connection still
                // owes replies; otherwise reclaim the thread quietly.
                if outstanding > 0 {
                    continue;
                }
                break;
            }
            Err(e) => {
                // A malformed or stalled frame desynchronizes the stream:
                // reply with a structured error, then close this
                // connection. The server itself keeps serving.
                write_reply(&error_reply(&e.to_string()));
                break;
            }
            Ok(Some(body)) => {
                let Ok(text) = std::str::from_utf8(&body) else {
                    write_reply(&error_reply("frame is not valid UTF-8"));
                    continue;
                };
                match Request::parse(text) {
                    Err(e) => write_reply(&error_reply(&e)),
                    Ok(Request::Stats) => {
                        write_reply(ctx.service.cache().counters_json().trim_end());
                    }
                    Ok(Request::Health) => write_reply(&ctx.health().render()),
                    Ok(Request::Shutdown) => {
                        write_reply("{\"ok\":true}");
                        ctx.drain.store(true, Ordering::SeqCst);
                        break;
                    }
                    Ok(Request::Job(mut job)) => {
                        job.opts.deadline_ms =
                            compose_deadline(job.opts.deadline_ms, ctx.job_deadline_ms);
                        let shed_injected = omplt::fault::fire_global("daemon.queue-full");
                        if ctx.draining() || shed_injected {
                            let o = Overloaded {
                                retry_after_ms: if ctx.draining() { 100 } else { 50 },
                                queue_depth: ctx.pool.depth() as u64,
                            };
                            write_reply(&overloaded_reply(Some(job.id), &o));
                            continue;
                        }
                        let qj = QueuedJob {
                            job,
                            writer: writer.clone(),
                            done: done_tx.clone(),
                            attempt: 0,
                        };
                        match ctx.pool.try_submit(qj) {
                            Ok(()) => outstanding += 1,
                            Err(rejected) => {
                                let o = Overloaded {
                                    retry_after_ms: 50,
                                    queue_depth: ctx.pool.depth() as u64,
                                };
                                write_reply(&overloaded_reply(Some(rejected.job.id), &o));
                            }
                        }
                    }
                }
            }
        }
    }
    // Every admitted job answers (normal reply or abandonment) before the
    // connection winds down.
    for _ in 0..outstanding {
        let _ = done_rx.recv();
    }
}

fn serve_socket(path: &str, cfg: &Config) -> ExitCode {
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ompltd: cannot bind '{path}': {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("ompltd: cannot poll '{path}': {e}");
        return ExitCode::from(1);
    }
    install_drain_signals();
    let ctx = DaemonCtx::new(cfg);
    eprintln!(
        "ompltd: listening on {path} ({} workers, queue depth {})",
        cfg.workers, cfg.queue_depth
    );
    std::thread::scope(|scope| {
        while !ctx.draining() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    if cfg.frame_timeout_ms > 0 {
                        let _ = stream
                            .set_read_timeout(Some(Duration::from_millis(cfg.frame_timeout_ms)));
                    }
                    let ctx = &ctx;
                    scope.spawn(move || {
                        let Ok(mut reader) = stream.try_clone() else {
                            return;
                        };
                        let writer: SharedWriter = Arc::new(Mutex::new(stream));
                        serve_stream(&mut reader, writer, ctx);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => {}
            }
        }
        eprintln!(
            "ompltd: draining ({} queued, {} running)",
            ctx.pool.depth(),
            ctx.pool.shared.running.load(Ordering::SeqCst)
        );
        // Drain phase: finish queued+running jobs, refuse new connections
        // with `Overloaded`, and never outlive the drain window.
        let deadline = Instant::now() + Duration::from_millis(cfg.drain_ms);
        while !ctx.pool.idle() {
            if Instant::now() >= deadline {
                let _ = std::fs::remove_file(path);
                eprintln!(
                    "ompltd: drain deadline ({} ms) exceeded with work unfinished; aborting",
                    cfg.drain_ms
                );
                std::process::exit(1);
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let o = Overloaded {
                        retry_after_ms: 100,
                        queue_depth: ctx.pool.depth() as u64,
                    };
                    let _ = write_frame(&mut stream, overloaded_reply(None, &o).as_bytes());
                }
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    });
    let report = ctx.pool.close_and_join();
    if report.respawns > 0 {
        eprintln!(
            "ompltd: supervised {} worker respawn(s) ({} job(s) requeued, {} abandoned)",
            report.respawns, report.requeued, report.abandoned
        );
    }
    let _ = std::fs::remove_file(path);
    eprintln!("ompltd: shutting down");
    ExitCode::SUCCESS
}

fn serve_stdio(cfg: &Config) -> ExitCode {
    let ctx = DaemonCtx::new(cfg);
    let mut stdin = std::io::stdin().lock();
    let stdout: SharedWriter = Arc::new(Mutex::new(std::io::stdout()));
    serve_stream(&mut stdin, stdout, &ctx);
    let report = ctx.pool.close_and_join();
    if report.respawns > 0 {
        eprintln!(
            "ompltd: supervised {} worker respawn(s) ({} job(s) requeued, {} abandoned)",
            report.respawns, report.requeued, report.abandoned
        );
    }
    ExitCode::SUCCESS
}

/// The scripted warm-up `ci/check_counter_drift.sh` pins: four distinct
/// compile jobs replayed in a fixed pattern. The expected counters are part
/// of the CI contract — if this script changes, the pin must change with it.
fn warmup(cfg: &Config) -> ExitCode {
    let service = Service::new(cfg.cache_bytes);
    let a = "void print_i64(long v);\n\
             int main(void) { print_i64(41); return 0; }\n";
    let a_mutated = "void print_i64(long v);\n\
             int main(void) { print_i64(42); return 0; }\n";
    let b = "int main(void) { return 7; }\n";
    // A(miss) A(hit) B(miss) A'(miss) A(hit) A'(hit) => 3 hits, 3 misses.
    for (id, src) in [a, a, b, a_mutated, a, a_mutated].iter().enumerate() {
        let mut job = JobRequest::new(id as u64, "warmup.c", src);
        job.run = true;
        let resp = service.execute(&job);
        if resp.exit_code != 0 && resp.exit_code != 7 {
            eprintln!(
                "ompltd: warmup job {id} failed with exit {}: {}",
                resp.exit_code, resp.stderr
            );
            return ExitCode::from(1);
        }
    }
    print!("{}", service.cache().counters_json());
    ExitCode::SUCCESS
}

/// Drives the supervised pool through a scripted fault sequence in-process
/// and prints the combined `daemon.cache.*` + `daemon.supervisor.*`
/// counters. `ci/check_counter_drift.sh` pins the exact values:
///
/// 1. clean job            → miss
/// 2. same source          → hit
/// 3. `worker-kill`        → killed, requeued, succeeds as a hit (respawn 1)
/// 4. `worker-kill:2`      → killed twice, abandoned      (respawns 2 and 3)
/// 5. `cache-corrupt`      → quarantined, recompiled as a miss
/// 6. same source          → hit of the recompiled artifact
fn selftest(cfg: &Config) -> ExitCode {
    let service = Arc::new(Service::new(cfg.cache_bytes));
    let pool = Pool::new(2, 16, service.clone());
    let src = "void print_i64(long v);\n\
               int main(void) { print_i64(40 + 2); return 0; }\n";
    let mut failed = false;
    let steps: &[(Option<&str>, &str)] = &[
        (None, "miss"),
        (None, "hit"),
        (Some("daemon.worker-kill"), "hit"),
        (Some("daemon.worker-kill:2"), "abandoned"),
        (Some("daemon.cache-corrupt"), "miss"),
        (None, "hit"),
    ];
    for (id, (fault, expect)) in steps.iter().enumerate() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let mut job = JobRequest::new(id as u64, "selftest.c", src);
        job.run = true;
        // The VM backend caches a bytecode image — the thing the integrity
        // checksum protects; the interp backend would leave nothing to
        // corrupt.
        job.opts.backend = omplt::compiler::Backend::Vm;
        job.inject_fault = fault.map(str::to_string);
        if pool
            .try_submit(QueuedJob {
                job: Box::new(job),
                writer: buf.clone(),
                done: done_tx,
                attempt: 0,
            })
            .is_err()
        {
            eprintln!("ompltd: selftest step {id}: queue refused the job");
            return ExitCode::from(1);
        }
        let _ = done_rx.recv();
        let bytes = buf.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let frame = match read_frame(&mut &bytes[..]) {
            Ok(Some(f)) => f,
            other => {
                eprintln!("ompltd: selftest step {id}: no reply frame ({other:?})");
                return ExitCode::from(1);
            }
        };
        let got = match Reply::parse(&String::from_utf8_lossy(&frame)) {
            Ok(Reply::Job(resp)) if resp.exit_code == 0 => {
                format!("{:?}", resp.cache).to_ascii_lowercase()
            }
            Ok(Reply::Job(resp)) => format!("exit {} ({})", resp.exit_code, resp.stderr),
            Ok(Reply::Overloaded(_)) => "overloaded".to_string(),
            Err(e) if e.contains("abandoned") => "abandoned".to_string(),
            Err(e) => format!("error: {e}"),
        };
        if got != *expect {
            eprintln!("ompltd: selftest step {id}: expected {expect}, got {got}");
            failed = true;
        }
    }
    let report = pool.close_and_join();
    let mut counters: Vec<(String, u64)> = service
        .cache()
        .counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.push(("daemon.supervisor.abandoned".to_string(), report.abandoned));
    counters.push(("daemon.supervisor.requeued".to_string(), report.requeued));
    counters.push(("daemon.supervisor.respawns".to_string(), report.respawns));
    counters.sort();
    let body = counters
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    println!("{{\"counters\":{{{body}}}}}");
    if failed {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn bench(cfg: &Config) -> ExitCode {
    let artifact = throughput_bench(&BenchConfig {
        jobs: cfg.bench_jobs,
        worker_counts: vec![1, 4, 8],
        cache_bytes: cfg.cache_bytes,
    });
    match &cfg.bench_out {
        None => print!("{artifact}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &artifact) {
                eprintln!("ompltd: cannot write bench artifact to '{path}': {e}");
                return ExitCode::from(1);
            }
            eprint!("{artifact}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(code) => return ExitCode::from(code),
    };
    for spec in &cfg.inject_faults {
        // Validated during parsing; arming cannot fail here.
        let _ = omplt::fault::arm_global(spec);
    }
    if cfg.warmup {
        return warmup(&cfg);
    }
    if cfg.selftest {
        return selftest(&cfg);
    }
    if cfg.bench {
        return bench(&cfg);
    }
    if cfg.stdio {
        return serve_stdio(&cfg);
    }
    match &cfg.listen {
        Some(path) => serve_socket(path, &cfg),
        None => ExitCode::from(usage()),
    }
}
