//! `ompltc` — the clang-like driver for the omplt pipeline.
//!
//! ```text
//! ompltc [OPTIONS] <file.c>
//!   --analyze                run the static-analysis suite (legality + -Wrace)
//!                            and exit; non-zero exit on any finding
//!   --ast-dump               print the syntactic AST (clang -ast-dump style)
//!   --ast-dump-transformed   additionally show shadow (transformed) subtrees
//!   --backend=B              execution engine for --run: interp (default,
//!                            tree-walking oracle) | vm (bytecode VM)
//!   --counters-json[=FILE]   dump the pipeline's named counters as JSON
//!                            (stdout unless FILE is given)
//!   --diag-format=FMT        diagnostics output format: text (default) | json
//!   --emit-bytecode          print the VM bytecode disassembly
//!   --emit-ir                print generated IR
//!   --enable-irbuilder       use the OpenMPIRBuilder / OMPCanonicalLoop path
//!   --no-openmp              parse pragmas but ignore them
//!   --run [args...]          interpret the module (calls `main`)
//!   --opt                    run the mid-end pipeline (incl. LoopUnroll) first
//!   --syntax-only            stop after semantic analysis
//!   --threads N              thread-team size for `parallel` regions (default 4)
//!   --time-report            print a per-stage wall-time table to stderr,
//!                            like clang's `-ftime-report`
//!   --time-trace[=FILE]      emit a Chrome trace-event JSON profile of the
//!                            whole pipeline, like clang's `-ftime-trace`
//!                            (stdout unless FILE is given)
//!   --verify-each            re-verify IR (incl. canonical-loop skeletons)
//!                            after every transformation and mid-end pass
//! ```
//!
//! The three observability flags share one trace session: spans cover every
//! stage (lex, parse, sema per-directive, codegen, mid-end passes, verifier
//! re-checks, the interpreter run) and counters record what each stage did
//! (shadow-AST helper nodes built, chunks claimed per schedule kind per
//! thread, barrier waits, ...). Output is written after the pipeline exits,
//! even when it exits early on an error.

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use std::process::ExitCode;

fn emit_diags(ci: &CompilerInstance, json: bool) {
    if ci.diags.is_empty() {
        return;
    }
    if json {
        eprint!("{}", ci.render_diags_json());
    } else {
        eprint!("{}", ci.render_diags());
    }
}

/// Everything the pipeline needs, parsed out of `argv`.
struct Cli {
    opts: Options,
    file: String,
    analyze: bool,
    ast_dump: bool,
    ast_dump_transformed: bool,
    emit_ir: bool,
    emit_bytecode: bool,
    run: bool,
    optimize: bool,
    syntax_only: bool,
    json: bool,
    /// `--time-trace` destination: `Some(None)` = stdout, `Some(Some(f))` = file.
    time_trace: Option<Option<String>>,
    time_report: bool,
    /// `--counters-json` destination, same encoding as `time_trace`.
    counters_json: Option<Option<String>>,
}

fn usage() -> u8 {
    eprintln!(
        "usage: ompltc [--analyze] [--ast-dump] [--ast-dump-transformed] \
         [--backend=interp|vm] [--counters-json[=FILE]] \
         [--diag-format=text|json] [--emit-bytecode] [--emit-ir] \
         [--enable-irbuilder] [--opt] [--run] [--syntax-only] [--threads N] \
         [--time-report] [--time-trace[=FILE]] [--verify-each] <file.c>"
    );
    2
}

/// Diagnoses an unknown `--backend` value on stderr — as a JSON diagnostic
/// array when `--diag-format=json` is in effect (driver errors happen before
/// a `CompilerInstance` exists, so the array is rendered here in the same
/// shape `DiagnosticsEngine::render_json` produces) — and returns exit code 2.
fn bad_backend(value: &str, json: bool) -> u8 {
    let msg = format!("unknown backend '{value}' for '--backend': expected 'interp' or 'vm'");
    if json {
        let escaped: String = msg
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c => vec![c],
            })
            .collect();
        eprintln!("[{{\"level\":\"error\",\"message\":\"{escaped}\",\"file\":null,\"notes\":[]}}]");
    } else {
        eprintln!("ompltc: {msg}");
    }
    2
}

fn parse_cli(args: &[String]) -> Result<Cli, u8> {
    // Driver errors must honor `--diag-format=json` wherever it appears on
    // the command line, so resolve the format before the main scan.
    let json_diags = args
        .iter()
        .filter_map(|a| a.strip_prefix("--diag-format="))
        .next_back()
        == Some("json");
    let mut opts = Options::default();
    let mut file = None;
    let mut analyze = false;
    let mut ast_dump = false;
    let mut ast_dump_transformed = false;
    let mut emit_ir = false;
    let mut emit_bytecode = false;
    let mut run = false;
    let mut optimize = false;
    let mut syntax_only = false;
    let mut json = false;
    let mut time_trace = None;
    let mut time_report = false;
    let mut counters_json = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analyze" => analyze = true,
            "--ast-dump" => ast_dump = true,
            "--ast-dump-transformed" => ast_dump_transformed = true,
            "--counters-json" => counters_json = Some(None),
            "--emit-bytecode" => emit_bytecode = true,
            "--emit-ir" => emit_ir = true,
            "--enable-irbuilder" => opts.codegen_mode = OpenMpCodegenMode::IrBuilder,
            "--no-openmp" => opts.openmp = false,
            "--run" => run = true,
            "--opt" => optimize = true,
            "--syntax-only" => syntax_only = true,
            "--time-report" => time_report = true,
            "--time-trace" => time_trace = Some(None),
            "--verify-each" => opts.verify_each = true,
            "--backend" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--backend' requires a value");
                    return Err(2);
                };
                match omplt::Backend::parse(v) {
                    Some(b) => opts.backend = b,
                    None => return Err(bad_backend(v, json_diags)),
                }
            }
            "--threads" => {
                let Some(n) = it.next() else {
                    eprintln!("ompltc: '--threads' requires a value");
                    return Err(2);
                };
                match n.parse::<u32>() {
                    Ok(v) if v > 0 => opts.num_threads = v,
                    _ => {
                        eprintln!(
                            "ompltc: invalid value '{n}' for '--threads': \
                             expected a positive integer"
                        );
                        return Err(2);
                    }
                }
            }
            other if other.starts_with("--backend=") => {
                let v = &other["--backend=".len()..];
                match omplt::Backend::parse(v) {
                    Some(b) => opts.backend = b,
                    None => return Err(bad_backend(v, json_diags)),
                }
            }
            other if other.starts_with("--counters-json=") => {
                counters_json = Some(Some(other["--counters-json=".len()..].to_string()));
            }
            other if other.starts_with("--time-trace=") => {
                time_trace = Some(Some(other["--time-trace=".len()..].to_string()));
            }
            other if other.starts_with("--diag-format=") => {
                match &other["--diag-format=".len()..] {
                    "json" => json = true,
                    "text" => json = false,
                    fmt => {
                        eprintln!("ompltc: unknown diagnostics format '{fmt}' (text|json)");
                        return Err(2);
                    }
                }
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("ompltc: unknown option '{other}'");
                return Err(2);
            }
        }
    }
    let Some(file) = file else {
        return Err(usage());
    };
    Ok(Cli {
        opts,
        file,
        analyze,
        ast_dump,
        ast_dump_transformed,
        emit_ir,
        emit_bytecode,
        run,
        optimize,
        syntax_only,
        json,
        time_trace,
        time_report,
        counters_json,
    })
}

/// The pipeline proper. Factored out of `main` so every early `return` still
/// lands back in `main`, where the trace session is finished and flushed.
fn drive(cli: &Cli) -> u8 {
    let json = cli.json;
    let mut ci = CompilerInstance::new(cli.opts);
    let source = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ompltc: cannot read '{}': {e}", cli.file);
            return 1;
        }
    };
    let tu = match ci.parse_source(&cli.file, &source) {
        Ok(tu) => tu,
        Err(_) => {
            emit_diags(&ci, json);
            return 1;
        }
    };

    if cli.analyze {
        let report = ci.analyze(&tu);
        emit_diags(&ci, json);
        return u8::from(report.has_findings());
    }

    if cli.ast_dump || cli.ast_dump_transformed {
        print!(
            "{}",
            if cli.ast_dump_transformed {
                ci.ast_dump_transformed(&tu)
            } else {
                ci.ast_dump(&tu)
            }
        );
    }
    if cli.syntax_only {
        emit_diags(&ci, json);
        return 0;
    }

    let mut module = match ci.codegen(&tu) {
        Ok(m) => m,
        Err(rendered) => {
            if ci.diags.is_empty() {
                // Internal verifier failures are not diagnostics.
                eprint!("{rendered}");
            } else {
                emit_diags(&ci, json);
            }
            return 1;
        }
    };
    if cli.optimize {
        ci.optimize(&mut module);
        if ci.diags.has_errors() {
            emit_diags(&ci, json);
            return 1;
        }
    }
    if cli.emit_ir {
        print!("{}", omplt::ir::print_module(&module));
    }
    if cli.emit_bytecode {
        match ci.compile_bytecode(&module) {
            Ok(code) => {
                for f in &code.funcs {
                    print!("{}", omplt::vm::disasm(f));
                }
            }
            Err(e) => {
                eprintln!("ompltc: {e}");
                return 1;
            }
        }
    }
    if cli.run && ci.opts.runtime_schedule.is_none() {
        // Resolve OMP_SCHEDULE up front so a malformed value is diagnosed
        // where the user can see it, instead of being silently swallowed at
        // dispatch time.
        let env = std::env::var("OMP_SCHEDULE").ok();
        let (sched, warning) = omplt::interp::RuntimeSchedule::resolve(env.as_deref());
        if let Some(msg) = warning {
            ci.diags
                .warning(omplt::source::SourceLocation::INVALID, msg);
        }
        ci.opts.runtime_schedule = Some(sched);
    }
    emit_diags(&ci, json);
    if cli.run {
        match ci.run(&module) {
            Ok(result) => {
                print!("{}", result.stdout);
                return result.exit_code as u8;
            }
            Err(e) => {
                eprintln!("ompltc: runtime error: {e}");
                return 1;
            }
        }
    }
    0
}

/// Writes `content` to `dest` (`None` = stdout). Returns false on I/O error.
fn write_output(dest: &Option<String>, content: &str, what: &str) -> bool {
    match dest {
        None => {
            print!("{content}");
            true
        }
        Some(path) => match std::fs::write(path, content) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("ompltc: cannot write {what} to '{path}': {e}");
                false
            }
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(code) => return ExitCode::from(code),
    };

    let tracing = cli.time_trace.is_some() || cli.time_report || cli.counters_json.is_some();
    let session = tracing.then(omplt::trace::Session::begin);
    let mut code = {
        // The root span; everything the pipeline does nests under it. Scoped
        // so it is closed before the session is finished below.
        let _root = omplt::trace::span("ompltc");
        drive(&cli)
    };
    if let Some(session) = session {
        let data = session.finish();
        if let Some(dest) = &cli.time_trace {
            if !write_output(dest, &data.to_chrome_json(), "time trace") && code == 0 {
                code = 1;
            }
        }
        if let Some(dest) = &cli.counters_json {
            if !write_output(dest, &data.to_counters_json(), "counters") && code == 0 {
                code = 1;
            }
        }
        if cli.time_report {
            eprint!("{}", data.time_report());
        }
    }
    ExitCode::from(code)
}
