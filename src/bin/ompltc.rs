//! `ompltc` — the clang-like driver for the omplt pipeline.
//!
//! ```text
//! ompltc [OPTIONS] <file.c>
//!   --analyze                run the static-analysis suite (legality + -Wrace)
//!                            and exit; non-zero exit on any finding
//!   --ast-dump               print the syntactic AST (clang -ast-dump style)
//!   --ast-dump-transformed   additionally show shadow (transformed) subtrees
//!   --autotune[=N]           autotune the file's OpenMP directives: enumerate
//!                            mutated directive configurations, prune illegal
//!                            ones through the analysis suite, execute up to N
//!                            legal survivors (default 32), and print a ranked
//!                            report; exit 1 if no candidate survives
//!   --tune-best=FILE         write the winning annotated source to FILE
//!   --tune-cost=M            candidate cost model: ops (default; retired-op
//!                            count, deterministic) | time (wall micros)
//!   --tune-json[=FILE]       emit the ranked report as JSON (replaces the
//!                            text report when writing to stdout)
//!   --tune-seed=N            sample seeded-random mutants instead of walking
//!                            the deterministic grid (stress-test mode)
//!   --backend=B              execution engine for --run: interp (default,
//!                            tree-walking oracle) | vm (bytecode VM; falls
//!                            back to the interpreter with a warning if
//!                            bytecode compile/verify fails) | vm:strict
//!                            (VM with the fallback disabled)
//!   --counters-json[=FILE]   dump the pipeline's named counters as JSON
//!                            (stdout unless FILE is given)
//!   --crash-report=DIR       on an internal compiler error, write a crash
//!                            bundle (input source, pipeline stage, panic
//!                            backtrace, counters snapshot) into DIR
//!   --diag-format=FMT        diagnostics output format: text (default) | json
//!   --emit-bytecode          print the VM bytecode disassembly
//!   --emit-bytecode-bin=FILE serialize the compiled VM bytecode module to
//!                            FILE in the OMPLTBC container format
//!   --check-bytecode         treat <file> as an OMPLTBC container: decode it
//!                            and run the bytecode verifier; exit 0 if clean,
//!                            1 with diagnostics on any decode/verify finding
//!   --emit-ir                print generated IR
//!   --enable-irbuilder       use the OpenMPIRBuilder / OMPCanonicalLoop path
//!   --exec-timeout=MS        hard wall-clock deadline for the whole
//!                            invocation; on expiry the process exits 1 with
//!                            a diagnostic instead of hanging
//!   --fuel=N                 cooperative op budget shared by the interpreter
//!                            and the VM (exhaustion is a runtime error, not
//!                            a hang)
//!   --inject-fault=SITE[:N]  deterministic fault injection: force a failure
//!                            at a registered pipeline site on its N-th hit
//!                            (default 1); see `omplt-fault` for the catalog
//!   --no-openmp              parse pragmas but ignore them
//!   --run [args...]          interpret the module (calls `main`)
//!   --serial                 run `parallel` regions on the calling thread
//!                            (deterministic; equivalent to a team of one
//!                            executing every chunk in order)
//!   --opt                    run the mid-end pipeline (incl. LoopUnroll) first
//!   --syntax-only            stop after semantic analysis
//!   --threads N              thread-team size for `parallel` regions (default 4)
//!   --time-report            print a per-stage wall-time table to stderr,
//!                            like clang's `-ftime-report`
//!   --time-trace[=FILE]      emit a Chrome trace-event JSON profile of the
//!                            whole pipeline, like clang's `-ftime-trace`
//!                            (stdout unless FILE is given)
//!   --vector-width=N         widen `simd`-annotated loops to N lanes (2-8)
//!                            in the VM backend; 0 (default) stays scalar.
//!                            Illegal widenings are refused per loop, never
//!                            miscompiled
//!   --verify-each            re-verify IR (incl. canonical-loop skeletons)
//!                            after every transformation and mid-end pass
//! ```
//!
//! Exit codes: 0 success, 1 findings/compile errors/runtime failures,
//! 2 usage errors, 3 internal compiler error (ICE).
//!
//! The driver is a fault boundary: any internal panic is caught by a
//! `catch_unwind` wall around the pipeline and converted into a structured
//! "internal compiler error" diagnostic (honoring `--diag-format=json`) plus
//! an optional `--crash-report` bundle — a compile request can fail, but it
//! cannot take the process down with a raw panic or hang it (barrier
//! deadlocks are caught by the runtime watchdog, runaway loops by `--fuel`,
//! and everything else by `--exec-timeout`).
//!
//! The three observability flags share one trace session: spans cover every
//! stage (lex, parse, sema per-directive, codegen, mid-end passes, verifier
//! re-checks, the interpreter run) and counters record what each stage did
//! (shadow-AST helper nodes built, chunks claimed per schedule kind per
//! thread, barrier waits, ...). Output is written after the pipeline exits,
//! even when it exits early on an error or an ICE.

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use std::panic::AssertUnwindSafe;
use std::process::ExitCode;

fn emit_diags(ci: &CompilerInstance, json: bool) {
    if ci.diags.is_empty() {
        return;
    }
    if json {
        eprint!("{}", ci.render_diags_json());
    } else {
        eprint!("{}", ci.render_diags());
    }
}

/// Everything the pipeline needs, parsed out of `argv`.
struct Cli {
    opts: Options,
    file: String,
    analyze: bool,
    ast_dump: bool,
    ast_dump_transformed: bool,
    emit_ir: bool,
    emit_bytecode: bool,
    /// `--emit-bytecode-bin=FILE` — serialized OMPLTBC container destination.
    emit_bytecode_bin: Option<String>,
    /// `--check-bytecode` — decode + verify `file` as an OMPLTBC container.
    check_bytecode: bool,
    run: bool,
    optimize: bool,
    syntax_only: bool,
    json: bool,
    /// `--time-trace` destination: `Some(None)` = stdout, `Some(Some(f))` = file.
    time_trace: Option<Option<String>>,
    time_report: bool,
    /// `--counters-json` destination, same encoding as `time_trace`.
    counters_json: Option<Option<String>>,
    /// `--exec-timeout` wall-clock deadline in milliseconds.
    exec_timeout_ms: Option<u64>,
    /// `--crash-report` bundle directory.
    crash_report: Option<String>,
    /// `--remote=PATH` — ship the job to an `ompltd` socket instead of
    /// compiling in-process.
    remote: Option<String>,
    /// `--remote-retries=N` — transient daemon failures (connect refusal,
    /// mid-stream EOF, `Overloaded`) are retried up to N times.
    remote_retries: u32,
    /// `--remote-backoff-ms=MS` — base delay of the exponential backoff
    /// between retries.
    remote_backoff_ms: u64,
    /// `--inject-fault` spec, kept verbatim so `--remote` can forward it
    /// (it is also armed locally at parse time for the in-process path).
    inject_fault: Option<String>,
    /// `--autotune` evaluation budget (`None` = not tuning).
    autotune: Option<usize>,
    /// `--tune-json` destination, same encoding as `time_trace`.
    tune_json: Option<Option<String>>,
    /// `--tune-best` destination for the winning annotated source.
    tune_best: Option<String>,
    /// `--tune-seed` for random-sampling mode.
    tune_seed: Option<u64>,
    /// `--tune-cost` model.
    tune_cost: omplt::tune::CostModel,
}

fn usage() -> u8 {
    eprintln!(
        "usage: ompltc [--analyze] [--ast-dump] [--ast-dump-transformed] \
         [--autotune[=N]] [--backend=interp|vm|vm:strict] \
         [--counters-json[=FILE]] [--crash-report=DIR] \
         [--check-bytecode] \
         [--diag-format=text|json] [--emit-bytecode] [--emit-bytecode-bin=FILE] [--emit-ir] \
         [--enable-irbuilder] [--exec-timeout=MS] [--fuel=N] \
         [--inject-fault=SITE[:COUNT]] [--opt] [--remote=SOCKET] \
         [--remote-retries=N] [--remote-backoff-ms=MS] [--run] \
         [--serial] [--syntax-only] [--threads N] [--time-report] \
         [--time-trace[=FILE]] \
         [--tune-best=FILE] [--tune-cost=ops|time] [--tune-json[=FILE]] \
         [--tune-seed=N] [--vector-width=N] [--verify-each] <file.c>"
    );
    2
}

// Driver errors happen before/around a `CompilerInstance`, so their JSON
// rendering lives in `omplt::protocol` (shared with the daemon, which must
// produce byte-identical driver diagnostics) and is re-used here.
use omplt::protocol::json_diag_object;

/// Diagnoses a driver-level error on stderr — as a JSON diagnostic array
/// when `--diag-format=json` is in effect — and returns exit code 2.
fn driver_error(msg: &str, json: bool) -> u8 {
    if json {
        eprintln!("[{}]", json_diag_object("error", msg, &[]));
    } else {
        eprintln!("ompltc: {msg}");
    }
    2
}

fn parse_cli(args: &[String]) -> Result<Cli, u8> {
    // Driver errors must honor `--diag-format=json` wherever it appears on
    // the command line, so resolve the format before the main scan.
    let json_diags = args
        .iter()
        .filter_map(|a| a.strip_prefix("--diag-format="))
        .next_back()
        == Some("json");
    let mut opts = Options::default();
    let mut file = None;
    let mut analyze = false;
    let mut ast_dump = false;
    let mut ast_dump_transformed = false;
    let mut emit_ir = false;
    let mut emit_bytecode = false;
    let mut emit_bytecode_bin = None;
    let mut check_bytecode = false;
    let mut run = false;
    let mut optimize = false;
    let mut syntax_only = false;
    let mut json = false;
    let mut time_trace = None;
    let mut time_report = false;
    let mut counters_json = None;
    let mut exec_timeout_ms = None;
    let mut crash_report = None;
    let mut remote = None;
    let mut remote_retries: Option<u32> = None;
    let mut remote_backoff_ms: Option<u64> = None;
    let mut inject_fault: Option<String> = None;
    let mut autotune = None;
    let mut tune_json = None;
    let mut tune_best = None;
    let mut tune_seed = None;
    let mut tune_cost = None;

    let bad_backend = |v: &str| {
        driver_error(
            &format!(
                "unknown backend '{v}' for '--backend': expected 'interp', 'vm', or 'vm:strict'"
            ),
            json_diags,
        )
    };
    let set_fuel = |opts: &mut Options, v: &str| -> Result<(), u8> {
        match v.parse::<u64>() {
            Ok(n) => {
                opts.max_steps = n;
                Ok(())
            }
            Err(_) => Err(driver_error(
                &format!("invalid value '{v}' for '--fuel': expected a non-negative integer"),
                json_diags,
            )),
        }
    };
    let set_vector_width = |opts: &mut Options, v: &str| -> Result<(), u8> {
        match v.parse::<u8>() {
            Ok(n) if n == 0 || (2..=8).contains(&n) => {
                opts.vector_width = n;
                Ok(())
            }
            _ => Err(driver_error(
                &format!(
                    "invalid value '{v}' for '--vector-width': expected 0 (scalar) or a \
                     lane count between 2 and 8"
                ),
                json_diags,
            )),
        }
    };
    let set_timeout = |slot: &mut Option<u64>, v: &str| -> Result<(), u8> {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => {
                *slot = Some(n);
                Ok(())
            }
            _ => Err(driver_error(
                &format!(
                    "invalid value '{v}' for '--exec-timeout': expected a positive number of \
                     milliseconds"
                ),
                json_diags,
            )),
        }
    };
    let arm_fault = |spec: &str| -> Result<(), u8> {
        omplt::fault::arm(spec).map_err(|msg| driver_error(&msg, json_diags))
    };

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analyze" => analyze = true,
            "--ast-dump" => ast_dump = true,
            "--autotune" => autotune = Some(omplt::tuner::DEFAULT_BUDGET),
            "--tune-json" => tune_json = Some(None),
            "--ast-dump-transformed" => ast_dump_transformed = true,
            "--counters-json" => counters_json = Some(None),
            "--emit-bytecode" => emit_bytecode = true,
            "--check-bytecode" => check_bytecode = true,
            "--emit-ir" => emit_ir = true,
            "--enable-irbuilder" => opts.codegen_mode = OpenMpCodegenMode::IrBuilder,
            "--no-openmp" => opts.openmp = false,
            "--run" => run = true,
            "--serial" => opts.serial = true,
            "--opt" => optimize = true,
            "--syntax-only" => syntax_only = true,
            "--time-report" => time_report = true,
            "--time-trace" => time_trace = Some(None),
            "--verify-each" => opts.verify_each = true,
            "--backend" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--backend' requires a value");
                    return Err(2);
                };
                match omplt::Backend::parse(v) {
                    Some(b) => opts.backend = b,
                    None => return Err(bad_backend(v)),
                }
            }
            "--vector-width" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--vector-width' requires a value");
                    return Err(2);
                };
                set_vector_width(&mut opts, v)?;
            }
            "--threads" => {
                let Some(n) = it.next() else {
                    eprintln!("ompltc: '--threads' requires a value");
                    return Err(2);
                };
                match n.parse::<u32>() {
                    Ok(v) if v > 0 => opts.num_threads = v,
                    _ => {
                        eprintln!(
                            "ompltc: invalid value '{n}' for '--threads': \
                             expected a positive integer"
                        );
                        return Err(2);
                    }
                }
            }
            "--fuel" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--fuel' requires a value");
                    return Err(2);
                };
                set_fuel(&mut opts, v)?;
            }
            "--exec-timeout" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--exec-timeout' requires a value");
                    return Err(2);
                };
                set_timeout(&mut exec_timeout_ms, v)?;
            }
            "--inject-fault" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--inject-fault' requires a value");
                    return Err(2);
                };
                arm_fault(v)?;
                inject_fault = Some(v.to_string());
            }
            "--crash-report" => {
                let Some(v) = it.next() else {
                    eprintln!("ompltc: '--crash-report' requires a value");
                    return Err(2);
                };
                crash_report = Some(v.to_string());
            }
            other if other.starts_with("--backend=") => {
                let v = &other["--backend=".len()..];
                match omplt::Backend::parse(v) {
                    Some(b) => opts.backend = b,
                    None => return Err(bad_backend(v)),
                }
            }
            other if other.starts_with("--fuel=") => {
                set_fuel(&mut opts, &other["--fuel=".len()..])?;
            }
            other if other.starts_with("--vector-width=") => {
                set_vector_width(&mut opts, &other["--vector-width=".len()..])?;
            }
            other if other.starts_with("--exec-timeout=") => {
                set_timeout(&mut exec_timeout_ms, &other["--exec-timeout=".len()..])?;
            }
            other if other.starts_with("--inject-fault=") => {
                let v = &other["--inject-fault=".len()..];
                arm_fault(v)?;
                inject_fault = Some(v.to_string());
            }
            other if other.starts_with("--crash-report=") => {
                crash_report = Some(other["--crash-report=".len()..].to_string());
            }
            other if other.starts_with("--remote=") => {
                remote = Some(other["--remote=".len()..].to_string());
            }
            other if other.starts_with("--remote-retries=") => {
                let v = &other["--remote-retries=".len()..];
                match v.parse::<u32>() {
                    Ok(n) => remote_retries = Some(n),
                    Err(_) => {
                        return Err(driver_error(
                            &format!(
                                "invalid value '{v}' for '--remote-retries': expected a \
                                 non-negative retry count"
                            ),
                            json_diags,
                        ))
                    }
                }
            }
            other if other.starts_with("--remote-backoff-ms=") => {
                let v = &other["--remote-backoff-ms=".len()..];
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => remote_backoff_ms = Some(n),
                    _ => {
                        return Err(driver_error(
                            &format!(
                                "invalid value '{v}' for '--remote-backoff-ms': expected a \
                                 positive number of milliseconds"
                            ),
                            json_diags,
                        ))
                    }
                }
            }
            other if other.starts_with("--autotune=") => {
                let v = &other["--autotune=".len()..];
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => autotune = Some(n),
                    _ => {
                        return Err(driver_error(
                            &format!(
                                "invalid value '{v}' for '--autotune': expected a positive \
                                 candidate budget"
                            ),
                            json_diags,
                        ))
                    }
                }
            }
            other if other.starts_with("--tune-json=") => {
                tune_json = Some(Some(other["--tune-json=".len()..].to_string()));
            }
            other if other.starts_with("--tune-best=") => {
                tune_best = Some(other["--tune-best=".len()..].to_string());
            }
            other if other.starts_with("--tune-seed=") => {
                let v = &other["--tune-seed=".len()..];
                match v.parse::<u64>() {
                    Ok(n) => tune_seed = Some(n),
                    Err(_) => {
                        return Err(driver_error(
                            &format!(
                                "invalid value '{v}' for '--tune-seed': expected a 64-bit \
                                 unsigned integer"
                            ),
                            json_diags,
                        ))
                    }
                }
            }
            other if other.starts_with("--tune-cost=") => {
                let v = &other["--tune-cost=".len()..];
                match omplt::tune::CostModel::parse(v) {
                    Some(m) => tune_cost = Some(m),
                    None => {
                        return Err(driver_error(
                            &format!("unknown cost model '{v}' for '--tune-cost': ops|time"),
                            json_diags,
                        ))
                    }
                }
            }
            other if other.starts_with("--emit-bytecode-bin=") => {
                emit_bytecode_bin = Some(other["--emit-bytecode-bin=".len()..].to_string());
            }
            other if other.starts_with("--counters-json=") => {
                counters_json = Some(Some(other["--counters-json=".len()..].to_string()));
            }
            other if other.starts_with("--time-trace=") => {
                time_trace = Some(Some(other["--time-trace=".len()..].to_string()));
            }
            other if other.starts_with("--diag-format=") => {
                match &other["--diag-format=".len()..] {
                    "json" => json = true,
                    "text" => json = false,
                    fmt => {
                        eprintln!("ompltc: unknown diagnostics format '{fmt}' (text|json)");
                        return Err(2);
                    }
                }
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("ompltc: unknown option '{other}'");
                return Err(2);
            }
        }
    }
    let Some(file) = file else {
        return Err(usage());
    };
    if remote.is_none() && (remote_retries.is_some() || remote_backoff_ms.is_some()) {
        return Err(driver_error(
            "'--remote-retries' and '--remote-backoff-ms' require '--remote'",
            json_diags,
        ));
    }
    if autotune.is_none()
        && (tune_json.is_some()
            || tune_best.is_some()
            || tune_seed.is_some()
            || tune_cost.is_some())
    {
        return Err(driver_error(
            "'--tune-json', '--tune-best', '--tune-seed', and '--tune-cost' require '--autotune'",
            json_diags,
        ));
    }
    if autotune.is_some()
        && (analyze
            || ast_dump
            || ast_dump_transformed
            || emit_ir
            || emit_bytecode
            || run
            || syntax_only)
    {
        return Err(driver_error(
            "'--autotune' is a driver mode of its own and cannot be combined with '--analyze', \
             '--ast-dump[-transformed]', '--emit-ir', '--emit-bytecode', '--run', or \
             '--syntax-only'",
            json_diags,
        ));
    }
    Ok(Cli {
        opts,
        file,
        analyze,
        ast_dump,
        ast_dump_transformed,
        emit_ir,
        emit_bytecode,
        emit_bytecode_bin,
        check_bytecode,
        run,
        optimize,
        syntax_only,
        json,
        time_trace,
        time_report,
        counters_json,
        exec_timeout_ms,
        crash_report,
        remote,
        remote_retries: remote_retries.unwrap_or(3),
        remote_backoff_ms: remote_backoff_ms.unwrap_or(50),
        inject_fault,
        autotune,
        tune_json,
        tune_best,
        tune_seed,
        tune_cost: tune_cost.unwrap_or_default(),
    })
}

/// The pipeline proper. Factored out of `main` so every early `return` still
/// lands back in `main`, where the trace session is finished and flushed —
/// and so `main`'s `catch_unwind` wall encloses the whole pipeline.
fn drive(cli: &Cli) -> u8 {
    let json = cli.json;
    if cli.check_bytecode {
        return drive_check_bytecode(cli);
    }
    let mut ci = CompilerInstance::new(cli.opts);
    let source = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            return driver_error(&format!("cannot read '{}': {e}", cli.file), json);
        }
    };
    if cli.autotune.is_some() {
        return drive_autotune(cli, &source);
    }
    let tu = match ci.parse_source(&cli.file, &source) {
        Ok(tu) => tu,
        Err(_) => {
            emit_diags(&ci, json);
            return 1;
        }
    };

    if cli.analyze {
        let report = ci.analyze(&tu);
        emit_diags(&ci, json);
        return u8::from(report.has_findings());
    }

    if cli.ast_dump || cli.ast_dump_transformed {
        print!(
            "{}",
            if cli.ast_dump_transformed {
                ci.ast_dump_transformed(&tu)
            } else {
                ci.ast_dump(&tu)
            }
        );
    }
    if cli.syntax_only {
        emit_diags(&ci, json);
        return 0;
    }

    let mut module = match ci.codegen(&tu) {
        Ok(m) => m,
        Err(rendered) => {
            if ci.diags.is_empty() {
                // Internal verifier failures are not diagnostics.
                eprint!("{rendered}");
            } else {
                emit_diags(&ci, json);
            }
            return 1;
        }
    };
    if cli.optimize {
        ci.optimize(&mut module);
        if ci.diags.has_errors() {
            emit_diags(&ci, json);
            return 1;
        }
    }
    if cli.emit_ir {
        print!("{}", omplt::ir::print_module(&module));
    }
    if cli.emit_bytecode || cli.emit_bytecode_bin.is_some() {
        match ci.compile_bytecode(&module) {
            Ok(code) => {
                if cli.emit_bytecode {
                    for f in &code.funcs {
                        print!("{}", omplt::vm::disasm(f));
                    }
                }
                if let Some(path) = &cli.emit_bytecode_bin {
                    if let Err(e) = std::fs::write(path, omplt::vm::encode(&code)) {
                        return driver_error(&format!("cannot write '{path}': {e}"), json);
                    }
                }
            }
            Err(e) => {
                eprintln!("ompltc: {e}");
                return 1;
            }
        }
    }
    if cli.run && ci.opts.runtime_schedule.is_none() {
        // Resolve OMP_SCHEDULE up front so a malformed value is diagnosed
        // where the user can see it, instead of being silently swallowed at
        // dispatch time.
        let env = std::env::var("OMP_SCHEDULE").ok();
        let (sched, warning) = omplt::interp::RuntimeSchedule::resolve(env.as_deref());
        if let Some(msg) = warning {
            ci.diags
                .warning(omplt::source::SourceLocation::INVALID, msg);
        }
        ci.opts.runtime_schedule = Some(sched);
    }
    if cli.run {
        // Diagnostics are emitted after the run so warnings produced during
        // it (e.g. the vm→interp fallback notice) are included; stdout is
        // buffered in the result, so the user still sees them first.
        let outcome = ci.run(&module);
        emit_diags(&ci, json);
        return match outcome {
            Ok(result) => {
                print!("{}", result.stdout);
                result.exit_code as u8
            }
            Err(e) => {
                if json {
                    eprintln!(
                        "[{}]",
                        json_diag_object("error", &format!("runtime error: {e}"), &[])
                    );
                } else {
                    eprintln!("ompltc: runtime error: {e}");
                }
                1
            }
        };
    }
    emit_diags(&ci, json);
    0
}

/// The `--autotune` driver mode: search the directive-configuration space
/// and report. Exit codes: 0 a ranked report with a surviving winner was
/// produced, 1 the baseline failed / nothing survived / report I/O failed,
/// 2 usage (handled in `parse_cli`). Per-candidate ICEs are contained by
/// the tuner itself; only a panic outside candidate evaluation reaches the
/// driver's ICE boundary.
fn drive_autotune(cli: &Cli, source: &str) -> u8 {
    let json = cli.json;
    let cfg = omplt::tuner::TuneConfig {
        budget: cli.autotune.expect("drive_autotune called with --autotune"),
        seed: cli.tune_seed,
        cost: cli.tune_cost,
        opts: cli.opts,
        enum_config: omplt::tune::EnumConfig::default(),
    };
    let outcome = match omplt::tuner::autotune(&cli.file, source, &cfg) {
        Ok(o) => o,
        Err(e) => {
            if json {
                eprintln!("[{}]", json_diag_object("error", &e.to_string(), &[]));
            } else {
                eprintln!("ompltc: error: {e}");
            }
            return 1;
        }
    };
    let mut code = 0;
    match &cli.tune_json {
        // Bare `--tune-json` claims stdout: machine output replaces the
        // human-readable table entirely.
        Some(None) => print!("{}", outcome.report.to_json()),
        Some(Some(path)) => {
            if !write_output(
                &Some(path.clone()),
                &outcome.report.to_json(),
                "tune report",
            ) {
                code = 1;
            }
            print!("{}", outcome.report.render_text());
        }
        None => print!("{}", outcome.report.render_text()),
    }
    if let Some(path) = &cli.tune_best {
        match &outcome.best_source {
            Some(src) => {
                if !write_output(&Some(path.clone()), src, "winning source") {
                    code = 1;
                }
            }
            None => {
                eprintln!("ompltc: no winning source to write to '{path}': no candidate survived");
            }
        }
    }
    if outcome.report.winner().is_none() {
        let msg = "autotune found no surviving candidate (all pruned, failed, or diverged)";
        if json {
            eprintln!("[{}]", json_diag_object("error", msg, &[]));
        } else {
            eprintln!("ompltc: error: {msg}");
        }
        code = 1;
    }
    code
}

// Panic capture lives in `omplt::fault` now: the hook records (message,
// backtrace) keyed by the panicking *thread*, so a daemon running jobs on a
// worker pool reports each job's own panic instead of whichever panicked
// last. This driver consumes the same per-thread API.

/// Writes the `--crash-report` bundle: the input source, a report naming the
/// pipeline stage and panic with its backtrace, and a counters snapshot.
fn write_crash_report(
    dir: &str,
    cli: &Cli,
    stage: &str,
    msg: &str,
    backtrace: &str,
    data: Option<&omplt::trace::TraceData>,
) -> std::io::Result<()> {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)?;
    if let Ok(src) = std::fs::read_to_string(&cli.file) {
        std::fs::write(dir.join("input.c"), src)?;
    }
    let argv: Vec<String> = std::env::args().collect();
    std::fs::write(
        dir.join("report.txt"),
        format!(
            "ompltc crash report\n\
             ===================\n\
             argv: {argv:?}\n\
             input: {}\n\
             stage: {stage}\n\
             panic: {msg}\n\
             \n\
             backtrace:\n{backtrace}\n",
            cli.file
        ),
    )?;
    if let Some(data) = data {
        std::fs::write(dir.join("counters.json"), data.to_counters_json())?;
    }
    Ok(())
}

/// The ICE boundary's reporter for in-process panics: fetches this thread's
/// captured panic and delegates to [`report_ice_as`].
fn report_ice(cli: &Cli, data: Option<&omplt::trace::TraceData>) -> u8 {
    let stage = omplt::fault::current_stage();
    let (msg, backtrace) = omplt::fault::take_panic()
        .unwrap_or_else(|| ("<panic details unavailable>".to_string(), String::new()));
    report_ice_as(cli, data, stage, &msg, &backtrace)
}

/// Renders the structured "internal compiler error" diagnostic (text or
/// JSON), writes the optional crash bundle, and returns exit code 3. Also
/// the rendering path for ICEs a daemon contained on our behalf — the
/// stage/message/backtrace then arrive in the job reply, and the output
/// bytes match an in-process ICE exactly.
fn report_ice_as(
    cli: &Cli,
    data: Option<&omplt::trace::TraceData>,
    stage: &str,
    msg: &str,
    backtrace: &str,
) -> u8 {
    let headline = format!("internal compiler error in stage '{stage}': {msg}");
    let mut notes = vec![
        "this is a bug in ompltc, not in your source file".to_string(),
        "the request was contained: the process is exiting cleanly with code 3".to_string(),
    ];
    if let Some(dir) = &cli.crash_report {
        match write_crash_report(dir, cli, stage, msg, backtrace, data) {
            Ok(()) => notes.push(format!("crash report written to '{dir}'")),
            Err(e) => notes.push(format!("failed to write crash report to '{dir}': {e}")),
        }
    }
    if cli.json {
        eprintln!("[{}]", json_diag_object("error", &headline, &notes));
    } else {
        eprintln!("ompltc: {headline}");
        for n in &notes {
            eprintln!("ompltc: note: {n}");
        }
    }
    3
}

/// Writes `content` to `dest` (`None` = stdout). Returns false on I/O error.
fn write_output(dest: &Option<String>, content: &str, what: &str) -> bool {
    match dest {
        None => {
            print!("{content}");
            true
        }
        Some(path) => match std::fs::write(path, content) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("ompltc: cannot write {what} to '{path}': {e}");
                false
            }
        },
    }
}

/// The `--check-bytecode` mode: the positional file is an OMPLTBC container
/// (as written by `--emit-bytecode-bin`), not C source. Decode it and run
/// the bytecode verifier over every function. Exit 0 when the container is
/// well-formed and verifies; 1 with a diagnostic per finding otherwise. The
/// decoder and verifier are total over arbitrary bytes — corrupt input is a
/// *finding*, never a panic — which is what the serde leg of the smoke fuzz
/// leans on.
fn drive_check_bytecode(cli: &Cli) -> u8 {
    let json = cli.json;
    let bytes = match std::fs::read(&cli.file) {
        Ok(b) => b,
        Err(e) => {
            return driver_error(&format!("cannot read '{}': {e}", cli.file), json);
        }
    };
    let module = match omplt::vm::decode(&bytes) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("ompltc: {}: bytecode decode error: {e}", cli.file);
            return 1;
        }
    };
    let errors = omplt::vm::verify_module(&module);
    for e in &errors {
        eprintln!("ompltc: {}: bytecode verify error: {e}", cli.file);
    }
    u8::from(!errors.is_empty())
}

/// One shot at delivering the job. `Done` carries the final exit code;
/// `Retry` carries the failure wording (surfaced verbatim if retries run
/// out) and an optional server-suggested wait.
enum Attempt {
    Done(u8),
    Retry { err: String, wait_ms: Option<u64> },
}

/// How long an injected `daemon.frame-stall` holds the body back. Longer
/// than the frame timeouts the tests and the chaos harness configure, so
/// the daemon reliably classifies the stall as a slowloris.
const FRAME_STALL_MS: u64 = 750;

/// Connect, send, and read one reply. Every transient failure — connect
/// refusal, mid-stream EOF, an `Overloaded` shed — comes back as
/// `Attempt::Retry`; only a parsed `JobResponse` (or a malformed reply from
/// a healthy exchange, which retrying would not fix) is `Done`.
fn remote_attempt(cli: &Cli, path: &str, payload: &str) -> Attempt {
    use omplt::protocol::{read_frame, write_frame, Reply};
    let json = cli.json;
    let retry = |err: String| Attempt::Retry { err, wait_ms: None };
    let mut stream = match std::os::unix::net::UnixStream::connect(path) {
        Ok(s) => s,
        Err(e) => return retry(format!("cannot connect to ompltd at '{path}': {e}")),
    };
    // Client-side chaos: write the length prefix, then stall past the
    // daemon's frame timeout before the body follows. The daemon answers
    // with a mid-frame timeout error and closes; that reply is retryable
    // only because we caused it ourselves.
    let stalled = omplt::fault::fire("daemon.frame-stall");
    let sent = if stalled {
        let body = payload.as_bytes();
        let prefix = (body.len() as u32).to_le_bytes();
        std::io::Write::write_all(&mut stream, &prefix)
            .and_then(|()| std::io::Write::flush(&mut stream))
            .map(|()| {
                std::thread::sleep(std::time::Duration::from_millis(FRAME_STALL_MS));
            })
            .and_then(|()| std::io::Write::write_all(&mut stream, body))
    } else {
        write_frame(&mut stream, payload.as_bytes())
    };
    // A stalled write may fail with EPIPE once the daemon has already shed
    // the connection; that is still the injected stall, so still retryable.
    if let Err(e) = sent {
        return retry(format!("cannot send job to ompltd: {e}"));
    }
    let body = match read_frame(&mut stream) {
        Ok(Some(b)) => b,
        Ok(None) => return retry("ompltd closed the connection without replying".to_string()),
        Err(e) => return retry(format!("cannot read ompltd reply: {e}")),
    };
    let text = String::from_utf8_lossy(&body);
    let resp = match Reply::parse(&text) {
        Ok(Reply::Job(r)) => r,
        Ok(Reply::Overloaded(o)) => {
            return Attempt::Retry {
                err: format!(
                    "ompltd is overloaded (queue depth {}, retry after {} ms)",
                    o.queue_depth, o.retry_after_ms
                ),
                wait_ms: Some(o.retry_after_ms),
            }
        }
        Err(e) if stalled => {
            // The daemon's "frame read timed out" error reply — earned by
            // the injected stall above, so try again without it.
            return retry(format!("invalid ompltd reply: {e}"));
        }
        Err(e) => return Attempt::Done(driver_error(&format!("invalid ompltd reply: {e}"), json)),
    };
    print!("{}", resp.stdout);
    eprint!("{}", resp.stderr);
    let mut code = resp.exit_code;
    if let Some(ice) = &resp.ice {
        code = report_ice_as(cli, None, &ice.stage, &ice.message, &ice.backtrace);
    }
    if let Some(dest) = &cli.counters_json {
        let doc = resp.counters_json.clone().unwrap_or_default();
        if !write_output(dest, &doc, "counters") && code == 0 {
            code = 1;
        }
    }
    Attempt::Done(code)
}

/// The `--remote` client: ship the job to an `ompltd` socket and replay the
/// reply so the invocation is byte-identical to an in-process run — same
/// stdout, same stderr (diagnostics pre-rendered by the server in the
/// requested format), same exit code, and the same locally rendered ICE
/// report (with `--crash-report` bundle) if the daemon contained a panic.
///
/// Transient failures (connect refusal, mid-stream EOF, `Overloaded`) are
/// retried up to `--remote-retries` times with bounded exponential backoff
/// (`--remote-backoff-ms` base, deterministic jitter); only the final
/// successful reply is replayed, so a retried job's output is byte-identical
/// to a first-try success. The original error wording surfaces unchanged
/// once retries are exhausted.
fn drive_remote(cli: &Cli, path: &str) -> u8 {
    use omplt::protocol::JobRequest;
    let json = cli.json;
    if cli.analyze
        || cli.ast_dump
        || cli.ast_dump_transformed
        || cli.emit_bytecode
        || cli.autotune.is_some()
        || cli.time_trace.is_some()
        || cli.time_report
    {
        return driver_error(
            "'--remote' ships compile/run jobs only and cannot be combined with '--analyze', \
             '--ast-dump[-transformed]', '--emit-bytecode', '--autotune', '--time-trace', or \
             '--time-report'",
            json,
        );
    }
    let source = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            return driver_error(&format!("cannot read '{}': {e}", cli.file), json);
        }
    };
    let mut job = JobRequest::new(1, &cli.file, &source);
    job.opts = cli.opts;
    job.optimize = cli.optimize;
    job.run = cli.run;
    job.syntax_only = cli.syntax_only;
    job.emit_ir = cli.emit_ir;
    job.json_diags = json;
    job.want_counters = cli.counters_json.is_some();
    job.inject_fault = cli.inject_fault.clone();
    // The CLI watchdog cannot kill a job inside the daemon, so the deadline
    // travels with the job and is enforced at the engines' fuel-refill
    // points instead.
    job.opts.deadline_ms = cli.exec_timeout_ms;
    if cli.run && job.opts.runtime_schedule.is_none() {
        // `OMP_SCHEDULE` is resolved exactly once, here, in the client's
        // environment. The daemon never reads environment variables — its
        // tenants would otherwise see each other's (or the daemon's) env.
        let env = std::env::var("OMP_SCHEDULE").ok();
        let (sched, warning) = omplt::interp::RuntimeSchedule::resolve(env.as_deref());
        job.opts.runtime_schedule = Some(sched);
        job.schedule_warning = warning;
    }
    let payload = job.render();
    let mut last_err = String::new();
    // A server-suggested wait (from an `Overloaded` shed) replaces the next
    // exponential step when present.
    let mut wait_hint: Option<u64> = None;
    for attempt in 0..=cli.remote_retries {
        if attempt > 0 {
            let wait = match wait_hint.take() {
                Some(ms) => ms.min(2000),
                None => backoff_ms(cli.remote_backoff_ms, attempt, &cli.file),
            };
            std::thread::sleep(std::time::Duration::from_millis(wait));
        }
        match remote_attempt(cli, path, &payload) {
            Attempt::Done(code) => return code,
            Attempt::Retry { err, wait_ms } => {
                last_err = err;
                wait_hint = wait_ms;
            }
        }
    }
    driver_error(&last_err, json)
}

/// Delay before retry `attempt` (1-based): exponential in the base, plus a
/// deterministic jitter derived from the file name so concurrent clients
/// compiling different files desynchronize, capped at two seconds. No RNG —
/// retry timing must be reproducible under test.
fn backoff_ms(base: u64, attempt: u32, seed: &str) -> u64 {
    let expo = base.saturating_mul(1 << (attempt - 1).min(6));
    let hash = seed.bytes().fold(attempt as u64, |h, b| {
        h.wrapping_mul(31).wrapping_add(b as u64)
    });
    (expo + hash % base.max(1)).min(2000)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(code) => return ExitCode::from(code),
    };
    omplt::fault::install_panic_capture();

    if let Some(ms) = cli.exec_timeout_ms {
        // Detached wall-clock watchdog: if the pipeline (or the program it
        // runs) outlives the deadline, terminate with a diagnostic instead
        // of hanging whatever invoked us. Normal completion simply exits
        // first and takes this thread with it.
        let json = cli.json;
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            let msg = format!("wall-clock deadline of {ms} ms exceeded ('--exec-timeout')");
            if json {
                eprintln!("[{}]", json_diag_object("error", &msg, &[]));
            } else {
                eprintln!("ompltc: error: {msg}");
            }
            std::process::exit(1);
        });
    }

    if let Some(path) = &cli.remote {
        // Remote jobs run (and are traced, contained, and cached) inside the
        // daemon; the client just replays the reply. The watchdog above
        // still guards against a hung daemon.
        return ExitCode::from(drive_remote(&cli, path));
    }

    // `--crash-report` forces a trace session so the bundle always carries a
    // counters snapshot of how far the pipeline got.
    let tracing = cli.time_trace.is_some()
        || cli.time_report
        || cli.counters_json.is_some()
        || cli.crash_report.is_some();
    let session = tracing.then(omplt::trace::Session::begin);
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        // Suppress default panic spew inside the ICE boundary; the captured
        // panic is rendered as a structured diagnostic instead.
        let _contain = omplt::fault::contain_panics();
        // The root span; everything the pipeline does nests under it. Scoped
        // so it is closed before the session is finished below.
        let _root = omplt::trace::span("ompltc");
        drive(&cli)
    }));
    if outcome.is_err() {
        omplt::trace::count("ice", 1);
    }
    let data = session.map(omplt::trace::Session::finish);
    let mut code = match outcome {
        Ok(code) => code,
        Err(_) => report_ice(&cli, data.as_ref()),
    };
    if let Some(data) = &data {
        if let Some(dest) = &cli.time_trace {
            if !write_output(dest, &data.to_chrome_json(), "time trace") && code == 0 {
                code = 1;
            }
        }
        if let Some(dest) = &cli.counters_json {
            if !write_output(dest, &data.to_counters_json(), "counters") && code == 0 {
                code = 1;
            }
        }
        if cli.time_report {
            eprint!("{}", data.time_report());
        }
    }
    ExitCode::from(code)
}
