//! `ompltc` — the clang-like driver for the omplt pipeline.
//!
//! ```text
//! ompltc [OPTIONS] <file.c>
//!   --ast-dump               print the syntactic AST (clang -ast-dump style)
//!   --ast-dump-transformed   additionally show shadow (transformed) subtrees
//!   --emit-ir                print generated IR
//!   --enable-irbuilder       use the OpenMPIRBuilder / OMPCanonicalLoop path
//!   --no-openmp              parse pragmas but ignore them
//!   --run [args...]          interpret the module (calls `main`)
//!   --opt                    run the mid-end pipeline (incl. LoopUnroll) first
//!   --syntax-only            stop after semantic analysis
//!   --threads N              thread-team size for `parallel` regions (default 4)
//! ```

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut file = None;
    let mut ast_dump = false;
    let mut ast_dump_transformed = false;
    let mut emit_ir = false;
    let mut run = false;
    let mut optimize = false;
    let mut syntax_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ast-dump" => ast_dump = true,
            "--ast-dump-transformed" => ast_dump_transformed = true,
            "--emit-ir" => emit_ir = true,
            "--enable-irbuilder" => opts.codegen_mode = OpenMpCodegenMode::IrBuilder,
            "--no-openmp" => opts.openmp = false,
            "--run" => run = true,
            "--opt" => optimize = true,
            "--syntax-only" => syntax_only = true,
            "--threads" => {
                let n = it.next().expect("--threads needs a value");
                opts.num_threads = n.parse().expect("--threads needs an integer");
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("ompltc: unknown option '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: ompltc [--ast-dump] [--ast-dump-transformed] [--emit-ir] [--enable-irbuilder] [--opt] [--run] [--threads N] <file.c>");
        return ExitCode::from(2);
    };

    let mut ci = CompilerInstance::new(opts);
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ompltc: cannot read '{file}': {e}");
            return ExitCode::from(1);
        }
    };
    let tu = match ci.parse_source(&file, &source) {
        Ok(tu) => tu,
        Err(diags) => {
            eprint!("{diags}");
            return ExitCode::from(1);
        }
    };

    if ast_dump || ast_dump_transformed {
        print!("{}", if ast_dump_transformed { ci.ast_dump_transformed(&tu) } else { ci.ast_dump(&tu) });
    }
    if syntax_only {
        return ExitCode::SUCCESS;
    }

    let mut module = match ci.codegen(&tu) {
        Ok(m) => m,
        Err(diags) => {
            eprint!("{diags}");
            return ExitCode::from(1);
        }
    };
    if optimize {
        ci.optimize(&mut module);
    }
    if emit_ir {
        print!("{}", omplt::ir::print_module(&module));
    }
    if run {
        match ci.run(&module) {
            Ok(result) => {
                print!("{}", result.stdout);
                return ExitCode::from(result.exit_code as u8);
            }
            Err(e) => {
                eprintln!("ompltc: runtime error: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
