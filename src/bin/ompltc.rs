//! `ompltc` — the clang-like driver for the omplt pipeline.
//!
//! ```text
//! ompltc [OPTIONS] <file.c>
//!   --analyze                run the static-analysis suite (legality + -Wrace)
//!                            and exit; non-zero exit on any finding
//!   --ast-dump               print the syntactic AST (clang -ast-dump style)
//!   --ast-dump-transformed   additionally show shadow (transformed) subtrees
//!   --diag-format=FMT        diagnostics output format: text (default) | json
//!   --emit-ir                print generated IR
//!   --enable-irbuilder       use the OpenMPIRBuilder / OMPCanonicalLoop path
//!   --no-openmp              parse pragmas but ignore them
//!   --run [args...]          interpret the module (calls `main`)
//!   --opt                    run the mid-end pipeline (incl. LoopUnroll) first
//!   --syntax-only            stop after semantic analysis
//!   --threads N              thread-team size for `parallel` regions (default 4)
//!   --verify-each            re-verify IR (incl. canonical-loop skeletons)
//!                            after every transformation and mid-end pass
//! ```

use omplt::{CompilerInstance, OpenMpCodegenMode, Options};
use std::process::ExitCode;

fn emit_diags(ci: &CompilerInstance, json: bool) {
    if ci.diags.is_empty() {
        return;
    }
    if json {
        eprint!("{}", ci.render_diags_json());
    } else {
        eprint!("{}", ci.render_diags());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::default();
    let mut file = None;
    let mut analyze = false;
    let mut ast_dump = false;
    let mut ast_dump_transformed = false;
    let mut emit_ir = false;
    let mut run = false;
    let mut optimize = false;
    let mut syntax_only = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analyze" => analyze = true,
            "--ast-dump" => ast_dump = true,
            "--ast-dump-transformed" => ast_dump_transformed = true,
            "--emit-ir" => emit_ir = true,
            "--enable-irbuilder" => opts.codegen_mode = OpenMpCodegenMode::IrBuilder,
            "--no-openmp" => opts.openmp = false,
            "--run" => run = true,
            "--opt" => optimize = true,
            "--syntax-only" => syntax_only = true,
            "--verify-each" => opts.verify_each = true,
            "--threads" => {
                let Some(n) = it.next() else {
                    eprintln!("ompltc: '--threads' requires a value");
                    return ExitCode::from(2);
                };
                match n.parse::<u32>() {
                    Ok(v) if v > 0 => opts.num_threads = v,
                    _ => {
                        eprintln!(
                            "ompltc: invalid value '{n}' for '--threads': \
                             expected a positive integer"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            other if other.starts_with("--diag-format=") => {
                match &other["--diag-format=".len()..] {
                    "json" => json = true,
                    "text" => json = false,
                    fmt => {
                        eprintln!("ompltc: unknown diagnostics format '{fmt}' (text|json)");
                        return ExitCode::from(2);
                    }
                }
            }
            other if !other.starts_with('-') => file = Some(other.to_string()),
            other => {
                eprintln!("ompltc: unknown option '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!(
            "usage: ompltc [--analyze] [--ast-dump] [--ast-dump-transformed] \
             [--diag-format=text|json] [--emit-ir] [--enable-irbuilder] [--opt] [--run] \
             [--syntax-only] [--threads N] [--verify-each] <file.c>"
        );
        return ExitCode::from(2);
    };

    let mut ci = CompilerInstance::new(opts);
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ompltc: cannot read '{file}': {e}");
            return ExitCode::from(1);
        }
    };
    let tu = match ci.parse_source(&file, &source) {
        Ok(tu) => tu,
        Err(_) => {
            emit_diags(&ci, json);
            return ExitCode::from(1);
        }
    };

    if analyze {
        let report = ci.analyze(&tu);
        emit_diags(&ci, json);
        return if report.has_findings() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    if ast_dump || ast_dump_transformed {
        print!(
            "{}",
            if ast_dump_transformed {
                ci.ast_dump_transformed(&tu)
            } else {
                ci.ast_dump(&tu)
            }
        );
    }
    if syntax_only {
        emit_diags(&ci, json);
        return ExitCode::SUCCESS;
    }

    let mut module = match ci.codegen(&tu) {
        Ok(m) => m,
        Err(rendered) => {
            if ci.diags.is_empty() {
                // Internal verifier failures are not diagnostics.
                eprint!("{rendered}");
            } else {
                emit_diags(&ci, json);
            }
            return ExitCode::from(1);
        }
    };
    if optimize {
        ci.optimize(&mut module);
        if ci.diags.has_errors() {
            emit_diags(&ci, json);
            return ExitCode::from(1);
        }
    }
    if emit_ir {
        print!("{}", omplt::ir::print_module(&module));
    }
    emit_diags(&ci, json);
    if run {
        match ci.run(&module) {
            Ok(result) => {
                print!("{}", result.stdout);
                return ExitCode::from(result.exit_code as u8);
            }
            Err(e) => {
                eprintln!("ompltc: runtime error: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
