#!/usr/bin/env bash
# Crash-resistance smoke fuzz for the fault-containment layer: random byte
# mutations of the example corpus must never escape the ICE boundary. For
# every mutant, `ompltc` must (a) terminate within the per-case timeout and
# (b) exit with one of the contract codes — 0 ok, 1 findings/runtime
# failure, 2 usage, 3 contained ICE. A raw panic (101), an abort (signal),
# or a hang is a bug; the offending mutant is saved and a crash-report
# bundle is captured for the CI artifact upload.
#
# Budget: ~60 seconds (override with FUZZ_SECONDS). Deterministic per seed:
# FUZZ_SEED pins the mutation stream so failures replay exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

ompltc=${OMPLTC:-target/release/ompltc}
if [ ! -x "$ompltc" ]; then
  echo "error: $ompltc not built (run 'cargo build --release' first)" >&2
  exit 2
fi

budget=${FUZZ_SECONDS:-60}
seed=${FUZZ_SEED:-20260806}
outdir=${FUZZ_OUTDIR:-target/fuzz-smoke}
per_case_timeout=10
mkdir -p "$outdir"
rm -f "$outdir"/failure-*

# Seed corpus: every example, plus hand-picked seeds covering the pragma
# parser and the runtime (worksharing + barrier), so mutations reach deep
# stages rather than dying in the lexer.
corpus=("$outdir/seed-parallel.c" "$outdir/seed-transform.c")
for src in examples/c/*.c; do
  corpus+=("$src")
done
cat > "$outdir/seed-parallel.c" <<'EOF'
long acc[32];
int main(void) {
  #pragma omp parallel
  {
    #pragma omp for schedule(dynamic, 2)
    for (int i = 0; i < 32; i += 1)
      acc[i] = i * 3;
  }
  long sum = 0;
  for (int k = 0; k < 32; k += 1)
    sum += acc[k];
  return sum % 251;
}
EOF
cat > "$outdir/seed-transform.c" <<'EOF'
void print_i64(long v);
int main(void) {
  #pragma omp tile sizes(4)
  #pragma omp unroll partial(2)
  for (int i = 0; i < 16; i += 1)
    print_i64(i);
  return 0;
}
EOF

# xorshift-style deterministic PRNG (bash arithmetic, 2^31 modulus).
rng=$seed
rand() {
  rng=$(((rng * 1103515245 + 12345) % 2147483648))
  echo $((rng % $1))
}

mode_flags() {
  case $1 in
    0) echo "--syntax-only" ;;
    1) echo "--opt --run --serial" ;;
    2) echo "--opt --run --backend=vm --serial" ;;
    3) echo "--analyze" ;;
  esac
}

deadline=$((SECONDS + budget))
cases=0
failures=0
while [ "$SECONDS" -lt "$deadline" ]; do
  src=${corpus[$(rand ${#corpus[@]})]}
  size=$(wc -c < "$src")
  mutant="$outdir/mutant.c"
  cp "$src" "$mutant"
  # 1-8 random single-byte substitutions across the whole byte range, so
  # both "still parses" and "binary garbage" shapes are exercised.
  edits=$(($(rand 8) + 1))
  for _ in $(seq "$edits"); do
    off=$(rand "$size")
    byte=$(rand 256)
    printf "$(printf '\\x%02x' "$byte")" \
      | dd of="$mutant" bs=1 seek="$off" conv=notrunc status=none
  done
  flags=$(mode_flags "$(rand 4)")
  cases=$((cases + 1))

  set +e
  # shellcheck disable=SC2086  # flags is intentionally word-split
  timeout "$per_case_timeout" "$ompltc" $flags \
    --fuel=2000000 --exec-timeout=5000 "$mutant" >/dev/null 2>&1
  code=$?
  set -e

  case $code in
    0 | 1 | 2 | 3) ;; # the exit-code contract
    124)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.c"
      echo "HANG (case $cases, flags: $flags): mutant saved to $outdir/failure-$failures.c" >&2
      ;;
    *)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.c"
      echo "UNCONTAINED exit $code (case $cases, flags: $flags): mutant saved to $outdir/failure-$failures.c" >&2
      # Re-run with --crash-report so CI archives the bundle.
      set +e
      timeout "$per_case_timeout" "$ompltc" $flags \
        --crash-report="$outdir/failure-$failures.report" \
        --fuel=2000000 --exec-timeout=5000 "$mutant" >/dev/null 2>&1
      set -e
      ;;
  esac
done

echo "fuzz smoke: $cases cases in ${budget}s (seed $seed), $failures uncontained"

# ---------------------------------------------------------------------------
# Tuner-enumerator leg: drive `--autotune` over byte-mutated inputs. The
# tuner multiplies whatever the mutant contains through its own mutation
# enumerator — dozens of full pipeline trips per case — so this leg stresses
# the per-candidate ICE containment and the legality gate far harder than a
# single compile does. The exit-code contract is identical.
# Budget: ~30 seconds (override with TUNE_FUZZ_SECONDS).
tune_budget=${TUNE_FUZZ_SECONDS:-30}
tune_deadline=$((SECONDS + tune_budget))
tcases=0
while [ "$SECONDS" -lt "$tune_deadline" ]; do
  src=${corpus[$(rand ${#corpus[@]})]}
  size=$(wc -c < "$src")
  mutant="$outdir/tune-mutant.c"
  cp "$src" "$mutant"
  edits=$(($(rand 4) + 1))
  for _ in $(seq "$edits"); do
    off=$(rand "$size")
    byte=$(rand 256)
    printf "$(printf '\\x%02x' "$byte")" \
      | dd of="$mutant" bs=1 seek="$off" conv=notrunc status=none
  done
  tcases=$((tcases + 1))

  set +e
  timeout "$per_case_timeout" "$ompltc" --autotune=4 --tune-seed="$(rand 65536)" \
    --tune-json="$outdir/tune-mutant-report.json" \
    --fuel=2000000 --exec-timeout=8000 "$mutant" >/dev/null 2>&1
  code=$?
  set -e

  case $code in
    0 | 1 | 2 | 3) ;;
    124)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.c"
      echo "TUNER HANG (case $tcases): mutant saved to $outdir/failure-$failures.c" >&2
      ;;
    *)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.c"
      echo "TUNER UNCONTAINED exit $code (case $tcases): mutant saved to $outdir/failure-$failures.c" >&2
      ;;
  esac
done

# A clean ranked report over the reference workload, archived as the CI
# artifact: reviewers can inspect what the tuner currently finds without
# running anything locally.
"$ompltc" --autotune=16 --tune-json="$outdir/autotune-report.json" \
  examples/c/triangular_reduction.c >/dev/null

echo "fuzz smoke: $tcases tuner cases in ${tune_budget}s, report at $outdir/autotune-report.json"

# ---------------------------------------------------------------------------
# Vector-bytecode serde leg: serialize a *widened* module (vector register
# classes, vload/vstore/vbin/vreduce ops, per-function vreg tables) through
# the OMPLTBC container, then byte-mutate the container and push it back
# through decode + the bytecode verifier. The decoder and the vector
# verifier rules must be total over arbitrary bytes: every mutant must be
# either rejected as a finding (exit 1) or accepted as still-well-formed
# (exit 0) — a panic, abort, or hang in the serde/verify path is a bug.
# Budget: ~15 seconds (override with SERDE_FUZZ_SECONDS).
serde_budget=${SERDE_FUZZ_SECONDS:-15}
serde_deadline=$((SECONDS + serde_budget))
seed_bc="$outdir/seed-simd.bc"
"$ompltc" --backend=vm --vector-width=4 --emit-bytecode-bin="$seed_bc" \
  examples/c/saxpy_simd.c >/dev/null
"$ompltc" --check-bytecode "$seed_bc" >/dev/null 2>&1 || {
  echo "vector-bytecode seed container failed to verify" >&2
  exit 1
}
bc_size=$(wc -c < "$seed_bc")
scases=0
while [ "$SECONDS" -lt "$serde_deadline" ]; do
  mutant="$outdir/mutant.bc"
  cp "$seed_bc" "$mutant"
  edits=$(($(rand 8) + 1))
  for _ in $(seq "$edits"); do
    off=$(rand "$bc_size")
    byte=$(rand 256)
    printf "$(printf '\\x%02x' "$byte")" \
      | dd of="$mutant" bs=1 seek="$off" conv=notrunc status=none
  done
  scases=$((scases + 1))

  set +e
  timeout "$per_case_timeout" "$ompltc" --check-bytecode "$mutant" >/dev/null 2>&1
  code=$?
  set -e

  case $code in
    0 | 1 | 2 | 3) ;;
    124)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.bc"
      echo "SERDE HANG (case $scases): mutant saved to $outdir/failure-$failures.bc" >&2
      ;;
    *)
      failures=$((failures + 1))
      cp "$mutant" "$outdir/failure-$failures.bc"
      echo "SERDE UNCONTAINED exit $code (case $scases): mutant saved to $outdir/failure-$failures.bc" >&2
      ;;
  esac
done

echo "fuzz smoke: $scases vector-bytecode serde cases in ${serde_budget}s"

# ---------------------------------------------------------------------------
# Daemon frame-protocol leg: malformed frames on the ompltd wire must yield
# a structured `{"id":null,"error":...}` reply and a clean server exit —
# never a crash, a hang, or an unbounded allocation. Covers the framing
# failure shapes (truncated length prefix, truncated body, a length prefix
# exceeding the 16 MiB cap, non-JSON payloads) plus a seeded stream of
# random valid-framed garbage bodies.
ompltd=${OMPLTD:-target/release/ompltd}
if [ ! -x "$ompltd" ]; then
  echo "error: $ompltd not built (run 'cargo build --release' first)" >&2
  exit 2
fi
if ! timeout 60 python3 - "$ompltd" "$seed" <<'EOF'
import random
import struct
import subprocess
import sys

daemon, seed = sys.argv[1], int(sys.argv[2])


def drive(case, payload):
    """Feed raw bytes to `ompltd --stdio`; expect error replies, exit 0."""
    proc = subprocess.run(
        [daemon, "--stdio", "--workers=1"],
        input=payload,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        timeout=20,
    )
    if proc.returncode != 0:
        print(f"{case}: daemon exited {proc.returncode}", file=sys.stderr)
        return False
    out = proc.stdout
    replies = []
    while len(out) >= 4:
        n = struct.unpack("<I", out[:4])[0]
        replies.append(out[4 : 4 + n].decode("utf-8", "replace"))
        out = out[4 + n :]
    if not replies:
        print(f"{case}: no reply frame", file=sys.stderr)
        return False
    for reply in replies:
        if '"error"' not in reply:
            print(f"{case}: expected an error reply, got: {reply}", file=sys.stderr)
            return False
    return True


failures = 0
cases = {
    "truncated-prefix": b"\x07",
    "truncated-body": struct.pack("<I", 64) + b"{\"op\":",
    "oversized-frame": struct.pack("<I", 0xFFFFFFFF),
    "invalid-json": struct.pack("<I", 15) + b"this is garbage",
}
for case, payload in cases.items():
    if not drive(case, payload):
        failures += 1

# Seeded random garbage bodies, all correctly framed: each must get its own
# error reply on one connection, and the daemon must exit cleanly at EOF.
rng = random.Random(seed)
stream = b""
for _ in range(64):
    body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
    stream += struct.pack("<I", len(body)) + body
if not drive("random-garbage", stream):
    failures += 1

print(f"fuzz smoke: {len(cases) + 1} daemon frame cases (seed {seed}), {failures} failed")
sys.exit(1 if failures else 0)
EOF
then
  failures=$((failures + 1))
  echo "daemon frame-protocol leg failed" >&2
fi

# ---------------------------------------------------------------------------
# Daemon frame-stall leg: slowloris-shaped clients against a socket daemon
# with a short `--frame-timeout-ms`. A connection that sends a length prefix
# and then stalls (or dribbles the body forever, or disappears mid-frame)
# must be shed with a "frame read timed out" error reply and a closed
# connection — and the daemon must keep serving well-formed frames after
# every shed. A stuck reader thread here would eventually starve the
# listener; the trailing health probe is the regression test for that.
stall_sock="$outdir/fuzz-stall.sock"
rm -f "$stall_sock"
"$ompltd" --listen="$stall_sock" --workers=1 --frame-timeout-ms=250 \
  >/dev/null 2>&1 &
stall_pid=$!
trap 'kill "$stall_pid" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
  [ -S "$stall_sock" ] && break
  sleep 0.05
done
if ! timeout 60 python3 - "$stall_sock" "$seed" <<'EOF'
import socket
import struct
import sys
import time

path, seed = sys.argv[1], int(sys.argv[2])


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(10)
    s.connect(path)
    return s


def read_frame(s):
    data = b""
    while len(data) < 4:
        chunk = s.recv(4 - len(data))
        if not chunk:
            return None
        data += chunk
    n = struct.unpack("<I", data)[0]
    body = b""
    while len(body) < n:
        chunk = s.recv(n - len(body))
        if not chunk:
            return None
        body += chunk
    return body.decode("utf-8", "replace")


failures = 0


def expect_stall_shed(case, s):
    global failures
    reply = read_frame(s)
    if reply is None or "timed out" not in reply or '"error"' not in reply:
        print(f"{case}: expected a timeout error reply, got: {reply!r}", file=sys.stderr)
        failures += 1
        return
    if read_frame(s) is not None:
        print(f"{case}: connection must close after the shed", file=sys.stderr)
        failures += 1


# Prefix then silence: the classic slowloris.
s = connect()
s.sendall(struct.pack("<I", 64))
expect_stall_shed("prefix-then-silence", s)
s.close()

# Prefix then a dribble slower than the frame timeout allows.
s = connect()
s.sendall(struct.pack("<I", 32))
try:
    for _ in range(4):
        s.sendall(b"x")
        time.sleep(0.15)
    expect_stall_shed("dribbled-body", s)
except BrokenPipeError:
    pass  # the daemon already shed us mid-dribble: equally correct
s.close()

# Partial write then an abrupt disappearance (no FIN wait).
s = connect()
s.sendall(struct.pack("<I", 1024) + b"{")
s.close()

# After every abuse shape the daemon still serves a well-formed request.
s = connect()
body = b'{"op":"health"}'
s.sendall(struct.pack("<I", len(body)) + body)
reply = read_frame(s)
s.close()
if reply is None or '"health"' not in reply:
    print(f"post-stall health probe failed: {reply!r}", file=sys.stderr)
    failures += 1

print(f"fuzz smoke: 4 daemon frame-stall cases (seed {seed}), {failures} failed")
sys.exit(1 if failures else 0)
EOF
then
  failures=$((failures + 1))
  echo "daemon frame-stall leg failed" >&2
fi
kill "$stall_pid" 2>/dev/null || true
wait "$stall_pid" 2>/dev/null || true
trap - EXIT

if [ "$failures" -gt 0 ]; then
  exit 1
fi
