/* Wavefront stencil: the flow dependence on `a` has direction (<, >), so
 * swapping the loops would run the sink before its source. */
int main(void) {
  int a[9][9];
  #pragma omp interchange
  for (int i = 1; i < 8; i += 1)
    for (int j = 1; j < 8; j += 1)
      a[i][j] = a[i - 1][j + 1] + 1;
  return 0;
}
