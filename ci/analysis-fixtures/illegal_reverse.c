/* Recurrence: iteration i reads the value iteration i-1 wrote, so the loop
 * carries a flow dependence and cannot run backwards. */
int main(void) {
  int a[16];
  a[0] = 1;
  #pragma omp reverse
  for (int i = 1; i < 16; i += 1)
    a[i] = a[i - 1] + i;
  return a[15];
}
