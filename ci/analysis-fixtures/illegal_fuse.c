/* The second loop reads elements the first loop writes only in *later*
 * iterations (distance -4): fusing them would read stale values. */
int main(void) {
  int a[20];
  int b[16];
  #pragma omp fuse
  {
    for (int i = 0; i < 20; i += 1) a[i] = i * 3;
    for (int j = 0; j < 16; j += 1) b[j] = a[j + 4];
  }
  return b[0];
}
