/* `a[i * i]` is not affine in `i`: the dependence tests cannot model it,
 * and the pass must say so instead of guessing either way. */
int main(void) {
  int a[64];
  #pragma omp reverse
  for (int i = 0; i < 8; i += 1)
    a[i * i] = i;
  return 0;
}
