/* Independent nest under every new transformation: all direction vectors
 * are (=, =), so interchange, reverse and fuse are all legal — the analysis
 * must stay silent. */
int main(void) {
  int a[72];
  int b[9];
  #pragma omp interchange permutation(2, 1)
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 9; j += 1)
      a[i * 9 + j] = i + j;
  #pragma omp fuse
  {
    for (int k = 0; k < 9; k += 1) b[k] = k;
    for (int m = 0; m < 9; m += 1) a[m * 8] = b[m] * 2;
  }
  return 0;
}
