/* A loop-carried flow dependence of distance 1: lane-parallel execution
 * would read a[i] before the previous iteration's store to a[i+1]... i.e.
 * after widening, lane j reads the value lane j-1 was supposed to produce.
 * No safelen can make this legal (safelen(1) is scalar execution), so the
 * analysis rejects the directive, citing the dependence, and the bytecode
 * widening pass independently refuses it (vm.simd.refused) — the program
 * still runs correctly in scalar form.
 */
int main(void) {
  int a[64];
  for (int i = 0; i < 64; i += 1)
    a[i] = i;
  #pragma omp simd
  for (int i = 0; i < 63; i += 1)
    a[i + 1] = a[i] + 1;
  return a[63] - 63;
}
