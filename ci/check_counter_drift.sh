#!/usr/bin/env bash
# Counter-drift guard for experiment C1: the shadow-AST node counts the
# pipeline reports through `ompltc --counters-json` (23-node classic helper
# bundle vs 3 canonical meta items) must not change silently. CI runs this
# against every example in the corpus; a legitimate representation change
# must update ci/expected-counters/ in the same commit, with the PR
# explaining why the counts moved.
set -euo pipefail
cd "$(dirname "$0")/.."

ompltc=${OMPLTC:-target/release/ompltc}
if [ ! -x "$ompltc" ]; then
  echo "error: $ompltc not built (run 'cargo build --release' first)" >&2
  exit 2
fi

status=0
for src in examples/c/*.c; do
  base=$(basename "$src" .c)
  for mode in classic irbuilder; do
    flags=(--counters-json --syntax-only)
    if [ "$mode" = irbuilder ]; then
      flags+=(--enable-irbuilder)
    fi
    expected="ci/expected-counters/$base.$mode.txt"
    got=$("$ompltc" "${flags[@]}" "$src" 2>/dev/null \
      | grep -o '"sema\.[^"]*":[0-9]*' | sort)
    if [ ! -f "$expected" ]; then
      echo "missing $expected; expected contents:" >&2
      printf '%s\n' "$got" >&2
      status=1
    elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
      echo "counter drift in $src ($mode): update $expected if intentional" >&2
      status=1
    fi
  done
done

if [ "$status" = 0 ]; then
  echo "shadow-AST node counters match ci/expected-counters/"
fi
exit $status
