#!/usr/bin/env bash
# Counter-drift guard for experiment C1: the shadow-AST node counts the
# pipeline reports through `ompltc --counters-json` (23-node classic helper
# bundle vs 3 canonical meta items) must not change silently. CI runs this
# against every example in the corpus; a legitimate representation change
# must update ci/expected-counters/ in the same commit, with the PR
# explaining why the counts moved.
set -euo pipefail
cd "$(dirname "$0")/.."

ompltc=${OMPLTC:-target/release/ompltc}
if [ ! -x "$ompltc" ]; then
  echo "error: $ompltc not built (run 'cargo build --release' first)" >&2
  exit 2
fi

status=0
for src in examples/c/*.c; do
  base=$(basename "$src" .c)
  for mode in classic irbuilder; do
    flags=(--counters-json --syntax-only)
    if [ "$mode" = irbuilder ]; then
      flags+=(--enable-irbuilder)
    fi
    expected="ci/expected-counters/$base.$mode.txt"
    got=$("$ompltc" "${flags[@]}" "$src" 2>/dev/null \
      | grep -o '"sema\.[^"]*":[0-9]*' | sort)
    if [ ! -f "$expected" ]; then
      echo "missing $expected; expected contents:" >&2
      printf '%s\n' "$got" >&2
      status=1
    elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
      echo "counter drift in $src ($mode): update $expected if intentional" >&2
      status=1
    fi
  done
done

# Dependence-analysis drift guard: the number of dependence graphs the
# --analyze pass builds, the dependences it finds and the accesses it gives
# up on are structural properties of each example — a silent change means
# the subscript tests or the gating moved.
for src in examples/c/*.c; do
  base=$(basename "$src" .c)
  expected="ci/expected-counters/$base.analyze.txt"
  # `grep` finds nothing for examples without transformation directives —
  # that (an empty file) is itself the guarded expectation.
  got=$("$ompltc" --counters-json --analyze "$src" 2>/dev/null \
    | { grep -o '"analysis\.[^"]*":[0-9]*' || true; } | sort)
  if [ ! -f "$expected" ]; then
    echo "missing $expected; expected contents:" >&2
    printf '%s\n' "$got" >&2
    status=1
  elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
    echo "analysis counter drift in $src: update $expected if intentional" >&2
    status=1
  fi
done

# Execution-backend drift guard: the number of ops each backend retires
# running an example is deterministic (the default team size is fixed, static
# chunk assignment is a pure function of it), so a silent change means either
# the lowering, the bytecode peephole pipeline, or the scheduler moved.
# Legitimate optimizer improvements update these files in the same commit.
for src in examples/c/*.c; do
  base=$(basename "$src" .c)
  for backend in interp vm; do
    flags=(--counters-json --run)
    if [ "$backend" = vm ]; then
      flags+=(--backend=vm)
    fi
    expected="ci/expected-counters/$base.$backend.ops.txt"
    got=$("$ompltc" "${flags[@]}" "$src" 2>/dev/null | tail -1 \
      | grep -o "\"$backend\.ops\.retired\":[0-9]*")
    if [ ! -f "$expected" ]; then
      echo "missing $expected; expected contents:" >&2
      printf '%s\n' "$got" >&2
      status=1
    elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
      echo "retired-op drift in $src ($backend): update $expected if intentional" >&2
      status=1
    fi
  done
done

# SIMD widening drift guard: for every example, `--backend=vm
# --vector-width=4` pins the widening pass's outcome counters
# (vm.simd.widened_loops / vm.simd.epilogue_iters / vm.simd.refused) and the
# retired-op count of the widened program. A silent change means the
# planner's legality gates, the clamp logic, or the vector emission moved.
# Examples without a `simd` loop pin all-zero simd counters — that absence
# is itself the guarded expectation (the widener must not touch them).
for src in examples/c/*.c; do
  base=$(basename "$src" .c)
  expected="ci/expected-counters/$base.vm.simd.txt"
  got=$("$ompltc" --counters-json --run --backend=vm --vector-width=4 "$src" 2>/dev/null | tail -1 \
    | grep -o '"vm\.\(simd\.[^"]*\|ops\.retired\)":[0-9]*' | sort)
  if [ ! -f "$expected" ]; then
    echo "missing $expected; expected contents:" >&2
    printf '%s\n' "$got" >&2
    status=1
  elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
    echo "simd counter drift in $src: update $expected if intentional" >&2
    status=1
  fi
done

# Daemon artifact-cache drift guard: `ompltd --warmup` replays a fixed job
# sequence (A A B A' A A' => 3 hits, 3 misses) against a fresh cache. The
# hit/miss split is a pure function of the cache key — a silent change
# means the source hash or the canonical options fingerprint moved (e.g. a
# runtime-only option leaked into the fingerprint, or a compile-relevant
# one fell out of it).
ompltd=${OMPLTD:-target/release/ompltd}
if [ ! -x "$ompltd" ]; then
  echo "error: $ompltd not built (run 'cargo build --release' first)" >&2
  status=1
else
  expected="ci/expected-counters/daemon.warmup.txt"
  got=$("$ompltd" --warmup 2>/dev/null \
    | grep -o '"daemon\.cache\.\(hits\|misses\|integrity_failures\)":[0-9]*' | sort)
  if [ ! -f "$expected" ]; then
    echo "missing $expected; expected contents:" >&2
    printf '%s\n' "$got" >&2
    status=1
  elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
    echo "daemon cache hit/miss drift: update $expected if intentional" >&2
    status=1
  fi

  # Survivability drift guard: `ompltd --selftest` drives the in-process
  # pool through a fixed kill/corrupt/recover script (miss, hit, one kill
  # with requeue, a double kill with abandonment, one cache corruption,
  # final hit). The supervisor and integrity counters it prints are a pure
  # function of that script — drift means the requeue-at-most-once policy,
  # the respawn accounting, or the checksum quarantine moved.
  expected="ci/expected-counters/daemon.selftest.txt"
  got=$("$ompltd" --selftest 2>/dev/null \
    | grep -o '"daemon\.\(cache\.\(hits\|misses\|integrity_failures\)\|supervisor\.[a-z]*\)":[0-9]*' | sort)
  if [ ! -f "$expected" ]; then
    echo "missing $expected; expected contents:" >&2
    printf '%s\n' "$got" >&2
    status=1
  elif ! diff -u "$expected" <(printf '%s\n' "$got"); then
    echo "daemon survivability drift: update $expected if intentional" >&2
    status=1
  fi
fi

if [ "$status" = 0 ]; then
  echo "shadow-AST node counters, retired-op, simd widening and daemon cache pins match ci/expected-counters/"
fi
exit $status
