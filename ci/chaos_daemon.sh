#!/usr/bin/env bash
# Chaos leg for the compile daemon: one ompltd under continuous injected
# failure — worker kills, admission sheds, a corrupted cache artifact,
# slowloris frames, raw protocol garbage — serving 8 concurrent retrying
# clients. The acceptance bar:
#
#   * zero lost accepted jobs: every client exits 0 with byte-identical
#     output to a local (in-process) run of the same invocation;
#   * the corrupted cache entry is quarantined and recompiled
#     (daemon.cache.integrity_failures >= 1), never served;
#   * no job is abandoned (the global worker-kill policy only takes first
#     attempts, so the requeue always lands);
#   * a timed SIGTERM drain finishes the backlog and exits 0.
#
# The final `health` snapshot is archived to target/chaos/chaos-health.json
# for the CI artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

ompltc=${OMPLTC:-target/release/ompltc}
ompltd=${OMPLTD:-target/release/ompltd}
for bin in "$ompltc" "$ompltd"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run 'cargo build --release' first)" >&2
    exit 2
  fi
done

outdir=${CHAOS_OUTDIR:-target/chaos}
clients=${CHAOS_CLIENTS:-8}
jobs_per_client=${CHAOS_JOBS:-25}
mkdir -p "$outdir"
rm -f "$outdir"/client-*.log "$outdir"/chaos-health.json
sock="$outdir/chaos.sock"
rm -f "$sock"

# The workload: four sources that differ by one constant, so the cache holds
# several live lines while warm hits dominate. Local runs are the oracle.
declare -a srcs expected
for k in 0 1 2 3; do
  src="$outdir/chaos-$k.c"
  cat > "$src" <<EOF
void print_i64(long v);
long data[64];
int main(void) {
  #pragma omp parallel for schedule(static) num_threads(2)
  for (int i = 0; i < 64; i += 1)
    data[i] = i * (3 + $k);
  long sum = 0;
  for (int j = 0; j < 64; j += 1)
    sum += data[j];
  print_i64(sum);
  return 0;
}
EOF
  srcs[$k]=$src
  expected[$k]=$("$ompltc" --run --backend=vm "$src")
done

# Two global worker kills (first attempts only => always requeued, never
# abandoned) and two admission sheds, against a deliberately tight pool.
"$ompltd" --listen="$sock" --workers=2 --queue-depth=4 \
  --frame-timeout-ms=300 \
  --inject-fault=daemon.worker-kill:2 \
  --inject-fault=daemon.queue-full:2 \
  > "$outdir/daemon.log" 2>&1 &
daemon_pid=$!
trap 'kill "$daemon_pid" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
  [ -S "$sock" ] && break
  sleep 0.05
done
[ -S "$sock" ] || { echo "ompltd never bound $sock" >&2; exit 1; }

# Warm one line, then corrupt exactly it via a per-job fault: the checksum
# must quarantine the entry and recompile instead of serving garbage.
warm=$("$ompltc" --remote="$sock" --run --backend=vm "${srcs[0]}")
[ "$warm" = "${expected[0]}" ] || { echo "warmup mismatch" >&2; exit 1; }
poisoned=$("$ompltc" --remote="$sock" --run --backend=vm \
  --inject-fault=daemon.cache-corrupt "${srcs[0]}")
if [ "$poisoned" != "${expected[0]}" ]; then
  echo "corrupted cache entry leaked into a reply: '$poisoned'" >&2
  exit 1
fi

# The fleet: 8 concurrent clients, each mixing warm hits, cold-ish misses,
# and an injected slowloris every 5th job, all on a retry budget that must
# absorb every shed, kill, and stall the daemon throws at them.
client_loop() {
  local id=$1 fails=0
  for j in $(seq "$jobs_per_client"); do
    local k=$(((id + j) % 4))
    local args=(--remote="$sock" --remote-retries=6 --remote-backoff-ms=25
      --run --backend=vm)
    if [ $((j % 5)) = 0 ]; then
      args+=(--inject-fault=daemon.frame-stall)
    fi
    local got
    if ! got=$("$ompltc" "${args[@]}" "${srcs[$k]}" 2>>"$outdir/client-$id.log"); then
      echo "client $id job $j: nonzero exit" >> "$outdir/client-$id.log"
      fails=$((fails + 1))
    elif [ "$got" != "${expected[$k]}" ]; then
      echo "client $id job $j: got '$got' want '${expected[$k]}'" \
        >> "$outdir/client-$id.log"
      fails=$((fails + 1))
    fi
  done
  return "$fails"
}

pids=()
for id in $(seq "$clients"); do
  client_loop "$id" &
  pids+=($!)
done

# Meanwhile, a vandal throws raw protocol garbage at the same socket.
python3 - "$sock" <<'EOF' &
import socket, struct, random
import sys

path = sys.argv[1]
rng = random.Random(20260807)
for shape in range(24):
    try:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(5)
        s.connect(path)
        kind = shape % 4
        if kind == 0:
            s.sendall(struct.pack("<I", 0xFFFFFFFF))       # over the cap
        elif kind == 1:
            s.sendall(b"\x07")                             # truncated prefix
        elif kind == 2:
            body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            s.sendall(struct.pack("<I", len(body)) + body)  # framed garbage
        else:
            s.sendall(struct.pack("<I", 512) + b"{")       # vanish mid-frame
        try:
            s.recv(4096)
        except OSError:
            pass
        s.close()
    except OSError:
        pass
EOF
vandal=$!

lost=0
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    lost=1
  fi
done
wait "$vandal" || true
if [ "$lost" != 0 ]; then
  echo "chaos: lost or corrupted replies (see $outdir/client-*.log)" >&2
  exit 1
fi

# Archive the health snapshot and check the survivability invariants.
python3 - "$sock" "$outdir/chaos-health.json" <<'EOF'
import json, socket, struct, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(10)
s.connect(sys.argv[1])
body = b'{"op":"health"}'
s.sendall(struct.pack("<I", len(body)) + body)
data = b""
while len(data) < 4:
    data += s.recv(4)
n = struct.unpack("<I", data[:4])[0]
data = data[4:]
while len(data) < n:
    data += s.recv(n - len(data))
doc = json.loads(data.decode())
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")

h = doc["health"]
failures = []
if h["counters"]["daemon.cache.integrity_failures"] < 1:
    failures.append("cache corruption was never detected")
if h["supervisor"]["abandoned"] != 0:
    failures.append(f"{h['supervisor']['abandoned']} job(s) abandoned")
if h["supervisor"]["respawns"] < 2:
    failures.append("injected worker kills did not respawn")
if h["workers_alive"] != h["workers_configured"]:
    failures.append(f"pool lost workers: {h['workers_alive']}/{h['workers_configured']}")
if h["queue_depth"] != 0 or h["running"] != 0:
    failures.append("backlog not drained after the fleet finished")
for msg in failures:
    print(f"chaos health: {msg}", file=sys.stderr)
print(
    "chaos health: respawns={} requeued={} abandoned={} integrity_failures={}".format(
        h["supervisor"]["respawns"],
        h["supervisor"]["requeued"],
        h["supervisor"]["abandoned"],
        h["counters"]["daemon.cache.integrity_failures"],
    )
)
sys.exit(1 if failures else 0)
EOF

# Timed drain: queue a little work, SIGTERM, and require a clean exit well
# inside the drain window.
for id in 1 2 3; do
  "$ompltc" --remote="$sock" --run --backend=vm "${srcs[0]}" \
    > /dev/null 2>>"$outdir/client-drain.log" &
done
sleep 0.2
kill -TERM "$daemon_pid"
drain_deadline=$((SECONDS + 15))
while kill -0 "$daemon_pid" 2>/dev/null; do
  if [ "$SECONDS" -ge "$drain_deadline" ]; then
    echo "chaos: daemon still alive ${drain_deadline}s after SIGTERM" >&2
    exit 1
  fi
  sleep 0.1
done
set +e
wait "$daemon_pid"
drain_code=$?
set -e
trap - EXIT
wait || true
if [ "$drain_code" != 0 ]; then
  echo "chaos: drain exited $drain_code (want 0); daemon log:" >&2
  cat "$outdir/daemon.log" >&2
  exit 1
fi

total=$((clients * jobs_per_client))
echo "chaos: $total jobs across $clients clients survived kills, sheds, stalls, and garbage; drain exited 0"
echo "chaos: health snapshot archived at $outdir/chaos-health.json"
