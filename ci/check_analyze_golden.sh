#!/usr/bin/env bash
# Golden guard for the --analyze dependence diagnostics: every fixture in
# ci/analysis-fixtures/ is analyzed with machine-readable output and compared
# byte-for-byte against its checked-in .json twin. The illegal-transformation
# fixtures double as the exit-code contract: any finding (error or warning)
# must yield exit 1, a silent analysis exit 0. A legitimate diagnostics
# change must update the goldens in the same commit, with the PR explaining
# why the wording, locations or vectors moved.
set -euo pipefail
cd "$(dirname "$0")/.."

ompltc=${OMPLTC:-target/release/ompltc}
if [ ! -x "$ompltc" ]; then
  echo "error: $ompltc not built (run 'cargo build --release' first)" >&2
  exit 2
fi

status=0
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for src in ci/analysis-fixtures/*.c; do
  base=${src%.c}
  expected="$base.json"
  rc=0
  "$ompltc" --analyze --diag-format=json "$src" 2>"$tmp" >/dev/null || rc=$?
  if [ ! -f "$expected" ]; then
    echo "missing $expected; expected contents:" >&2
    cat "$tmp" >&2
    status=1
    continue
  fi
  want_rc=0
  [ -s "$expected" ] && want_rc=1
  if [ "$rc" != "$want_rc" ]; then
    echo "exit code for $src: got $rc, want $want_rc" >&2
    status=1
  fi
  if ! diff -u "$expected" "$tmp"; then
    echo "analysis diagnostics drift in $src: update $expected if intentional" >&2
    status=1
  fi
done

if [ "$status" = 0 ]; then
  echo "--analyze diagnostics match ci/analysis-fixtures/ goldens"
fi
exit $status
